"""Off-chip bus traffic accounting (the Figure 10 metric).

Traffic is counted in 32-bit bus words. Each transfer is attributed to a
cause so experiments can decompose where a configuration's traffic comes
from (demand fills vs. prefetches vs. write-backs).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.inject import hooks as _inject
from repro.obs import tracer as _trace

__all__ = ["TrafficKind", "BusMeter"]


class TrafficKind(enum.Enum):
    """Why words crossed the memory bus."""

    FILL = "fill"  #: demand line fill (memory -> L2)
    PREFETCH = "prefetch"  #: prefetch fill (memory -> prefetch buffer)
    WRITEBACK = "writeback"  #: dirty eviction (L2 -> memory)


@dataclass
class BusMeter:
    """Accumulates bus words moved, split by :class:`TrafficKind`."""

    words_by_kind: dict[TrafficKind, int] = field(
        default_factory=lambda: {kind: 0 for kind in TrafficKind}
    )
    transfers_by_kind: dict[TrafficKind, int] = field(
        default_factory=lambda: {kind: 0 for kind in TrafficKind}
    )

    def record(self, kind: TrafficKind, words: int) -> None:
        """Record one bus transaction of *words* 32-bit beats."""
        if words < 0:
            raise ValueError("bus words must be non-negative")
        if _inject.ACTIVE:
            _inject.SESSION.on_bus_transfer(kind, words)
        self.words_by_kind[kind] += words
        self.transfers_by_kind[kind] += 1
        if _trace.ACTIVE:
            _trace.emit("bus_transfer", kind=kind.value, words=words)

    @property
    def total_words(self) -> int:
        return sum(self.words_by_kind.values())

    @property
    def fill_words(self) -> int:
        return self.words_by_kind[TrafficKind.FILL]

    @property
    def prefetch_words(self) -> int:
        return self.words_by_kind[TrafficKind.PREFETCH]

    @property
    def writeback_words(self) -> int:
        return self.words_by_kind[TrafficKind.WRITEBACK]

    def reset(self) -> None:
        """Zero all counters."""
        for kind in TrafficKind:
            self.words_by_kind[kind] = 0
            self.transfers_by_kind[kind] = 0

    def publish(self, registry, **labels) -> None:
        """Publish traffic totals into a metrics *registry* (``bus.*``).

        One ``bus.words`` / ``bus.transfers`` family with the traffic
        cause as a ``kind`` label — the queryable form of the Figure 10
        decomposition.
        """
        for kind in TrafficKind:
            words = self.words_by_kind[kind]
            transfers = self.transfers_by_kind[kind]
            if words:
                registry.inc("bus.words", words, kind=kind.value, **labels)
            if transfers:
                registry.inc("bus.transfers", transfers, kind=kind.value, **labels)
