"""Conventional set-associative write-back cache (BC / BCC / HAC levels).

One class plays both roles of a two-level hierarchy:

* the CPU-facing role via :meth:`Cache.access` (the L1 position);
* the :class:`~repro.caches.interface.LineSource` role via
  :meth:`Cache.fetch` / :meth:`Cache.write_back` (the L2 position, serving
  sub-line requests from the level above).

Policies follow SimpleScalar's defaults, which the paper inherits:
write-back, write-allocate, LRU replacement.

Line data is stored as plain lists of ints and masks travel as packed
ints (see :mod:`repro.utils.bitmask`), keeping the per-access path free
of NumPy array construction.
"""

from __future__ import annotations

from repro.caches.interface import (
    AccessResult,
    CODE_OF_SERVED,
    FetchResponse,
    LineSource,
)
from repro.caches.line import CacheLine
from repro.caches.stats import CacheStats
from repro.errors import CacheProtocolError, ConfigurationError
from repro.inject import hooks as _inject
from repro.memory.bus import TrafficKind
from repro.memory.image import WORD_BYTES
from repro.obs import tracer as _trace
from repro.utils.bitmask import as_mask, as_words
from repro.utils.bitops import MASK32
from repro.utils.intmath import is_pow2, log2i

__all__ = ["Cache"]


class Cache:
    """A conventional cache level."""

    def __init__(
        self,
        name: str,
        *,
        size_bytes: int,
        assoc: int,
        line_bytes: int,
        hit_latency: int,
        downstream: LineSource,
        stats: CacheStats | None = None,
    ) -> None:
        if not (is_pow2(size_bytes) and is_pow2(line_bytes) and assoc >= 1):
            raise ConfigurationError("cache geometry must use power-of-two sizes")
        if size_bytes % (line_bytes * assoc):
            raise ConfigurationError(
                f"{name}: size {size_bytes} not divisible by line*assoc"
            )
        if line_bytes < WORD_BYTES:
            raise ConfigurationError("line must hold at least one word")
        if hit_latency < 0:
            raise ConfigurationError("hit latency must be non-negative")
        self.name = name
        self.size_bytes = size_bytes
        self.assoc = assoc
        self.line_bytes = line_bytes
        self.line_words = line_bytes // WORD_BYTES
        self.n_sets = size_bytes // (line_bytes * assoc)
        if not is_pow2(self.n_sets):
            raise ConfigurationError(f"{name}: set count must be a power of two")
        self.line_shift = log2i(line_bytes)
        self.set_mask = self.n_sets - 1
        self.hit_latency = hit_latency
        self.downstream = downstream
        self.full_mask = (1 << self.line_words) - 1
        self.stats = stats if stats is not None else CacheStats(name=name)
        # sets[s] is MRU-first: index 0 most recently used.
        self._sets: list[list[CacheLine]] = [
            [CacheLine(self.line_words) for _ in range(assoc)]
            for _ in range(self.n_sets)
        ]

    # ---- geometry helpers -----------------------------------------------------

    def line_no(self, addr: int) -> int:
        """Line number (full address without the offset bits) of *addr*."""
        return addr >> self.line_shift

    def line_addr(self, line_no: int) -> int:
        """Base byte address of line *line_no*."""
        return line_no << self.line_shift

    def set_index(self, line_no: int) -> int:
        """Set a line maps to (low index bits of the line number)."""
        return line_no & self.set_mask

    def word_index(self, addr: int) -> int:
        """Word offset of *addr* inside its line."""
        return (addr >> 2) & (self.line_words - 1)

    # ---- lookup / replacement ---------------------------------------------------

    def _find(self, line_no: int) -> CacheLine | None:
        """Find a valid line and promote it to MRU."""
        ways = self._sets[line_no & self.set_mask]
        for i, line in enumerate(ways):
            if line.line_no == line_no and line.valid:
                if i:
                    ways.insert(0, ways.pop(i))
                return line
        return None

    def probe(self, addr: int) -> bool:
        """Check presence without updating LRU or stats."""
        line_no = addr >> self.line_shift
        for line in self._sets[line_no & self.set_mask]:
            if line.line_no == line_no and line.valid:
                return True
        return False

    def peek_line(self, line_no: int) -> list[int] | None:
        """Read a resident line's data without LRU/stats side effects."""
        for line in self._sets[self.set_index(line_no)]:
            if line.valid and line.line_no == line_no:
                return line.data
        return None

    def supply_prefetch(
        self, addr: int, n_words: int, now: int = 0
    ) -> tuple[list[int], int]:
        """Supply data for an upper-level prefetch WITHOUT installing it.

        Prefetched lines live only in prefetch buffers (the paper keeps
        them out of the caches to avoid pollution), so a prefetch that
        misses here is forwarded down rather than allocated. Returns
        ``(values, latency)``.
        """
        if _inject.ACTIVE:
            _inject.SESSION.before_serve(self, addr, None)
        line_no = self.line_no(addr)
        offset = (addr >> 2) & (self.line_words - 1)
        data = self.peek_line(line_no)
        if data is not None:
            return data[offset : offset + n_words], self.hit_latency
        values, below = self.downstream.supply_prefetch(addr, n_words, now)
        return values, self.hit_latency + below

    def _evict_victim(self, set_idx: int) -> CacheLine:
        """Evict the LRU way of the set (writing back if dirty)."""
        ways = self._sets[set_idx]
        victim = ways[-1]
        if victim.valid:
            if _inject.ACTIVE:
                _inject.SESSION.before_evict(self, victim)
            if victim.dirty:
                self.stats.writebacks += 1
                self.downstream.write_back(
                    self.line_addr(victim.line_no),
                    victim.data,
                    self.full_mask,
                )
        victim.invalidate()
        return victim

    def install_line(self, line_no: int, values) -> CacheLine:
        """Place a full line, evicting the LRU way; returns the frame (MRU)."""
        set_idx = self.set_index(line_no)
        victim = self._evict_victim(set_idx)
        victim.install(line_no, values)
        ways = self._sets[set_idx]
        ways.insert(0, ways.pop(ways.index(victim)))
        return victim

    # ---- CPU-facing role ----------------------------------------------------------

    def access(
        self, addr: int, write: bool = False, value: int | None = None, now: int = 0
    ) -> AccessResult:
        """One word-sized CPU access; returns latency and serving level."""
        if _inject.ACTIVE:
            _inject.SESSION.before_access(self, addr, write)
        line_no = addr >> self.line_shift
        widx = (addr >> 2) & (self.line_words - 1)
        # Fast path: the MRU way; fall back to the LRU-updating scan.
        line = self._sets[line_no & self.set_mask][0]
        if line.line_no != line_no or not line.valid:
            line = self._find(line_no)
        if line is not None:
            stats = self.stats
            stats.accesses += 1
            stats.hits += 1
            if _trace.ACTIVE:
                _trace.emit(
                    "cache_access", level=self.name, addr=addr, hit=True, write=write
                )
            if write:
                self._write_word(line, widx, value)
            return AccessResult(
                self.hit_latency, "l1", None if write else line.data[widx]
            )

        self.stats.record_access(hit=False)
        if _trace.ACTIVE:
            _trace.emit(
                "cache_access", level=self.name, addr=addr, hit=False, write=write
            )
        resp = self.downstream.fetch(
            self.line_addr(line_no), self.line_words, widx, now=now
        )
        if resp.avail != self.full_mask:
            raise CacheProtocolError(
                f"{self.name}: classic cache received a partial fill"
            )
        line = self.install_line(line_no, resp.values)
        if write:
            self._write_word(line, widx, value)
        return AccessResult(
            latency=resp.latency,
            served_by=resp.served_by,
            value=None if write else line.data[widx],
        )

    def _write_word(self, line: CacheLine, widx: int, value: int | None) -> None:
        if value is None:
            raise CacheProtocolError("store access requires a value")
        line.data[widx] = value & MASK32
        line.dirty = True

    # ---- word-ops (fast backend) --------------------------------------------------

    def load_word(self, addr: int, now: int = 0) -> int:
        """Word load returning ``latency << 3 | code`` (see interface).

        The MRU-hit path returns code 0 *without* touching stats — the
        caller tallies those hits and flushes ``accesses``/``hits`` in
        one batch; every other outcome delegates to :meth:`access`,
        which counts normally. Callers must ensure no observation hook
        (tracing, injection, runtime audits) is active.
        """
        line_no = addr >> self.line_shift
        line = self._sets[line_no & self.set_mask][0]
        if line.line_no == line_no and line.valid:
            return self.hit_latency << 3
        result = self.access(addr, False, None, now)
        return (result.latency << 3) | CODE_OF_SERVED[result.served_by]

    def store_word(self, addr: int, value: int, now: int = 0) -> bool:
        """Word store; True = uncounted MRU hit (caller batches stats)."""
        line_no = addr >> self.line_shift
        line = self._sets[line_no & self.set_mask][0]
        if line.line_no == line_no and line.valid:
            line.data[(addr >> 2) & (self.line_words - 1)] = value & MASK32
            line.dirty = True
            return True
        self.access(addr, True, value, now)
        return False

    # ---- LineSource role (serving the level above) -----------------------------------

    def fetch(
        self,
        addr: int,
        n_words: int,
        need_word: int,
        *,
        kind: TrafficKind = TrafficKind.FILL,
        record: bool = True,
        now: int = 0,
        pair_addr: int | None = None,
    ) -> FetchResponse:
        """Serve a sub-line (or same-size) fetch from the upper level.

        *record=False* suppresses hit/miss accounting — used for
        prefetch-induced lookups, which the paper's miss-rate figures do
        not count as demand accesses.
        """
        if n_words > self.line_words or self.line_words % n_words:
            raise CacheProtocolError(
                f"{self.name}: cannot serve {n_words}-word fetch from "
                f"{self.line_words}-word lines"
            )
        if addr % (n_words * WORD_BYTES):
            raise CacheProtocolError(f"unaligned fetch at {addr:#x}")
        line_no = self.line_no(addr)
        offset = (addr >> 2) & (self.line_words - 1)  # word offset inside my line
        if _inject.ACTIVE:
            _inject.SESSION.before_serve(self, addr, pair_addr)
        line = self._find(line_no)
        if line is not None:
            if record:
                self.stats.record_access(hit=True)
                if _trace.ACTIVE:
                    _trace.emit(
                        "cache_access", level=self.name, addr=addr, hit=True
                    )
            latency = self.hit_latency
            served = "l2"
        else:
            if record:
                self.stats.record_access(hit=False)
                if _trace.ACTIVE:
                    _trace.emit(
                        "cache_access", level=self.name, addr=addr, hit=False
                    )
            resp = self.downstream.fetch(
                self.line_addr(line_no),
                self.line_words,
                offset + need_word,
                kind=kind,
                now=now,
            )
            line = self.install_line(line_no, resp.values)
            latency = self.hit_latency + resp.latency
            served = resp.served_by
        return FetchResponse(
            values=line.data[offset : offset + n_words],
            avail=(1 << n_words) - 1,
            latency=latency,
            served_by=served,
        )

    def write_back(self, addr: int, values, mask, comp: int | None = None) -> None:
        """Accept a dirty eviction from the level above (write-allocate).

        *comp* is ignored — a conventional cache stores no format flags.
        """
        values = as_words(values)
        mask = as_mask(mask)
        n_words = len(values)
        if addr % (n_words * WORD_BYTES):
            raise CacheProtocolError(f"unaligned writeback at {addr:#x}")
        line_no = self.line_no(addr)
        offset = (addr >> 2) & (self.line_words - 1)
        line = self._find(line_no)
        if line is None:
            # Write-allocate: fetch the containing line, then merge.
            resp = self.downstream.fetch(
                self.line_addr(line_no),
                self.line_words,
                offset,
            )
            line = self.install_line(line_no, resp.values)
        data = line.data
        m = mask
        while m:
            low = m & -m
            i = low.bit_length() - 1
            m ^= low
            data[offset + i] = values[i]
        line.dirty = True

    # ---- introspection ----------------------------------------------------------

    def contents(self) -> list[tuple[int, bool]]:
        """(line_no, dirty) of every valid line; for tests."""
        return [
            (line.line_no, line.dirty)
            for ways in self._sets
            for line in ways
            if line.valid
        ]

    def flush(self) -> None:
        """Write back all dirty lines and invalidate everything."""
        for ways in self._sets:
            for line in ways:
                if line.valid:
                    if _inject.ACTIVE:
                        _inject.SESSION.before_evict(self, line)
                    if line.dirty:
                        self.stats.writebacks += 1
                        self.downstream.write_back(
                            self.line_addr(line.line_no),
                            line.data,
                            self.full_mask,
                        )
                line.invalidate()
