"""Metrics registry: counters, gauges and histograms with labels.

One queryable namespace for everything the simulator measures.
:class:`~repro.caches.stats.CacheStats`,
:class:`~repro.cpu.metrics.CoreMetrics` and
:class:`~repro.memory.bus.BusMeter` publish their counters here at the
end of every :meth:`Machine.run <repro.sim.machine.Machine.run>`, keyed
by ``(workload, config)`` labels, and the runner publishes its
memoization hit/miss counters — so a whole experiment campaign can be
interrogated after the fact (``REGISTRY.snapshot()``) without threading
result objects around.

Metrics are identified by a dotted name plus a frozen label set;
re-registering the same identity returns the same instrument, and values
accumulate across runs (the conventional registry contract).
"""

from __future__ import annotations

from bisect import bisect_right

from repro.errors import ConfigurationError

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "REGISTRY",
    "metric_key",
    "percentiles_from_buckets",
    "DEFAULT_BUCKETS",
    "SECONDS_BUCKETS",
    "PERCENTILES",
]

#: Default histogram buckets: powers of two spanning one cycle to a full
#: memory round trip and beyond (load-to-use latencies, queue depths).
DEFAULT_BUCKETS = (1, 2, 4, 8, 16, 32, 64, 128, 256)

#: Wall-clock buckets (seconds) for host-side durations: per-cell attempt
#: times, retry backoff delays. Spans a trivial cell (~10 ms) to a
#: full-scale straggler (~5 min); anything longer lands in overflow.
SECONDS_BUCKETS = (0.01, 0.05, 0.25, 1.0, 5.0, 15.0, 60.0, 300.0)

#: The quantiles every histogram estimates (tail behaviour is what
#: latency distributions are *for*; the mean hides stragglers).
PERCENTILES = (0.5, 0.95, 0.99)


def percentiles_from_buckets(
    bounds: tuple[float, ...],
    bucket_counts: list[int],
    count: int,
    minimum: float,
    maximum: float,
    qs: tuple[float, ...] = PERCENTILES,
) -> dict[str, float]:
    """Estimate quantiles from bucketed counts by linear interpolation.

    Within a bucket, samples are assumed uniform between its edges; the
    overflow bucket interpolates up to the observed maximum. Estimates
    are clamped to the observed ``[minimum, maximum]`` so a coarse
    bucketing never reports an impossible value. Shared by
    :meth:`Histogram.as_dict` and the cross-process telemetry merge
    (which re-estimates from *merged* buckets).
    """
    out: dict[str, float] = {}
    for q in qs:
        label = f"p{q * 100:g}"
        if count <= 0:
            out[label] = 0.0
            continue
        rank = q * count
        cum = 0
        estimate = maximum
        for i, c in enumerate(bucket_counts):
            if c == 0:
                continue
            if cum + c >= rank:
                lo = bounds[i - 1] if i > 0 else 0.0
                hi = bounds[i] if i < len(bounds) else max(maximum, bounds[-1])
                estimate = lo + (hi - lo) * ((rank - cum) / c)
                break
            cum += c
        out[label] = min(max(estimate, minimum), maximum)
    return out


def metric_key(name: str, labels: dict[str, object]) -> str:
    """Canonical flat key: ``name{k=v,...}`` with sorted labels."""
    if not labels:
        return name
    inner = ",".join(f"{k}={labels[k]}" for k in sorted(labels))
    return f"{name}{{{inner}}}"


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: dict[str, object]) -> None:
        self.name = name
        self.labels = labels
        self.value = 0

    def inc(self, amount: int | float = 1) -> None:
        """Add *amount* (must be non-negative)."""
        if amount < 0:
            raise ConfigurationError("counters only go up")
        self.value += amount


class Gauge:
    """A value that can move both ways (e.g. cache-occupancy, hit rate)."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: dict[str, object]) -> None:
        self.name = name
        self.labels = labels
        self.value = 0.0

    def set(self, value: float) -> None:
        """Replace the gauge's value."""
        self.value = value

    def add(self, amount: float) -> None:
        """Move the gauge by *amount* (either direction)."""
        self.value += amount


class Histogram:
    """Bucketed distribution with sum and count.

    ``bounds`` are inclusive upper edges; one implicit overflow bucket
    catches everything beyond the last edge.
    """

    __slots__ = (
        "name",
        "labels",
        "bounds",
        "bucket_counts",
        "count",
        "total",
        "minimum",
        "maximum",
    )

    def __init__(
        self,
        name: str,
        labels: dict[str, object],
        bounds: tuple[float, ...] = DEFAULT_BUCKETS,
    ) -> None:
        if not bounds or list(bounds) != sorted(bounds):
            raise ConfigurationError("histogram bounds must be sorted and non-empty")
        self.name = name
        self.labels = labels
        self.bounds = tuple(bounds)
        self.bucket_counts = [0] * (len(bounds) + 1)
        self.count = 0
        self.total = 0.0
        self.minimum = 0.0
        self.maximum = 0.0

    def observe(self, value: float) -> None:
        """Record one sample into its bucket."""
        self.bucket_counts[bisect_right(self.bounds, value - 1e-12)] += 1
        # bisect on value-epsilon makes integer edges inclusive.
        if self.count:
            self.minimum = min(self.minimum, value)
            self.maximum = max(self.maximum, value)
        else:
            self.minimum = self.maximum = value
        self.count += 1
        self.total += value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, q: float) -> float:
        """Estimated *q*-quantile (0 < q < 1) from the bucket counts."""
        return percentiles_from_buckets(
            self.bounds, self.bucket_counts, self.count,
            self.minimum, self.maximum, qs=(q,),
        )[f"p{q * 100:g}"]

    def as_dict(self) -> dict:
        """Plain-dict view: count, sum, mean, min/max, p50/p95/p99 and
        per-bucket counts."""
        edges = [str(b) for b in self.bounds] + ["inf"]
        out = {
            "count": self.count,
            "sum": self.total,
            "mean": self.mean,
            "min": self.minimum,
            "max": self.maximum,
            "buckets": dict(zip(edges, self.bucket_counts)),
        }
        out.update(
            percentiles_from_buckets(
                self.bounds, self.bucket_counts, self.count,
                self.minimum, self.maximum,
            )
        )
        return out


class MetricsRegistry:
    """Get-or-create instrument store keyed by (name, labels)."""

    def __init__(self) -> None:
        self._metrics: dict[str, Counter | Gauge | Histogram] = {}

    def _get(self, cls, name: str, labels: dict[str, object], **kwargs):
        key = metric_key(name, labels)
        metric = self._metrics.get(key)
        if metric is None:
            metric = cls(name, dict(labels), **kwargs)
            self._metrics[key] = metric
        elif not isinstance(metric, cls):
            raise ConfigurationError(
                f"metric {key!r} already registered as {type(metric).__name__}"
            )
        return metric

    def counter(self, name: str, **labels) -> Counter:
        """Get-or-create the counter at (name, labels)."""
        return self._get(Counter, name, labels)

    def gauge(self, name: str, **labels) -> Gauge:
        """Get-or-create the gauge at (name, labels)."""
        return self._get(Gauge, name, labels)

    def histogram(
        self, name: str, *, bounds: tuple[float, ...] = DEFAULT_BUCKETS, **labels
    ) -> Histogram:
        """Get-or-create the histogram at (name, labels)."""
        return self._get(Histogram, name, labels, bounds=bounds)

    # -- convenience write paths --------------------------------------------

    def inc(self, name: str, amount: int | float = 1, **labels) -> None:
        """Increment a counter in one call."""
        self.counter(name, **labels).inc(amount)

    def set_gauge(self, name: str, value: float, **labels) -> None:
        """Set a gauge in one call."""
        self.gauge(name, **labels).set(value)

    def observe(self, name: str, value: float, **labels) -> None:
        """Record a histogram sample in one call."""
        self.histogram(name, **labels).observe(value)

    # -- querying ------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._metrics)

    def get(self, name: str, **labels):
        """The instrument at (name, labels), or None."""
        return self._metrics.get(metric_key(name, labels))

    def value(self, name: str, **labels) -> float | int | None:
        """Current scalar value of a counter/gauge (None if absent)."""
        metric = self.get(name, **labels)
        if metric is None or isinstance(metric, Histogram):
            return None
        return metric.value

    def collect(self, prefix: str = "") -> list[Counter | Gauge | Histogram]:
        """All instruments whose name starts with *prefix*, sorted by key."""
        return [
            self._metrics[k]
            for k in sorted(self._metrics)
            if self._metrics[k].name.startswith(prefix)
        ]

    def snapshot(self, prefix: str = "") -> dict[str, object]:
        """Flat ``{key: value-or-histogram-dict}`` view for export."""
        out: dict[str, object] = {}
        for key in sorted(self._metrics):
            metric = self._metrics[key]
            if not metric.name.startswith(prefix):
                continue
            if isinstance(metric, Histogram):
                out[key] = metric.as_dict()
            else:
                out[key] = metric.value
        return out

    def dump(self, prefix: str = "") -> dict[str, dict]:
        """Typed snapshot: ``{key: {"type": ..., ...}}``.

        Unlike :meth:`snapshot`, the instrument *kind* survives
        serialization, which is what gives the cross-process telemetry
        merge (:mod:`repro.obs.telemetry`) its deterministic semantics:
        counters sum, gauges take a deterministic last-writer, histograms
        merge bucket-wise.
        """
        out: dict[str, dict] = {}
        for key in sorted(self._metrics):
            metric = self._metrics[key]
            if not metric.name.startswith(prefix):
                continue
            if isinstance(metric, Histogram):
                out[key] = {
                    "type": "histogram",
                    "bounds": list(metric.bounds),
                    "data": metric.as_dict(),
                }
            elif isinstance(metric, Gauge):
                out[key] = {"type": "gauge", "value": metric.value}
            else:
                out[key] = {"type": "counter", "value": metric.value}
        return out

    def reset(self) -> None:
        """Drop every instrument (tests and fresh campaigns)."""
        self._metrics.clear()


#: The process-global registry everything publishes into by default.
REGISTRY = MetricsRegistry()
