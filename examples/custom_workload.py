#!/usr/bin/env python
"""Authoring a custom workload and evaluating it on all five machines.

The :class:`ProgramBuilder` API lets you write a kernel as ordinary
Python; the builder executes it against a simulated heap while emitting
the instruction trace. This example builds a small sparse-matrix-times-
vector kernel (CSR layout) — index arrays are small values, the column
walk is semi-regular — and runs it across BC/BCC/HAC/BCP/CPP.

Run:  python examples/custom_workload.py
"""

from repro.isa.opcodes import OpClass
from repro.sim.config import SimConfig
from repro.sim.runner import run_program
from repro.utils.tables import format_bar_chart, format_table
from repro.workloads.base import Program, ProgramBuilder

ROWS = 160
NNZ_PER_ROW = 6


def build_spmv(seed: int = 7) -> Program:
    pb = ProgramBuilder("example.spmv", seed)

    nnz = ROWS * NNZ_PER_ROW
    row_ptr = pb.static_array(ROWS + 1)
    col_idx = pb.static_array(nnz)
    vals = pb.static_array(nnz)
    x = pb.static_array(ROWS)
    y = pb.static_array(ROWS)

    # ---- build the CSR structure -----------------------------------------
    cols = []
    for i in pb.for_range("spmv.mkrows", ROWS, cond_srcs=("g",)):
        pb.store(row_ptr + 4 * i, i * NNZ_PER_ROW, base="g", label="spmv.init.rp")
        for k in range(NNZ_PER_ROW):
            j = int(pb.rng.integers(0, ROWS))
            cols.append(j)
            idx = i * NNZ_PER_ROW + k
            pb.store(col_idx + 4 * idx, j, base="g", label="spmv.init.ci")
            pb.store(vals + 4 * idx, pb.rand_large(), base="g", label="spmv.init.v")
    pb.store(row_ptr + 4 * ROWS, nnz, base="g", label="spmv.init.rplast")
    xs = []
    for i in pb.for_range("spmv.mkx", ROWS, cond_srcs=("g",)):
        xv = pb.rand_small(1, 100)
        xs.append(xv)
        pb.store(x + 4 * i, xv, base="g", label="spmv.init.x")

    # ---- y = A @ x ----------------------------------------------------------
    for i in pb.for_range("spmv.rows", ROWS, cond_srcs=("i",)):
        start = pb.load(row_ptr + 4 * i, "s", base="g", label="spmv.ld.rp0")
        end = pb.load(row_ptr + 4 * (i + 1), "e", base="g", label="spmv.ld.rp1")
        acc = 0
        pb.op("acc", (), label="spmv.zero")
        for idx in range(start, end):
            pb.branch("spmv.inner", taken=idx < end - 1, srcs=("e",))
            j = pb.load(col_idx + 4 * idx, "j", base="s", label="spmv.ld.col")
            v = pb.load(vals + 4 * idx, "v", base="s", label="spmv.ld.val")
            xv = pb.load(x + 4 * j, "xv", base="j", label="spmv.ld.x")
            pb.op("prod", ("v", "xv"), kind=OpClass.IMULT, label="spmv.mul")
            pb.op("acc", ("acc", "prod"), label="spmv.add")
            acc = (acc + v * xv) & 0xFFFF_FFFF
        pb.store(y + 4 * i, acc, base="g", src="acc", label="spmv.st.y")

    return pb.build(
        description="CSR sparse matrix-vector product",
        params={"rows": ROWS, "nnz": nnz},
    )


def main() -> None:
    program = build_spmv()
    print(
        f"spmv: {program.params['rows']} rows, {program.params['nnz']} "
        f"non-zeros, {program.n_instructions} instructions\n"
    )
    rows = []
    cycles = {}
    for config in ("BC", "BCC", "HAC", "BCP", "CPP"):
        result = run_program(program, SimConfig(cache_config=config))
        cycles[config] = float(result.cycles)
        rows.append(
            [
                config,
                result.cycles,
                round(result.ipc, 3),
                result.l1.misses,
                result.l2.misses,
                result.bus_words,
            ]
        )
    print(
        format_table(
            ["config", "cycles", "IPC", "L1 misses", "L2 misses", "bus words"],
            rows,
        )
    )
    print()
    base = cycles["BC"]
    print(
        format_bar_chart(
            {k: 100.0 * v / base for k, v in cycles.items()},
            title="execution time, % of BC (lower is better)",
            unit="%",
            baseline=100.0,
        )
    )


if __name__ == "__main__":
    main()
