"""Span recording: gate semantics, nesting, cross-process adoption."""

import pytest

from repro.obs import span as span_mod
from repro.obs.span import (
    SpanRecord,
    adopt,
    current_context,
    drain,
    finish_span,
    finished_spans,
    install,
    new_trace_id,
    span,
    start_span,
    uninstall,
)


@pytest.fixture(autouse=True)
def _clean_spans():
    uninstall()
    yield
    uninstall()


class TestGate:
    def test_disarmed_span_yields_none(self):
        with span("work") as record:
            assert record is None
        assert finished_spans() == []

    def test_disarmed_start_span_returns_none(self):
        assert start_span("work") is None
        finish_span(None)  # must be a no-op, not a crash

    def test_install_arms_and_returns_trace_id(self):
        trace_id = install()
        assert span_mod.ACTIVE
        assert trace_id
        with span("work") as record:
            assert record.trace_id == trace_id

    def test_install_is_idempotent_on_trace_id(self):
        first = install()
        assert install() == first
        assert install("forced") == "forced"

    def test_uninstall_returns_finished_spans(self):
        install()
        with span("a"):
            pass
        done = uninstall()
        assert [s.name for s in done] == ["a"]
        assert not span_mod.ACTIVE
        assert finished_spans() == []


class TestNesting:
    def test_child_parents_under_open_span(self):
        install()
        with span("outer") as outer:
            with span("inner") as inner:
                assert inner.parent_id == outer.span_id
        assert outer.parent_id is None

    def test_current_context_tracks_stack(self):
        install("t")
        assert current_context() is None
        with span("outer") as outer:
            assert current_context() == ("t", outer.span_id)
        assert current_context() is None

    def test_exception_marks_error_and_reraises(self):
        install()
        with pytest.raises(ValueError):
            with span("doomed"):
                raise ValueError("boom")
        (record,) = finished_spans()
        assert record.status == "error"
        assert record.end >= record.start

    def test_finished_in_completion_order(self):
        install()
        with span("outer"):
            with span("inner"):
                pass
        assert [s.name for s in finished_spans()] == ["inner", "outer"]


class TestManualApi:
    def test_start_finish_records_attrs(self):
        install()
        record = start_span("attempt", workload="olden.mst", attempt=1)
        finish_span(record, status="error", outcome="timeout")
        assert record.attrs == {
            "workload": "olden.mst",
            "attempt": 1,
            "outcome": "timeout",
        }
        assert record.status == "error"
        assert finished_spans() == [record]

    def test_explicit_parent_by_record_and_id(self):
        install()
        parent = start_span("run")
        by_record = start_span("a", parent=parent)
        by_id = start_span("b", parent=parent.span_id)
        assert by_record.parent_id == parent.span_id
        assert by_id.parent_id == parent.span_id

    def test_span_ids_unique(self):
        install()
        ids = {start_span(f"s{i}").span_id for i in range(50)}
        assert len(ids) == 50


class TestAdoption:
    def test_adopted_roots_parent_under_remote_span(self):
        adopt("remote-trace", "remote-span")
        with span("child-work") as record:
            assert record.trace_id == "remote-trace"
            assert record.parent_id == "remote-span"
            # A locally nested span parents locally, not remotely.
            with span("nested") as inner:
                assert inner.parent_id == record.span_id

    def test_drain_forgets(self):
        install()
        with span("a"):
            pass
        assert [s.name for s in drain()] == ["a"]
        assert drain() == []


class TestSerialization:
    def test_dict_roundtrip(self):
        install()
        with span("cell", worker=1) as record:
            record.set_op_clock(100, 900)
        data = record.as_dict()
        back = SpanRecord.from_dict(data)
        assert back == record
        assert data["op_start"] == 100 and data["op_end"] == 900

    def test_op_clock_omitted_when_unset(self):
        install()
        with span("cell") as record:
            pass
        assert "op_start" not in record.as_dict()

    def test_trace_ids_distinct(self):
        assert new_trace_id() != new_trace_id()
