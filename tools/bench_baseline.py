#!/usr/bin/env python
"""Measure, record, and gate full-machine simulator throughput.

Drives the same scenario as
``benchmarks/bench_micro_simulator.py::test_full_machine_instructions_per_second``
(spec95.130.li, seed 1, scale 0.3, BC and CPP) and compares against the
committed baseline ``BENCH_micro.json``:

* ``--record``   — measure, (over)write the baseline file, and append a
  timestamped entry to ``BENCH_history.jsonl`` (the baseline is always
  the latest snapshot; the history is the full recorded series);
* ``--check``    — measure and exit non-zero on regression: simulated
  cycle counts must match the baseline **exactly** (the bit-identity
  contract — any drift is a correctness bug, not noise), and throughput
  must stay within ``--tolerance`` of the recorded insn/s (a band, since
  shared CI runners are noisy). Additionally *warns* (without failing)
  when the last three recorded runs trend monotonically downward — slow
  leaks that never trip the tolerance band in one step still surface;
* ``--profile N`` — additionally run one CPP pass under cProfile and
  print the N hottest functions;
* no flags       — measure and print.

Throughput is best-of-``--reps``: the maximum over repetitions estimates
the machine's true speed with the least scheduling noise.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from datetime import datetime, timezone
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.sim.machine import Machine  # noqa: E402
from repro.workloads.registry import generate  # noqa: E402

BASELINE_PATH = REPO_ROOT / "BENCH_micro.json"
HISTORY_PATH = REPO_ROOT / "BENCH_history.jsonl"
SCHEMA_VERSION = 1

WORKLOAD = "spec95.130.li"
SEED = 1
SCALE = 0.3
CONFIGS = ("BC", "CPP")


def measure(reps: int) -> dict:
    """Best-of-*reps* insn/s and cycle counts per config."""
    program = generate(WORKLOAD, seed=SEED, scale=SCALE)
    n = len(program.trace)
    out: dict = {
        "schema": SCHEMA_VERSION,
        "workload": WORKLOAD,
        "seed": SEED,
        "scale": SCALE,
        "instructions": n,
        "reps": reps,
        "configs": {},
    }
    for config in CONFIGS:
        best = 0.0
        cycles = None
        for _ in range(reps):
            machine = Machine(config)
            t0 = time.perf_counter()
            result = machine.run(program)
            elapsed = time.perf_counter() - t0
            best = max(best, n / elapsed)
            cycles = result.cycles
        out["configs"][config] = {
            "insn_per_sec": round(best),
            "cycles": cycles,
        }
    return out


def render(measured: dict) -> str:
    lines = [
        f"{WORKLOAD} seed={SEED} scale={SCALE} "
        f"({measured['instructions']} insns, best of {measured['reps']})"
    ]
    for config, cell in measured["configs"].items():
        lines.append(
            f"  {config:>4}: {cell['insn_per_sec']:>9,} insn/s"
            f"  ({cell['cycles']:,} cycles)"
        )
    return "\n".join(lines)


def check(measured: dict, baseline: dict, tolerance: float) -> list[str]:
    """Regression findings (empty = pass)."""
    problems = []
    for config in CONFIGS:
        base = baseline["configs"].get(config)
        cur = measured["configs"][config]
        if base is None:
            problems.append(f"{config}: missing from baseline; re-record")
            continue
        if cur["cycles"] != base["cycles"]:
            problems.append(
                f"{config}: simulated cycles changed "
                f"{base['cycles']:,} -> {cur['cycles']:,} — the simulator's "
                "output drifted; fix it or re-record the baseline deliberately"
            )
        floor = base["insn_per_sec"] * (1.0 - tolerance)
        if cur["insn_per_sec"] < floor:
            problems.append(
                f"{config}: throughput {cur['insn_per_sec']:,} insn/s is below "
                f"{floor:,.0f} (baseline {base['insn_per_sec']:,} "
                f"- {tolerance:.0%} tolerance)"
            )
    return problems


def load_history(path: Path = HISTORY_PATH) -> list[dict]:
    """Recorded baseline entries, oldest first (lenient on bad lines)."""
    if not path.exists():
        return []
    entries = []
    for line in path.read_text().splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            entry = json.loads(line)
        except json.JSONDecodeError:
            continue
        if isinstance(entry, dict) and "configs" in entry:
            entries.append(entry)
    return entries


def append_history(measured: dict, path: Path = HISTORY_PATH) -> dict:
    """Append one timestamped record of *measured*; returns the entry."""
    entry = dict(measured)
    entry["recorded"] = datetime.now(timezone.utc).isoformat(
        timespec="seconds"
    )
    with path.open("a") as fh:
        fh.write(json.dumps(entry, sort_keys=True) + "\n")
    return entry


def trend_warnings(history: list[dict], window: int = 3) -> list[str]:
    """Configs whose last *window* recorded runs fell monotonically.

    A single noisy run stays inside the --check tolerance band; what that
    band can't see is a slow leak — each recording a little worse than
    the one before. Three strictly decreasing recordings in a row is the
    (warn-only) signal to look.
    """
    if len(history) < window:
        return []
    recent = history[-window:]
    warnings = []
    for config in CONFIGS:
        series = [
            e["configs"][config]["insn_per_sec"]
            for e in recent
            if config in e.get("configs", {})
        ]
        if len(series) == window and all(
            series[i] > series[i + 1] for i in range(window - 1)
        ):
            trail = " -> ".join(f"{v:,}" for v in series)
            warnings.append(
                f"{config}: throughput fell across the last {window} "
                f"recorded runs ({trail} insn/s)"
            )
    return warnings


def profile_top(top_n: int) -> str:
    """One CPP pass under cProfile; top-*top_n* functions by self time."""
    import cProfile
    import io
    import pstats

    program = generate(WORKLOAD, seed=SEED, scale=SCALE)
    machine = Machine("CPP")
    profiler = cProfile.Profile()
    profiler.enable()
    machine.run(program)
    profiler.disable()
    buf = io.StringIO()
    pstats.Stats(profiler, stream=buf).sort_stats("tottime").print_stats(top_n)
    return buf.getvalue()


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--record", action="store_true", help=f"write {BASELINE_PATH.name}"
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="fail (exit 1) on regression against the committed baseline",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.5,
        help="allowed fractional throughput drop for --check (default 0.5; "
        "cycle counts are always compared exactly)",
    )
    parser.add_argument(
        "--reps",
        type=int,
        default=5,
        help="repetitions per config; best is kept (default 5)",
    )
    parser.add_argument(
        "--profile",
        type=int,
        default=None,
        metavar="N",
        help="also cProfile one CPP run and print the top-N functions",
    )
    args = parser.parse_args(argv)

    measured = measure(args.reps)
    print(render(measured))

    rc = 0
    if args.check:
        if not BASELINE_PATH.exists():
            print(f"no baseline at {BASELINE_PATH}; run --record first")
            rc = 1
        else:
            baseline = json.loads(BASELINE_PATH.read_text())
            problems = check(measured, baseline, args.tolerance)
            if problems:
                print("\nPERF CHECK FAILED:")
                for p in problems:
                    print(f"  - {p}")
                rc = 1
            else:
                print(
                    f"\nperf check passed (tolerance {args.tolerance:.0%}, "
                    "cycles exact)"
                )
        for warning in trend_warnings(load_history()):
            print(f"WARNING: {warning}")
    if args.record:
        BASELINE_PATH.write_text(json.dumps(measured, indent=2) + "\n")
        append_history(measured)
        print(f"baseline written to {BASELINE_PATH}")
        print(f"history appended to {HISTORY_PATH}")
    if args.profile:
        print(profile_top(args.profile))
    return rc


if __name__ == "__main__":
    sys.exit(main())
