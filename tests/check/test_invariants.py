"""Tests for the structural invariant layer (repro.check.invariants).

Each invariant is exercised both ways: a legitimately driven cache
passes the full audit, and a hand-corrupted frame trips exactly the
named invariant with a debuggable :class:`InvariantViolation` (typed
fields plus a JSON-serializable frame dump). The runtime arming path
(``REPRO_CHECK=1`` / ``set_runtime_checks``) and its zero-cost disabled
default are covered at the end.
"""

import json

import pytest

from repro.caches.compression_cache import CompressionCache, CPPPolicy
from repro.caches.interface import MemoryPort
from repro.check.invariants import audit, frame_dump, install_runtime_checks
from repro.check.runtime import (
    ENV_VAR,
    runtime_checks_enabled,
    set_runtime_checks,
)
from repro.errors import InvariantViolation
from repro.memory.image import MemoryImage
from repro.memory.main_memory import MainMemory

BASE = 0x1000_0000
LINE = 64  # 16 words
BIG = 0xDEAD_BEEF  # incompressible at heap addresses


def make_cpp(*, size=512, assoc=2):
    mem = MainMemory(MemoryImage(), latency=100)
    cache = CompressionCache(
        "C",
        size_bytes=size,
        assoc=assoc,
        line_bytes=LINE,
        hit_latency=1,
        downstream=MemoryPort(mem, writeback_compressed=True),
        policy=CPPPolicy(),
    )
    return cache, mem


def seed_pair(mem, base=BASE):
    """Two adjacent small-valued lines: a fill of one prefetches the other."""
    for i in range(2 * LINE // 4):
        mem.poke_word(base + 4 * i, 40 + i)


def frame_with_affiliated(cache, mem):
    """Fill BASE so its frame holds affiliated words of BASE+LINE."""
    seed_pair(mem)
    cache.access(BASE, write=False)
    frame = cache._sets[cache.set_index(cache.line_no(BASE))][0]
    assert frame.aa, "fixture should have prefetched affiliated words"
    return frame


class TestAuditPasses:
    def test_on_a_fresh_cache(self):
        cache, _ = make_cpp()
        audit(cache)

    def test_after_a_mixed_workout(self):
        cache, mem = make_cpp()
        for i in range(64):
            mem.poke_word(BASE + 4 * i, 7 * i if i % 3 else BIG)
        for i in range(64):
            cache.access(BASE + 4 * i, write=False)
            if i % 2:
                cache.access(BASE + 4 * i, write=True, value=BIG + i)
            audit(cache)


def expect(invariant, cache):
    with pytest.raises(InvariantViolation) as excinfo:
        audit(cache)
    assert excinfo.value.invariant == invariant
    return excinfo.value


class TestEachInvariantFires:
    def test_flag_domain(self):
        cache, mem = make_cpp()
        seed_pair(mem)
        cache.access(BASE, write=False)
        frame = cache._sets[cache.set_index(cache.line_no(BASE))][0]
        frame.pa &= ~1  # word 0 absent but its VCP bit survives
        expect("flag-domain", cache)

    def test_space_rule(self):
        cache, mem = make_cpp()
        frame = frame_with_affiliated(cache, mem)
        slot = (frame.aa & -frame.aa).bit_length() - 1
        frame.pvals[slot] = BIG  # incompressible primary now needs the slot
        frame.vcp &= ~(1 << slot)
        expect("space-rule", cache)

    def test_vcp_memo(self):
        cache, mem = make_cpp()
        seed_pair(mem)
        cache.access(BASE, write=False)
        frame = cache._sets[cache.set_index(cache.line_no(BASE))][0]
        frame.pvals[0] = BIG  # memo still says compressible
        violation = expect("vcp-memo", cache)
        assert "word 0" in violation.detail

    def test_aa_compressible(self):
        cache, mem = make_cpp()
        frame = frame_with_affiliated(cache, mem)
        slot = (frame.aa & -frame.aa).bit_length() - 1
        frame.avals[slot] = BIG
        expect("aa-compressible", cache)

    def test_home_set(self):
        cache, mem = make_cpp()
        seed_pair(mem)
        cache.access(BASE, write=False)
        frame = cache._sets[cache.set_index(cache.line_no(BASE))][0]
        frame.line_no ^= 1  # maps to the other set now
        expect("home-set", cache)

    def test_unique_primary(self):
        cache, mem = make_cpp(assoc=2)
        seed_pair(mem)
        cache.access(BASE, write=False)
        ways = cache._sets[cache.set_index(cache.line_no(BASE))]
        ways[1].install_primary(
            ways[0].line_no, list(ways[0].pvals), ways[0].pa, ways[0].vcp
        )
        expect("unique-primary", cache)

    def test_idle_state(self):
        cache, _ = make_cpp()
        frame = cache._sets[0][0]
        frame.dirty = True
        expect("idle-state", cache)

    def test_single_copy(self):
        cache, mem = make_cpp(assoc=2)
        frame = frame_with_affiliated(cache, mem)
        aff_no = cache.affiliated_line(frame.line_no)
        ways = cache._sets[cache.set_index(aff_no)]
        other = ways[1]
        other.install_primary(aff_no, [1] * cache.line_words, 1, 1)
        expect("single-copy", cache)

    def test_set_shape(self):
        cache, _ = make_cpp()
        cache._sets[0].append(cache._sets[0][0])
        expect("set-shape", cache)


class TestViolationPayload:
    def test_carries_typed_fields_and_serializable_dump(self):
        cache, mem = make_cpp()
        seed_pair(mem)
        cache.access(BASE, write=False)
        frame = cache._sets[cache.set_index(cache.line_no(BASE))][0]
        frame.pvals[0] = BIG
        with pytest.raises(InvariantViolation) as excinfo:
            audit(cache)
        violation = excinfo.value
        assert violation.level == "C"
        assert violation.set_index is not None
        assert violation.frames, "dump should include the offending frame"
        text = json.dumps(violation.dump())
        assert "vcp-memo" in text

    def test_frame_dump_is_json_serializable(self):
        cache, mem = make_cpp()
        frame = frame_with_affiliated(cache, mem)
        dump = frame_dump(frame)
        round_tripped = json.loads(json.dumps(dump))
        assert round_tripped["line_no"] == frame.line_no
        assert len(round_tripped["pa"]) == frame.n_words


class TestRuntimeLayer:
    def test_disabled_cache_keeps_plain_class_methods(self):
        cache, _ = make_cpp()
        # Zero-overhead claim: no per-instance wrappers unless armed.
        for name in ("access", "fetch", "write_back", "flush"):
            assert name not in vars(cache)

    def test_armed_cache_audits_after_every_mutator(self):
        cache, mem = make_cpp()
        install_runtime_checks(cache)
        assert vars(cache)["access"].__name__ == "checked_access"
        seed_pair(mem)
        cache.access(BASE, write=False)  # audits and passes
        # Corrupt, then let the next mutation surface it.
        frame = cache._sets[cache.set_index(cache.line_no(BASE))][0]
        frame.pvals[0] = BIG
        with pytest.raises(InvariantViolation):
            cache.access(BASE + LINE * 8, write=False)

    def test_install_is_idempotent(self):
        cache, _ = make_cpp()
        install_runtime_checks(cache)
        wrapped = cache.access
        install_runtime_checks(cache)
        assert cache.access is wrapped

    def test_set_runtime_checks_arms_new_instances(self, monkeypatch):
        monkeypatch.delenv(ENV_VAR, raising=False)
        assert not runtime_checks_enabled()
        set_runtime_checks(True)
        try:
            assert runtime_checks_enabled()
            cache, _ = make_cpp()
            assert getattr(cache, "_repro_check_armed", False)
        finally:
            set_runtime_checks(False)
        assert not runtime_checks_enabled()
        cache, _ = make_cpp()
        assert not getattr(cache, "_repro_check_armed", False)

    def test_env_gate_spellings(self, monkeypatch):
        for off in ("", "0", "false", "OFF", "no"):
            monkeypatch.setenv(ENV_VAR, off)
            assert not runtime_checks_enabled()
        monkeypatch.setenv(ENV_VAR, "1")
        assert runtime_checks_enabled()
