#!/usr/bin/env python
"""Regenerate the paper's full evaluation and export the raw data.

Produces, in ./out/ :

* ``evaluation.txt``  — every figure as tables (+ optional bar charts);
* ``matrix.json``     — every (workload x config) result, every counter;
* ``matrix.csv``      — the flat headline table;
* ``robustness.txt``  — the headline CPP-vs-BC speedup re-measured across
  three RNG seeds (an analysis the paper could not do with fixed
  reference inputs).

Run:  python examples/full_evaluation.py --quick    (~1 min)
      python examples/full_evaluation.py            (~5 min, full scale)
"""

import sys
from pathlib import Path

from repro.analysis.report import evaluation_report
from repro.sim.runner import run_matrix
from repro.sim.results_io import results_to_csv, results_to_json
from repro.sim.sweeps import compare_over_seeds
from repro.utils.tables import format_table
from repro.workloads.registry import WORKLOAD_NAMES

CONFIGS = ["BC", "BCC", "HAC", "BCP", "CPP"]


def main() -> None:
    quick = "--quick" in sys.argv
    scale = 0.25 if quick else 1.0
    out_dir = Path("out")
    out_dir.mkdir(exist_ok=True)

    print(f"[1/3] regenerating all figures (scale={scale}) ...")
    report = evaluation_report(
        scale=scale, charts=True, output_path=out_dir / "evaluation.txt"
    )
    print(f"      -> {out_dir / 'evaluation.txt'} ({len(report.splitlines())} lines)")

    print("[2/3] exporting the raw (workload x config) matrix ...")
    matrix = run_matrix(list(WORKLOAD_NAMES), CONFIGS, scale=scale)
    results_to_json(matrix, out_dir / "matrix.json")
    results_to_csv(matrix, out_dir / "matrix.csv")
    print(f"      -> {out_dir / 'matrix.json'}, {out_dir / 'matrix.csv'}")

    print("[3/3] seed-robustness of the headline claim ...")
    rows = []
    for workload in ("olden.treeadd", "spec95.130.li", "spec2000.300.twolf"):
        cmp_ = compare_over_seeds(
            workload, seeds=(1, 2, 3), scale=min(scale, 0.35)
        )
        rows.append(
            [
                workload,
                f"{100 * (1 - cmp_.mean_ratio):.1f}%",
                f"{cmp_.wins}/{len(cmp_.ratios)}",
                "yes" if cmp_.always_wins else "no",
            ]
        )
    table = format_table(
        ["workload", "mean CPP speedup", "seeds won", "wins every seed"],
        rows,
        title="CPP vs BC across seeds",
    )
    (out_dir / "robustness.txt").write_text(table + "\n", "utf-8")
    print(table)


if __name__ == "__main__":
    main()
