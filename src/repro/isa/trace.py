"""Columnar instruction traces.

A :class:`Trace` stores one NumPy column per instruction field. The CPU
model iterates it with plain integer indexing (cheap), while analyses
(Figure 3 compressibility, footprint statistics) operate on whole columns
vectorized.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator

import numpy as np

from repro.errors import TraceError
from repro.isa.instruction import NO_REG, Instruction
from repro.isa.opcodes import EXEC_LATENCY, OpClass
from repro.utils.bitops import MASK32

__all__ = ["Trace", "TraceBuilder", "TraceHot"]

_MAX_REG = 32767  # dest/src columns are int16

#: Execution latency indexed by op-class code (for the hot views).
_LATENCY_TABLE = np.array(
    [EXEC_LATENCY[OpClass(code)] for code in range(max(OpClass) + 1)],
    dtype=np.int64,
)


class TraceHot:
    """Plain-Python-list views of a trace, for the core's cycle loop.

    Each field mirrors a :class:`Trace` column as a list of native ints /
    bools, so the run loop indexes them without per-element NumPy scalar
    boxing. ``is_mem`` / ``is_branch`` / ``latency`` are derived columns
    (op classification and execution latency), computed once per trace.
    """

    __slots__ = (
        "pc",
        "op",
        "dest",
        "src1",
        "src2",
        "addr",
        "value",
        "taken",
        "is_mem",
        "is_branch",
        "latency",
        "rows",
        "bp",
    )

    def __init__(self, trace: "Trace") -> None:
        self.pc = trace.pc.tolist()
        self.op = trace.op.tolist()
        self.dest = trace.dest.tolist()
        self.src1 = trace.src1.tolist()
        self.src2 = trace.src2.tolist()
        self.addr = trace.addr.tolist()
        self.value = trace.value.tolist()
        self.taken = trace.taken.tolist()
        self.is_mem = trace.mem_mask.tolist()
        self.is_branch = trace.branch_mask.tolist()
        self.latency = _LATENCY_TABLE[trace.op].tolist()
        #: Dispatch-stage row view: one tuple per instruction, so the
        #: dispatch loop does one index + unpack instead of seven list
        #: indexings per dispatched instruction.
        self.rows = list(
            zip(
                self.op,
                self.dest,
                self.src1,
                self.src2,
                self.addr,
                self.value,
                self.is_mem,
            )
        )
        #: Branch-prediction streams keyed by predictor table size (filled
        #: lazily by the core; see repro.cpu.branch.mispredict_flags).
        self.bp: dict[int, tuple[list[bool], int, int]] = {}


class Trace:
    """An immutable columnar sequence of dynamic instructions."""

    __slots__ = (
        "pc",
        "op",
        "dest",
        "src1",
        "src2",
        "addr",
        "value",
        "taken",
        "name",
        "_hot",
        "_predecoded",
        "_predecode_path",
    )

    def __init__(
        self,
        *,
        pc: np.ndarray,
        op: np.ndarray,
        dest: np.ndarray,
        src1: np.ndarray,
        src2: np.ndarray,
        addr: np.ndarray,
        value: np.ndarray,
        taken: np.ndarray,
        name: str = "",
    ) -> None:
        n = len(pc)
        for col_name, col in (
            ("op", op),
            ("dest", dest),
            ("src1", src1),
            ("src2", src2),
            ("addr", addr),
            ("value", value),
            ("taken", taken),
        ):
            if len(col) != n:
                raise TraceError(f"column {col_name!r} length {len(col)} != {n}")
        self.pc = pc
        self.op = op
        self.dest = dest
        self.src1 = src1
        self.src2 = src2
        self.addr = addr
        self.value = value
        self.taken = taken
        self.name = name
        self._hot: TraceHot | None = None
        #: Fast-backend pre-decode memo + optional on-disk sidecar path
        #: (managed by repro.isa.predecode; None until first use).
        self._predecoded = None
        self._predecode_path = None

    def hot(self) -> TraceHot:
        """Native-list views of all columns (cached; see :class:`TraceHot`)."""
        if self._hot is None:
            self._hot = TraceHot(self)
        return self._hot

    # ---- sequence protocol -----------------------------------------------

    def __len__(self) -> int:
        return len(self.pc)

    def __getitem__(self, i: int) -> Instruction:
        if not -len(self) <= i < len(self):
            raise IndexError(i)
        return Instruction(
            pc=int(self.pc[i]),
            op=OpClass(int(self.op[i])),
            dest=int(self.dest[i]),
            src1=int(self.src1[i]),
            src2=int(self.src2[i]),
            addr=int(self.addr[i]),
            value=int(self.value[i]),
            taken=bool(self.taken[i]),
        )

    def __iter__(self) -> Iterator[Instruction]:
        for i in range(len(self)):
            yield self[i]

    # ---- bulk views ---------------------------------------------------------

    @property
    def mem_mask(self) -> np.ndarray:
        """Boolean mask over instructions that access memory."""
        return (self.op == np.uint8(OpClass.LOAD)) | (
            self.op == np.uint8(OpClass.STORE)
        )

    @property
    def load_mask(self) -> np.ndarray:
        return self.op == np.uint8(OpClass.LOAD)

    @property
    def store_mask(self) -> np.ndarray:
        return self.op == np.uint8(OpClass.STORE)

    @property
    def branch_mask(self) -> np.ndarray:
        return self.op == np.uint8(OpClass.BRANCH)

    @property
    def n_mem(self) -> int:
        return int(np.count_nonzero(self.mem_mask))

    @property
    def n_loads(self) -> int:
        return int(np.count_nonzero(self.load_mask))

    @property
    def n_stores(self) -> int:
        return int(np.count_nonzero(self.store_mask))

    @property
    def n_branches(self) -> int:
        return int(np.count_nonzero(self.branch_mask))

    def accessed_values(self) -> tuple[np.ndarray, np.ndarray]:
        """(values, addrs) of every word-level memory access, in order.

        This is the input stream of the paper's Figure 3 study.
        """
        mask = self.mem_mask
        return self.value[mask], self.addr[mask]

    def summary(self) -> dict[str, int]:
        """Instruction-mix counts for reports."""
        return {
            "instructions": len(self),
            "loads": self.n_loads,
            "stores": self.n_stores,
            "branches": self.n_branches,
        }

    def validate(self) -> None:
        """Check structural invariants; raises :class:`TraceError` on failure."""
        if np.any(self.addr[self.mem_mask] & 3):
            raise TraceError("unaligned memory access address in trace")
        if np.any(self.op > np.uint8(max(OpClass))):
            raise TraceError("invalid op class code in trace")
        non_mem = ~self.mem_mask
        if np.any(self.addr[non_mem] != 0):
            raise TraceError("non-memory instruction carries an address")
        stores = self.store_mask
        if np.any(self.dest[stores] != NO_REG):
            raise TraceError("store instruction has a destination register")


class TraceBuilder:
    """Append-only builder producing a :class:`Trace`.

    Uses Python lists during construction (append-heavy) and freezes to
    NumPy columns once, per the optimize-after-it-works guidance.
    """

    def __init__(self, name: str = "") -> None:
        self.name = name
        self._pc: list[int] = []
        self._op: list[int] = []
        self._dest: list[int] = []
        self._src1: list[int] = []
        self._src2: list[int] = []
        self._addr: list[int] = []
        self._value: list[int] = []
        self._taken: list[bool] = []

    def __len__(self) -> int:
        return len(self._pc)

    def append(
        self,
        pc: int,
        op: OpClass,
        *,
        dest: int = NO_REG,
        src1: int = NO_REG,
        src2: int = NO_REG,
        addr: int = 0,
        value: int = 0,
        taken: bool = False,
    ) -> None:
        """Append one dynamic instruction."""
        if op in (OpClass.LOAD, OpClass.STORE):
            if addr & 3:
                raise TraceError(f"memory access address {addr:#x} not word aligned")
        elif addr:
            raise TraceError("only memory instructions may carry an address")
        if op == OpClass.STORE and dest != NO_REG:
            raise TraceError("stores cannot have a destination register")
        for reg in (dest, src1, src2):
            if not (reg == NO_REG or 0 <= reg <= _MAX_REG):
                raise TraceError(f"register id {reg} out of range")
        self._pc.append(pc & MASK32)
        self._op.append(int(op))
        self._dest.append(dest)
        self._src1.append(src1)
        self._src2.append(src2)
        self._addr.append(addr & MASK32)
        self._value.append(value & MASK32)
        self._taken.append(taken)

    def extend(self, instructions: Iterable[Instruction]) -> None:
        """Append a sequence of instruction records."""
        for ins in instructions:
            self.append(
                ins.pc,
                ins.op,
                dest=ins.dest,
                src1=ins.src1,
                src2=ins.src2,
                addr=ins.addr,
                value=ins.value,
                taken=ins.taken,
            )

    def build(self) -> Trace:
        """Freeze into an immutable columnar :class:`Trace`."""
        trace = Trace(
            pc=np.asarray(self._pc, dtype=np.uint32),
            op=np.asarray(self._op, dtype=np.uint8),
            dest=np.asarray(self._dest, dtype=np.int16),
            src1=np.asarray(self._src1, dtype=np.int16),
            src2=np.asarray(self._src2, dtype=np.int16),
            addr=np.asarray(self._addr, dtype=np.uint32),
            value=np.asarray(self._value, dtype=np.uint32),
            taken=np.asarray(self._taken, dtype=bool),
            name=self.name,
        )
        trace.validate()
        return trace
