"""Bit-flip campaigns: plan, run, classify, report.

A campaign cell is **one fault** injected into **one seeded run**:

1. the cell's seed builds a memory image and an access stream (the same
   aliasing-heavy tiny geometry the differential fuzzer uses, so
   evictions, stashes and promotions all fire within a few hundred ops);
2. a *golden* replay drives the stream through the naive reference
   hierarchy of :mod:`repro.check.reference`, unarmed;
3. the *injected* replay drives the same stream through the real
   hierarchy with an armed :class:`~repro.inject.session.InjectionSession`;
4. the fault is classified by comparing every load value and the final
   memory image against the golden replay:
   ``masked`` / ``detected_recovered`` / ``detected_uncorrectable`` /
   ``sdc`` (see :data:`~repro.inject.session.OUTCOMES`).

Cells run through the supervised fork engine of :mod:`repro.sim.fault` —
each attempt in its own process (the session is armed *inside* the
worker, so a crashing injected run can never leave the parent armed),
with per-cell timeout, retries, a partial-failure ledger and lossless
checkpoint/resume. Aggregated outcome counts surface through
:data:`repro.obs.metrics.REGISTRY` as ``inject.*`` metrics.
"""

from __future__ import annotations

import json
import random

from repro.caches.hierarchy import (
    CONFIG_NAMES,
    HierarchyParams,
    build_hierarchy,
)
from repro.check.diff import random_stream
from repro.check.reference import build_reference_hierarchy
from repro.errors import ReproError, UsageError
from repro.inject import hooks as _hooks
from repro.inject.faults import TARGETS, FaultSpec
from repro.inject.plan import build_plan
from repro.inject.protect import PROTECTION_NAMES, build_protection
from repro.inject.recover import RECOVERY_NAMES
from repro.inject.session import OUTCOMES, InjectionSession
from repro.memory.image import MemoryImage
from repro.memory.main_memory import MainMemory
from repro.obs import span as _span
from repro.obs.metrics import REGISTRY
from repro.sim.fault import Checkpoint, FaultPolicy, run_supervised
from repro.utils.rng import derive_seed, make_rng

__all__ = [
    "campaign_params",
    "campaign_regions",
    "build_cells",
    "run_cell",
    "run_campaign",
    "summarize",
    "format_report",
]

# Tiny aliasing geometry (mirrors tools/fuzz_cache.py): three address
# pools one L2-size apart put 3-way demand on a 2-way L2, so replacement,
# stash and promotion activity — the state fault injection wants to hit —
# shows up within a few hundred operations.
_L1_SIZE, _L1_LINE = 512, 64
_L2_SIZE, _L2_LINE = 2048, 128
_HEAP = 0x1000_0000


def campaign_params() -> HierarchyParams:
    """The campaign's tiny hierarchy geometry."""
    return HierarchyParams(
        l1_size=_L1_SIZE,
        l1_assoc=1,
        l1_line=_L1_LINE,
        l1_latency=1,
        l2_size=_L2_SIZE,
        l2_assoc=2,
        l2_line=_L2_LINE,
        l2_latency=10,
        l1_buffer_entries=2,
        l2_buffer_entries=4,
    )


def campaign_regions() -> list[tuple[int, int]]:
    """Three L2-aliasing address pools ``(base, n_words)``."""
    words = _L2_SIZE // 4
    return [
        (_HEAP, words),
        (_HEAP + _L2_SIZE, words),
        (_HEAP + 2 * _L2_SIZE, words),
    ]


def _build_image(seed: int, regions, scheme) -> MemoryImage:
    """Deterministic image: the fuzzer's mix of word classes per seed."""
    payload = int(getattr(scheme, "payload_bits", 15))
    prefix_mask = 0xFFFF_FFFF & ~((1 << payload) - 1)
    img = MemoryImage()
    rng = make_rng(derive_seed(seed, "inject.image"))
    for base, n_words in regions:
        for i in range(n_words):
            addr = base + 4 * i
            kind = int(rng.integers(4))
            if kind == 0:
                value = int(rng.integers(1 << max(1, payload - 1)))
            elif kind == 1:
                value = 0xFFFF_FFFF ^ int(rng.integers(1 << max(1, payload - 1)))
            elif kind == 2:
                value = (addr & prefix_mask) | int(rng.integers(1 << payload))
            else:
                value = int(rng.integers(1 << 32))
            img.write_word(addr, value)
    return img


def _drive(hierarchy, ops) -> list[int]:
    """Replay *ops*; returns the loaded values, then flushes."""
    loads: list[int] = []
    for now, op in enumerate(ops):
        if op.write:
            hierarchy.store(op.addr, op.value, now)
        else:
            loads.append(hierarchy.load(op.addr, now).value)
    hierarchy.flush()
    return loads


# ---- one cell (runs inside a forked worker) --------------------------------


def run_cell(task: dict) -> dict:
    """Run one campaign cell; returns a JSON-safe outcome record.

    Picklable module-level worker for :func:`repro.sim.fault.run_supervised`.
    The injection session is armed only inside this (forked) process.
    """
    spec = FaultSpec.from_dict(task["fault"])
    config = task["config"]
    protect = task["protect"]
    recover = task["recover"]
    n_ops = task["n_ops"]
    params = campaign_params()
    regions = campaign_regions()
    ops = random_stream(
        random.Random(derive_seed(spec.seed, "inject.stream")),
        n_ops,
        regions,
        scheme=params.scheme,
    )

    # Golden replay: the naive reference hierarchy, no injection.
    golden_memory = MainMemory(_build_image(spec.seed, regions, params.scheme))
    with _span.span("golden_replay", config=config, seed=spec.seed, n_ops=n_ops):
        golden_loads = _drive(
            build_reference_hierarchy(config, golden_memory, params), ops
        )

    # Injected replay: the real hierarchy with the session armed.
    memory = MainMemory(_build_image(spec.seed, regions, params.scheme))
    hierarchy = build_hierarchy(config, memory, params)
    session = InjectionSession(spec, build_protection(protect), recover)
    session.attach(hierarchy)
    session.mem_candidates = sorted({op.addr & ~0x3 for op in ops})

    error = None
    loads: list[int] = []
    replay_span = _span.start_span(
        "injected_replay",
        config=config,
        protect=protect,
        seed=spec.seed,
        n_ops=n_ops,
    )
    _hooks.activate(session)
    try:
        for now, op in enumerate(ops):
            if op.write:
                hierarchy.store(op.addr, op.value, now)
            else:
                loads.append(hierarchy.load(op.addr, now).value)
        session.finalize()
        hierarchy.flush()
    except ReproError as exc:
        # The corrupted state drove the model into a protocol violation —
        # a fail-stop, which is detectable by definition.
        error = f"{type(exc).__name__}: {exc}"
    finally:
        _hooks.deactivate()

    if error is not None:
        outcome = "detected_uncorrectable"
        mismatch = True
    else:
        mismatch = loads != golden_loads or memory.image != golden_memory.image
        outcome = session.classify(mismatch)
    _span.finish_span(
        replay_span,
        status="ok" if error is None else "error",
        outcome=outcome,
    )
    record = {
        "outcome": outcome,
        "mismatch": bool(mismatch),
        "error": error,
        "config": config,
        "protect": protect,
        "recover": recover,
        "n_ops": n_ops,
        "fault": spec.as_dict(),
        "session": session.snapshot(),
    }
    return record


# ---- campaign assembly ------------------------------------------------------


def build_cells(
    *,
    config: str = "CPP",
    protects: tuple[str, ...] = ("none", "secded"),
    recover: str = "refetch",
    seed: int = 0,
    seeds: int = 25,
    faults_per_seed: int = 1,
    n_ops: int = 400,
    targets: tuple[str, ...] = TARGETS,
    levels: tuple[str, ...] = ("l1", "l2"),
    bits: int = 1,
) -> list[dict]:
    """The campaign's task list: one dict per (protection, seed, fault)."""
    if config not in CONFIG_NAMES:
        raise UsageError(
            f"unknown config {config!r}",
            argument="--config",
            choices=CONFIG_NAMES,
        )
    for p in protects:
        if p not in PROTECTION_NAMES:
            raise UsageError(
                f"unknown protection model {p!r}",
                argument="--protect",
                choices=PROTECTION_NAMES,
            )
    if recover not in RECOVERY_NAMES:
        raise UsageError(
            f"unknown recovery policy {recover!r}",
            argument="--recover",
            choices=RECOVERY_NAMES,
        )
    cells: list[dict] = []
    for protect in protects:
        for s in range(seeds):
            master = seed + s
            for spec in build_plan(
                seed=master,
                n_faults=faults_per_seed,
                n_ops=n_ops,
                targets=targets,
                levels=levels,
                bits=bits,
            ):
                cells.append(
                    {
                        "key": (
                            config,
                            protect,
                            recover,
                            str(master),
                            str(spec.fault_id),
                        ),
                        "config": config,
                        "protect": protect,
                        "recover": recover,
                        "n_ops": n_ops,
                        "fault": spec.as_dict(),
                    }
                )
    return cells


def run_campaign(
    cells: list[dict],
    *,
    timeout: float | None = None,
    retries: int = 1,
    max_workers: int | None = None,
    checkpoint_path=None,
    resume: bool = True,
    progress: bool = False,
):
    """Run *cells* through the supervised fork engine.

    Returns the engine's ``SupervisedOutcome``: per-key outcome records
    in ``.results`` plus permanent ``.failures``.
    """
    checkpoint = None
    if checkpoint_path is not None:
        checkpoint = Checkpoint(
            checkpoint_path,
            encode=lambda record: record,
            decode=lambda record: record,
            fresh=not resume,
        )
    return run_supervised(
        cells,
        run_cell,
        key_of=lambda task: task["key"],
        policy=FaultPolicy(timeout=timeout, retries=retries),
        max_workers=max_workers,
        checkpoint=checkpoint,
        progress=progress,
        phase_name="inject_campaign",
    )


# ---- aggregation / reporting -----------------------------------------------


def summarize(results: dict) -> dict:
    """Aggregate outcome records into per-protection histograms.

    Also publishes the aggregate as ``inject.*`` metrics in the global
    :data:`~repro.obs.metrics.REGISTRY`.
    """
    by_protect: dict[str, dict[str, int]] = {}
    counters: dict[str, int] = {}
    for record in results.values():
        hist = by_protect.setdefault(
            record["protect"], {o: 0 for o in OUTCOMES}
        )
        hist[record["outcome"]] += 1
        for name, value in record["session"]["counters"].items():
            counters[name] = counters.get(name, 0) + value
    for protect, hist in by_protect.items():
        for outcome, count in hist.items():
            if count:
                REGISTRY.inc(
                    "inject.outcomes", count, protect=protect, outcome=outcome
                )
        fired = sum(hist.values()) - hist["not_fired"]
        REGISTRY.set_gauge(
            "inject.sdc_rate",
            hist["sdc"] / fired if fired else 0.0,
            protect=protect,
        )
    for name, value in counters.items():
        if value:
            REGISTRY.inc(f"inject.{name}", value)
    return {
        "cells": len(results),
        "by_protect": by_protect,
        "counters": counters,
    }


def format_report(summary: dict, failures=()) -> str:
    """Human-readable campaign report plus a machine-readable tail line.

    The ``INJECT-SUMMARY`` line is stable, single-line and greppable so
    CI can assert on it without parsing the table.
    """
    lines = ["fault-injection campaign"]
    header = f"  {'protect':<8}" + "".join(f"{o:>24}" for o in OUTCOMES)
    lines.append(header)
    total_sdc = 0
    fired_total = 0
    for protect in sorted(summary["by_protect"]):
        hist = summary["by_protect"][protect]
        lines.append(
            f"  {protect:<8}" + "".join(f"{hist[o]:>24}" for o in OUTCOMES)
        )
        total_sdc += hist["sdc"]
        fired_total += sum(hist.values()) - hist["not_fired"]
        fired = sum(hist.values()) - hist["not_fired"]
        rate = hist["sdc"] / fired if fired else 0.0
        lines.append(f"  {'':<8}SDC rate: {rate:.3f} over {fired} fired faults")
    if failures:
        lines.append(f"  {len(failures)} cell(s) failed permanently:")
        for failure in failures:
            lines.append(f"    {failure.key}: {failure.kind}")
    lines.append(
        "INJECT-SUMMARY "
        + json.dumps(
            {
                "cells": summary["cells"],
                "failed": len(failures),
                "fired": fired_total,
                "sdc": total_sdc,
                "by_protect": summary["by_protect"],
            },
            sort_keys=True,
        )
    )
    return "\n".join(lines)
