"""Queue-draining worker process behind the experiment service.

One worker is one OS process (``python -m repro.serve.worker``) owned by
the :mod:`repro.serve.supervisor` pool. It drains *every* campaign under
the store's queue root — jobs enqueued by ``run_matrix_store``, by the
HTTP API, or by another worker's quarantine-reopen all look the same —
with the lifecycle discipline the store contracts require:

* **Claim under lease, renew under heartbeat** — a keeper thread renews
  the lease and refreshes the worker's liveness file while the cell
  simulates; a lease lost anyway (reclaimed after a stall longer than
  the TTL) stops this worker from publishing the job.
* **Result before marker** — the cell's result commits to the store
  (journaled, checksummed) before the queue's done marker is written,
  so a crash between the two costs a recompute, never a torn record.
* **Per-cell timeout** — a SIGALRM budget per attempt; a timed-out or
  failed attempt is retried with the :class:`~repro.sim.fault.FaultPolicy`
  exponential backoff + deterministic jitter, by *expiring* (not
  releasing) its own lease so the claim count survives and the queue's
  ``max_claims`` circuit breaker keeps bounding crash loops.
* **Graceful drain** — SIGTERM/SIGINT (and the supervisor's death,
  watched via ``--parent-pid``) release the in-flight lease, write a
  final ``stopped`` heartbeat, flush the metrics spool, and exit 0.
"""

from __future__ import annotations

import argparse
import json
import os
import signal
import sys
import threading
import time
from pathlib import Path

from repro.errors import LeaseError, ReproError
from repro.obs import span as _span
from repro.obs.metrics import REGISTRY
from repro.sim import fault as _fault
from repro.store.cas import ResultStore
from repro.store.queue import DEFAULT_LEASE_TTL, CampaignQueue, Job, default_worker_id
from repro.utils.atomic import atomic_write_text
from repro.utils.signals import interrupt_on_signal

__all__ = ["WorkerHeartbeat", "run_worker", "main"]

#: Where workers publish liveness, relative to the store root.
WORKERS_DIRNAME = Path("serve") / "workers"

#: Where workers flush their metrics spool on exit.
TELEMETRY_DIRNAME = Path("serve") / "telemetry"


class _AttemptTimeout(Exception):
    """Raised by the SIGALRM handler when a cell exceeds its budget."""


class WorkerHeartbeat:
    """The worker's liveness file: ``<store>/serve/workers/<id>.json``.

    The file's *mtime* is the liveness signal (same filesystem-clock
    discipline as queue leases); the JSON body carries state for the
    supervisor's per-cell timeout backstop and for ``GET /v1/workers``.
    """

    def __init__(self, store_root: Path, worker_id: str) -> None:
        self.worker = worker_id
        self.path = store_root / WORKERS_DIRNAME / f"{worker_id}.json"
        self.path.parent.mkdir(parents=True, exist_ok=True)

    def beat(self, state: str, *, counts: dict | None = None, **fields) -> None:
        """Rewrite the liveness file (fresh mtime + fresh state)."""
        payload = {
            "worker": self.worker,
            "pid": os.getpid(),
            "state": state,
            "time": time.time(),
        }
        if counts:
            payload["counts"] = dict(counts)
        payload.update({k: v for k, v in fields.items() if v is not None})
        try:
            atomic_write_text(self.path, json.dumps(payload, sort_keys=True))
        except OSError:
            pass  # liveness degrades to lease TTLs, never kills the cell

    def touch(self) -> None:
        """Refresh liveness without rewriting state (keeper thread)."""
        try:
            os.utime(self.path, None)
        except OSError:
            pass


class _CellKeeper(threading.Thread):
    """Renews one job's lease + the liveness file while a cell runs."""

    def __init__(
        self,
        queue: CampaignQueue,
        job: Job,
        worker: str,
        heartbeat: WorkerHeartbeat,
    ) -> None:
        super().__init__(daemon=True, name="serve-cell-keeper")
        self._queue = queue
        self._job = job
        self._worker = worker
        self._heartbeat = heartbeat
        self._interval = max(0.05, queue.lease_ttl / 3.0)
        self._halt = threading.Event()
        self.lost = False

    def run(self) -> None:
        while not self._halt.wait(self._interval):
            self._heartbeat.touch()
            try:
                self._queue.heartbeat(self._job, worker=self._worker)
            except LeaseError:
                self.lost = True
                return

    def stop(self) -> None:
        self._halt.set()
        self.join(timeout=5.0)


def _campaign_queues(store: ResultStore, lease_ttl: float) -> list[CampaignQueue]:
    """Every campaign currently under the store's queue root."""
    root = store.root / "queue"
    if not root.is_dir():
        return []
    return [
        CampaignQueue(root, entry.name, lease_ttl=lease_ttl)
        for entry in sorted(root.iterdir())
        if entry.is_dir()
    ]


def _pid_alive(pid: int) -> bool:
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:
        return True
    return True


def _classify(exc: BaseException) -> tuple[str, str]:
    if isinstance(exc, _AttemptTimeout):
        return _fault.KIND_TIMEOUT, str(exc)
    if isinstance(exc, ReproError):
        return _fault.KIND_ERROR, f"{type(exc).__name__}: {exc}"
    return _fault.KIND_UNEXPECTED, f"{type(exc).__name__}: {exc}"


def _alarm_guard(timeout: float | None):
    """Arm a per-attempt SIGALRM budget (main thread only); a context."""
    import contextlib

    @contextlib.contextmanager
    def _armed():
        usable = (
            timeout is not None
            and threading.current_thread() is threading.main_thread()
        )
        if not usable:
            yield
            return

        def _on_alarm(signum, frame):  # noqa: ARG001
            raise _AttemptTimeout(
                f"cell exceeded per-attempt timeout of {timeout:g}s"
            )

        previous = signal.signal(signal.SIGALRM, _on_alarm)
        signal.setitimer(signal.ITIMER_REAL, timeout)
        try:
            yield
        finally:
            signal.setitimer(signal.ITIMER_REAL, 0.0)
            signal.signal(signal.SIGALRM, previous)

    return _armed()


def _run_job(
    store: ResultStore,
    queue: CampaignQueue,
    job: Job,
    worker_id: str,
    policy: _fault.FaultPolicy,
    heartbeat: WorkerHeartbeat,
    counts: dict,
) -> None:
    """One claimed job, end to end (complete / fail / retry-expire)."""
    with _span.span(
        "serve.lease",
        campaign=queue.campaign,
        digest=job.digest[:12],
        attempt=job.attempt,
    ):
        cached = store.get(job.key)  # verified; corrupt quarantines here
        if cached is not None:
            queue.complete(job, worker=worker_id)
            counts["reused"] += 1
            REGISTRY.inc("serve.worker.cells", kind="reused")
            return
        heartbeat.beat(
            "cell",
            counts=counts,
            cell=job.digest,
            campaign=queue.campaign,
            attempt=job.attempt,
            cell_started=time.time(),
        )
        keeper = _CellKeeper(queue, job, worker_id, heartbeat)
        keeper.start()
        started = time.monotonic()
        try:
            with _alarm_guard(policy.timeout):
                result = _fault.matrix_cell_worker(job.task)
        except KeyboardInterrupt:
            # Graceful drain: give the claim back untouched.
            keeper.stop()
            queue.release(job)
            counts["released"] += 1
            raise
        except Exception as exc:  # noqa: BLE001 - classified below
            keeper.stop()
            kind, message = _classify(exc)
            REGISTRY.inc("serve.worker.attempt_failures", kind=kind)
            if keeper.lost:
                counts["released"] += 1
                return  # someone else owns the job now
            if job.attempt <= policy.retries:
                # Retry with backoff by expiring our own lease: the next
                # claim (ours or anyone's) reclaims it with the attempt
                # count intact, so max_claims still bounds crash loops.
                time.sleep(policy.backoff_delay(job.key, job.attempt))
                queue.expire(job.digest, worker=worker_id)
                counts["retried"] += 1
            else:
                queue.fail(job, kind=kind, message=message)
                counts["failed"] += 1
                REGISTRY.inc("serve.worker.cells", kind="failed")
            return
        keeper.stop()
        fresh = store.put(job.key, result)
        if fresh:
            store.log_compute(job.key, worker_id)
        if keeper.lost:
            # The result is durably (and idempotently) in the store, but
            # the done marker belongs to whoever holds the lease now.
            counts["released"] += 1
            return
        queue.complete(job, worker=worker_id)
        counts["completed"] += 1
        REGISTRY.inc("serve.worker.cells", kind="completed")
        REGISTRY.observe(
            "serve.worker.cell_seconds", time.monotonic() - started
        )


def _flush_telemetry(store: ResultStore, worker_id: str) -> None:
    """Spool this worker's metrics next to the store (best effort)."""
    path = store.root / TELEMETRY_DIRNAME / f"{worker_id}.metrics.json"
    try:
        path.parent.mkdir(parents=True, exist_ok=True)
        atomic_write_text(
            path, json.dumps(REGISTRY.dump(), sort_keys=True, default=str)
        )
    except Exception:  # noqa: BLE001 - telemetry loss is never fatal
        pass


def run_worker(
    store_dir,
    *,
    worker_id: str | None = None,
    lease_ttl: float = DEFAULT_LEASE_TTL,
    poll: float = 0.5,
    cell_timeout: float | None = None,
    retries: int = 1,
    parent_pid: int | None = None,
    exit_when_drained: bool = False,
    max_cells: int | None = None,
) -> int:
    """Drain campaigns until told to stop; the worker-process main loop.

    Exits 0 on graceful drain (SIGTERM/SIGINT, supervisor death, or —
    with *exit_when_drained* — when every campaign is settled). Non-cell
    errors (an unreadable store root, say) exit non-zero; cell failures
    never do, they become queue markers.
    """
    worker_id = worker_id or default_worker_id()
    store = ResultStore(store_dir)
    store.recover()
    heartbeat = WorkerHeartbeat(store.root, worker_id)
    policy = _fault.FaultPolicy(timeout=cell_timeout, retries=retries)
    counts = {
        "completed": 0,
        "reused": 0,
        "failed": 0,
        "released": 0,
        "retried": 0,
    }
    done_cells = 0
    try:
        with interrupt_on_signal((signal.SIGTERM, signal.SIGINT)):
            heartbeat.beat("starting", counts=counts)
            while True:
                if parent_pid is not None and not _pid_alive(parent_pid):
                    break  # orphaned: the supervisor is gone
                queues = _campaign_queues(store, lease_ttl)
                claimed = False
                for queue in queues:
                    while True:
                        job = queue.claim(worker_id)
                        if job is None:
                            break
                        claimed = True
                        _run_job(
                            store, queue, job, worker_id, policy,
                            heartbeat, counts,
                        )
                        done_cells += 1
                        if max_cells is not None and done_cells >= max_cells:
                            return 0
                        if parent_pid is not None and not _pid_alive(
                            parent_pid
                        ):
                            return 0
                if not claimed:
                    heartbeat.beat("idle", counts=counts)
                    if (
                        exit_when_drained
                        and queues
                        and all(q.drained() for q in queues)
                    ):
                        break
                    time.sleep(poll)
    except KeyboardInterrupt:
        pass  # graceful: the in-flight lease was released in _run_job
    finally:
        heartbeat.beat("stopped", counts=counts)
        _flush_telemetry(store, worker_id)
    return 0


def main(argv: list[str] | None = None) -> int:
    """CLI entry: parse arguments and run one worker to completion."""
    parser = argparse.ArgumentParser(
        prog="repro-serve-worker",
        description="One queue-draining worker of the experiment service.",
    )
    parser.add_argument("--store", required=True, metavar="DIR")
    parser.add_argument("--worker-id", default=None)
    parser.add_argument("--lease-ttl", type=float, default=DEFAULT_LEASE_TTL)
    parser.add_argument("--poll", type=float, default=0.5)
    parser.add_argument("--cell-timeout", type=float, default=None)
    parser.add_argument("--retries", type=int, default=1)
    parser.add_argument("--parent-pid", type=int, default=None)
    parser.add_argument("--exit-when-drained", action="store_true")
    parser.add_argument("--max-cells", type=int, default=None)
    args = parser.parse_args(argv)
    try:
        return run_worker(
            args.store,
            worker_id=args.worker_id,
            lease_ttl=args.lease_ttl,
            poll=args.poll,
            cell_timeout=args.cell_timeout,
            retries=args.retries,
            parent_pid=args.parent_pid,
            exit_when_drained=args.exit_when_drained,
            max_cells=args.max_cells,
        )
    except ReproError as exc:
        print(f"worker error: {type(exc).__name__}: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover - process entry
    sys.exit(main())
