"""Unit + property tests for the sparse memory image."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import AlignmentError, UnmappedAddressError
from repro.memory.image import PAGE_BYTES, PAGE_WORDS, MemoryImage

word_addrs = st.integers(min_value=0, max_value=(1 << 30) - 1).map(lambda x: x * 4)
values = st.integers(min_value=0, max_value=(1 << 32) - 1)


class TestSingleWord:
    def test_read_after_write(self, image):
        image.write_word(0x1000, 0xABCD)
        assert image.read_word(0x1000) == 0xABCD

    def test_untouched_reads_zero(self, image):
        assert image.read_word(0x4_0000) == 0

    def test_strict_mode_raises_on_unmapped(self):
        img = MemoryImage(strict=True)
        with pytest.raises(UnmappedAddressError):
            img.read_word(0x1000)

    def test_strict_mode_allows_mapped(self):
        img = MemoryImage(strict=True)
        img.write_word(0x1000, 5)
        assert img.read_word(0x1000) == 5

    @pytest.mark.parametrize("addr", [1, 2, 3, 0x1001])
    def test_unaligned_rejected(self, image, addr):
        with pytest.raises(AlignmentError):
            image.read_word(addr)
        with pytest.raises(AlignmentError):
            image.write_word(addr, 0)

    def test_value_truncated_to_32_bits(self, image):
        image.write_word(0x1000, (1 << 40) | 7)
        assert image.read_word(0x1000) == 7

    def test_address_range_checked(self, image):
        with pytest.raises(UnmappedAddressError):
            image.read_word(1 << 33)


class TestBlocks:
    def test_block_roundtrip(self, image):
        data = np.arange(32, dtype=np.uint32)
        image.write_words(0x2000, data)
        assert np.array_equal(image.read_words(0x2000, 32), data)

    def test_block_crossing_page_boundary(self, image):
        start = PAGE_BYTES - 16
        data = np.arange(8, dtype=np.uint32) + 100
        image.write_words(start, data)
        assert np.array_equal(image.read_words(start, 8), data)
        assert image.read_word(PAGE_BYTES) == 104

    def test_read_partial_unmapped(self, image):
        image.write_word(0x1000, 9)
        block = image.read_words(0xFFC, 3)
        assert list(block) == [0, 9, 0]

    def test_negative_count_rejected(self, image):
        with pytest.raises(ValueError):
            image.read_words(0, -1)

    def test_masked_write(self, image):
        image.write_words(0x3000, np.array([1, 2, 3, 4], dtype=np.uint32))
        image.write_words_masked(
            0x3000,
            np.array([10, 20, 30, 40], dtype=np.uint32),
            np.array([True, False, True, False]),
        )
        assert list(image.read_words(0x3000, 4)) == [10, 2, 30, 4]

    def test_masked_write_shape_checked(self, image):
        with pytest.raises(ValueError):
            # Mask bit 3 selects a word beyond the 3-word value list.
            image.write_words_masked(0, np.zeros(3, dtype=np.uint32), 0b1000)

    @given(
        st.lists(st.tuples(word_addrs, values), min_size=1, max_size=50),
    )
    @settings(max_examples=50)
    def test_acts_like_a_dict(self, writes):
        """The image must behave like a plain {addr: value} map."""
        img = MemoryImage()
        reference: dict[int, int] = {}
        for addr, value in writes:
            img.write_word(addr, value)
            reference[addr] = value
        for addr, value in reference.items():
            assert img.read_word(addr) == value


class TestManagement:
    def test_copy_is_deep(self, image):
        image.write_word(0x1000, 1)
        clone = image.copy()
        clone.write_word(0x1000, 2)
        assert image.read_word(0x1000) == 1
        assert clone.read_word(0x1000) == 2

    def test_equality_ignores_zero_pages(self):
        a, b = MemoryImage(), MemoryImage()
        a.write_word(0x1000, 0)  # materializes a zero page
        assert a == b

    def test_equality_detects_difference(self):
        a, b = MemoryImage(), MemoryImage()
        a.write_word(0x1000, 1)
        assert a != b

    def test_footprint(self, image):
        assert image.footprint_bytes == 0
        image.write_word(0, 1)
        image.write_word(PAGE_BYTES * 5, 1)
        assert image.n_pages == 2
        assert image.footprint_bytes == 2 * PAGE_BYTES
        assert image.touched_pages() == [0, 5]

    def test_unhashable(self, image):
        with pytest.raises(TypeError):
            hash(image)

    def test_page_words_constant(self):
        assert PAGE_WORDS == PAGE_BYTES // 4
