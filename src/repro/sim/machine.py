"""The Machine: core + hierarchy + memory, run over a program trace.

Every run builds a fresh memory image, hierarchy and core, so runs are
independent and deterministic: the same (program, config) pair always
produces the identical cycle count — the property the Figure 14
methodology depends on.
"""

from __future__ import annotations

from dataclasses import replace

from repro.caches.hierarchy import build_hierarchy
from repro.caches.interface import MemoryPort
from repro.compression.codecs import (
    DEFAULT_CODEC,
    get_codec,
    require_word_scheme,
    resolve_codec,
)
from repro.compression.comptable import ImageCompTable
from repro.inject import hooks as _inject
from repro.memory.main_memory import MainMemory
from repro.obs.metrics import REGISTRY
from repro.sim.backend import create_core, resolve_backend
from repro.sim.config import SimConfig
from repro.sim.results import SimResult
from repro.workloads.base import Program

__all__ = ["Machine"]


class Machine:
    """A configured machine ready to execute programs."""

    def __init__(self, config: SimConfig | str = "BC", *, verify_loads: bool = False):
        if isinstance(config, str):
            config = SimConfig(cache_config=config)
        self.config = config
        self.verify_loads = verify_loads

    def run(self, program: Program) -> SimResult:
        """Execute *program* to completion on a fresh machine instance."""
        backend = resolve_backend(self.config.backend)
        codec_name = resolve_codec(self.config.codec)
        params = self.config.effective_hierarchy()
        if codec_name != DEFAULT_CODEC:
            # Swap the hierarchy's compression scheme for the resolved
            # codec's per-word facet. Line-only codecs (bdi, cpack) fail
            # here with a typed error: the word-slot hierarchy needs
            # per-word compressibility to be pure in (value, address).
            scheme = require_word_scheme(get_codec(codec_name))
            params = replace(params, scheme=scheme)
        memory = MainMemory(latency=self.config.effective_memory_latency())
        hierarchy = build_hierarchy(
            self.config.cache_config,
            memory,
            params,
        )
        core = create_core(
            backend, hierarchy, self.config.core, verify_loads=self.verify_loads
        )
        if backend == "fast" and not _inject.ACTIVE:
            # Precompute whole-image compressibility so compressed bus
            # packing and fill classification become table probes. Only
            # the off-chip port's scheme matters: every classification of
            # memory-sourced words happens under it. Fault-injection runs
            # skip the table — their hooks mutate values in flight.
            port = getattr(hierarchy.l2, "downstream", None)
            if isinstance(port, MemoryPort):
                memory.attach_comp_table(
                    ImageCompTable(memory.image, port.scheme)
                )
        outcome = core.run(program.trace)
        bus = memory.bus
        # Publish everything measured into the one queryable namespace.
        # Once per run (not per event), so it costs nothing against the
        # millions of simulated cycles it summarizes.
        labels = {"workload": program.name, "config": self.config.name}
        hierarchy.l1_stats.publish(REGISTRY, level="L1", **labels)
        hierarchy.l2_stats.publish(REGISTRY, level="L2", **labels)
        bus.publish(REGISTRY, **labels)
        outcome.metrics.publish(REGISTRY, **labels)
        REGISTRY.inc("sim.runs", 1, **labels)
        return SimResult(
            workload=program.name,
            config=self.config.name,
            cycles=outcome.cycles,
            instructions=len(program.trace),
            l1=hierarchy.l1_stats,
            l2=hierarchy.l2_stats,
            bus_words=bus.total_words,
            bus_fill_words=bus.fill_words,
            bus_prefetch_words=bus.prefetch_words,
            bus_writeback_words=bus.writeback_words,
            metrics=outcome.metrics,
            branch_mispredicts=outcome.branch_mispredicts,
            params=dict(program.params),
        )
