#!/usr/bin/env python
"""Seeded differential property fuzzer for the cache subsystem.

Drives randomized access streams (and, with ``--workload``, full
generated workload traces) through the optimized hierarchy and the naive
reference model of :mod:`repro.check` in lockstep, across the five
evaluated configurations and a sweep of compression-scheme widths, and
reports every divergence — minimized to a small reproducer with the
delta-debugging shrinker.

The address pools alias across cache sets on purpose (three regions one
L2-size apart over a 2-way L2), so evictions, stashes, promotions and
write-back merges all fire within a few hundred operations. Store values
mix small, sign-extension-negative, pointer-prefix and incompressible
words so stores flip compressibility both ways.

``--strict-boundary`` adds CPP cells over a *strict* memory image whose
mapped region ends on an odd line, making the top line's affiliated
partner (``line XOR 0x1``) unmapped — the image-boundary edge where a
demand fill must not fabricate a prefetch out of a nonexistent line.

Exit status: 0 when every cell agreed, 1 when any divergence survived.

Examples
--------
Full CI sweep (five configs, three widths, 200 seeds)::

    python tools/fuzz_cache.py --seeds 200

One quick cell with invariant audits after every access::

    python tools/fuzz_cache.py --configs CPP --widths 15 --seeds 5 --audit

A full workload trace, differentially::

    python tools/fuzz_cache.py --workload olden.treeadd --scale 0.05
"""

from __future__ import annotations

import argparse
import json
import random
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.caches.hierarchy import CONFIG_NAMES, HierarchyParams  # noqa: E402
from repro.check.diff import (  # noqa: E402
    DifferentialRunner,
    Op,
    program_stream,
    random_stream,
)
from repro.compression.scheme import CompressionScheme  # noqa: E402
from repro.memory.image import MemoryImage  # noqa: E402
from repro.obs import export as _export  # noqa: E402
from repro.obs import span as _span  # noqa: E402
from repro.obs import telemetry as _telemetry  # noqa: E402

#: Tiny geometry (matches tests/conftest.py TINY_PARAMS): conflicts fire
#: within a few hundred accesses instead of a few hundred thousand.
L1_SIZE, L1_LINE = 512, 64
L2_SIZE, L2_LINE = 2048, 128

HEAP = 0x1000_0000


def tiny_params(scheme: CompressionScheme) -> HierarchyParams:
    """The fuzzing geometry with the cell's compression scheme."""
    return HierarchyParams(
        l1_size=L1_SIZE,
        l1_assoc=1,
        l1_line=L1_LINE,
        l1_latency=1,
        l2_size=L2_SIZE,
        l2_assoc=2,
        l2_line=L2_LINE,
        l2_latency=10,
        l1_buffer_entries=2,
        l2_buffer_entries=4,
        scheme=scheme,
    )


def fuzz_regions() -> list[tuple[int, int]]:
    """Three L2-aliasing pools: 3-way demand on a 2-way L2."""
    words = L2_SIZE // 4
    return [
        (HEAP, words),
        (HEAP + L2_SIZE, words),
        (HEAP + 2 * L2_SIZE, words),
    ]


def seeded_image_factory(seed: int, regions, scheme: CompressionScheme, *, strict: bool = False, n_lines: int | None = None):
    """Deterministic image builder: same mix of word classes per seed.

    With ``strict=True`` only the first *n_lines* L2 lines of the first
    region are mapped and the image raises on anything else — the
    boundary-pairing fuzz mode.
    """
    payload = scheme.payload_bits
    prefix_mask = 0xFFFF_FFFF & ~((1 << payload) - 1)

    def build() -> MemoryImage:
        img = MemoryImage(strict=strict)
        rng = random.Random(seed * 2654435761 % (1 << 32))
        if strict:
            pools = [(regions[0][0], n_lines * (L2_LINE // 4))]
        else:
            pools = regions
        for base, n_words in pools:
            for i in range(n_words):
                addr = base + 4 * i
                kind = rng.randrange(4)
                if kind == 0:
                    value = rng.randrange(0, 1 << max(1, payload - 1))
                elif kind == 1:
                    value = (0xFFFF_FFFF ^ rng.randrange(0, 1 << max(1, payload - 1)))
                elif kind == 2:
                    value = (addr & prefix_mask) | rng.randrange(0, 1 << payload)
                else:
                    value = rng.randrange(0, 1 << 32)
                img.write_word(addr, value)
        return img

    return build


def run_cell(
    config: str,
    width: int,
    seed: int,
    n_ops: int,
    *,
    audit: bool,
    strict_boundary: bool = False,
    scheme=None,
    label: str | None = None,
) -> tuple[bool, str]:
    """One fuzz cell; returns (ok, report).

    *scheme* overrides the default width-parametrized paper scheme — the
    codec sweep passes a codec's per-word facet here so the full
    differential hierarchy runs under it.
    """
    if scheme is None:
        scheme = CompressionScheme(payload_bits=width)
    params = tiny_params(scheme)
    regions = fuzz_regions()
    rng = random.Random(seed)
    if strict_boundary:
        # Map an odd number of L2 lines so the last line's XOR-partner is
        # unmapped; confine the stream to the mapped lines.
        n_lines = 7
        factory = seeded_image_factory(
            seed, regions, scheme, strict=True, n_lines=n_lines
        )
        stream_regions = [(regions[0][0], n_lines * (L2_LINE // 4))]
    else:
        factory = seeded_image_factory(seed, regions, scheme)
        stream_regions = regions
    ops = random_stream(rng, n_ops, stream_regions, scheme=scheme)
    runner = DifferentialRunner(config, factory, params)
    with _span.span(
        "fuzz_cell",
        config=config,
        width=width,
        seed=seed,
        strict_boundary=strict_boundary,
    ):
        divergence = runner.run(ops, audit=audit)
    if divergence is None:
        return True, ""
    minimal, final = runner.minimize(ops, audit=audit)
    label = label or f"{config} width={width} seed={seed}"
    report = [
        f"FAIL [{label}] {final.where}: real={final.real!r} ref={final.ref!r}",
        f"  minimized to {len(minimal)} ops (from {len(ops)}):",
    ]
    report += [f"    {op!r}" for op in minimal]
    report.append("  " + final.describe().replace("\n", "\n  "))
    return False, "\n".join(report)


def _corrupt_store_object(path: Path, rng: random.Random) -> str:
    """Damage one on-disk store record in a seeded random way."""
    data = bytearray(path.read_bytes())
    kind = rng.randrange(6)
    if kind == 0 and len(data) > 1:  # truncation (torn write / ENOSPC)
        path.write_bytes(bytes(data[: rng.randrange(1, len(data))]))
        return "truncated"
    if kind == 1 and data:  # single bit flip (media decay)
        i = rng.randrange(len(data))
        data[i] ^= 1 << rng.randrange(8)
        path.write_bytes(bytes(data))
        return "bit_flip"
    if kind == 2:  # foreign file
        path.write_bytes(b"\x00not json\xff" * 16)
        return "garbage"
    if kind == 3:  # zero-length file
        path.write_bytes(b"")
        return "empty"
    if kind == 4:  # valid JSON, payload tampered (checksum must catch it)
        record = json.loads(bytes(data).decode("utf-8"))
        record["payload"]["cycles"] = int(record["payload"].get("cycles", 0)) + 1
        path.write_text(json.dumps(record), encoding="utf-8")
        return "payload_tampered"
    # valid JSON, checksum field clobbered
    record = json.loads(bytes(data).decode("utf-8"))
    record["checksum"] = "0" * 64
    path.write_text(json.dumps(record), encoding="utf-8")
    return "checksum_clobbered"


def run_store_cell(store_dir: Path, result, seed: int) -> tuple[bool, str]:
    """One store-corruption cell: damage a record on disk, then prove it
    is quarantined and recomputed — never served.

    The sequence is the satellite property verbatim: put → corrupt the
    object file → ``get`` must miss (and quarantine, ledger, count) →
    re-put (the "recompute") → ``get`` must serve a record equal to the
    original. Any served-while-corrupt or lost-evidence outcome fails.
    """
    from repro.store import ResultStore

    store = ResultStore(store_dir)
    key = ("fuzz.store", seed, 1.0, "BC", 1.0)
    label = f"store seed={seed}"
    problems: list[str] = []

    store.put(key, result)
    path = store.object_path(store.digest_of(key))
    rng = random.Random(seed ^ 0x5EED)
    reason = _corrupt_store_object(path, rng)
    label += f" corruption={reason}"

    before = store.quarantined_count()
    ledger_before = len(store.ledger_entries())
    served = store.get(key)
    if served is not None:
        problems.append(f"corrupt record was SERVED: {served!r}")
    if path.exists():
        problems.append("corrupt object still in the store tree")
    if store.quarantined_count() != before + 1:
        problems.append(
            f"quarantine count {store.quarantined_count()} != {before + 1}"
        )
    if len(store.ledger_entries()) != ledger_before + 1:
        problems.append("corruption not recorded in the ledger")

    if not store.put(key, result):
        problems.append("re-put after quarantine was not treated as fresh")
    recomputed = store.get(key)
    if recomputed != result:
        problems.append(f"recomputed record differs: {recomputed!r}")

    if problems:
        return False, f"FAIL [{label}]\n" + "\n".join(f"  {p}" for p in problems)
    return True, ""


def run_workload_cell(name: str, config: str, seed: int, scale: float, *, audit: bool) -> tuple[bool, str]:
    """Differentially replay a full generated workload trace."""
    from repro.workloads.registry import generate

    program = generate(name, seed=seed, scale=scale)
    ops = program_stream(program)
    runner = DifferentialRunner(config, MemoryImage, HierarchyParams())
    with _span.span("fuzz_workload", config=config, workload=name, scale=scale):
        divergence = runner.run(ops, audit=audit)
    if divergence is None:
        return True, f"ok [{config} {name} scale={scale}] {len(ops)} mem ops"
    minimal, final = runner.minimize(ops, audit=audit)
    report = [
        f"FAIL [{config} {name}] {final.where}: real={final.real!r} "
        f"ref={final.ref!r}",
        f"  minimized to {len(minimal)} ops",
        "  " + final.describe().replace("\n", "\n  "),
    ]
    return False, "\n".join(report)


def emit_summary(
    cells: int, expected: int, failures: int, seeds: int
) -> int:
    """Print the machine-readable tail line; return the exit status.

    A sweep fails if any cell diverged **or** if fewer cells ran than the
    argument matrix implies — a crash or an accidentally narrowed matrix
    must not let CI pass on a silently short sweep.
    """
    short = cells != expected
    status = 1 if failures or short else 0
    print(
        "FUZZ-SUMMARY "
        + json.dumps(
            {
                "cells": cells,
                "expected": expected,
                "failed": failures,
                "seed_range": [0, max(0, seeds - 1)],
                "short": short,
                "status": status,
            },
            sort_keys=True,
        )
    )
    if short:
        print(
            f"ERROR: short sweep — ran {cells} of {expected} expected cells",
            file=sys.stderr,
        )
    return status


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--seeds", type=int, default=20, help="seeds per (config, width) cell")
    parser.add_argument("--ops", type=int, default=400, help="accesses per stream")
    parser.add_argument(
        "--configs",
        default=",".join(CONFIG_NAMES),
        help="comma-separated configuration names",
    )
    parser.add_argument(
        "--widths",
        default="15,12,20",
        help="comma-separated scheme payload widths (15 = the paper)",
    )
    parser.add_argument(
        "--audit",
        action="store_true",
        help="re-verify structural invariants after every access",
    )
    parser.add_argument(
        "--no-strict-boundary",
        action="store_true",
        help="skip the strict-image boundary-pairing CPP cells",
    )
    parser.add_argument(
        "--store",
        action="store_true",
        help="fuzz the durable result store instead: corrupt committed "
        "records on disk (truncation, bit flips, tampering) and verify "
        "each is quarantined and recomputed, never served",
    )
    parser.add_argument(
        "--backend-equiv",
        action="store_true",
        help="fuzz backend equivalence instead: run random generated "
        "programs through the full machine under every backend and "
        "demand bit-identical results",
    )
    parser.add_argument(
        "--codec",
        default=None,
        metavar="NAMES",
        help="fuzz the codec zoo instead: comma-separated codec names or "
        "'all'. Every codec gets line-level contract fuzzing (round-trip, "
        "bit accounting, pack sanity, determinism, word-facet agreement "
        "— boundary lines first, then random ones); word-capable codecs "
        "additionally drive the full differential hierarchy under their "
        "per-word scheme",
    )
    parser.add_argument("--workload", help="differentially replay a generated workload")
    parser.add_argument("--scale", type=float, default=0.05, help="workload scale")
    parser.add_argument("--seed", type=int, default=1, help="workload seed")
    parser.add_argument(
        "--telemetry",
        default=None,
        metavar="DIR",
        help="record per-cell spans into DIR (telemetry.json, trace.json, "
        "spans.jsonl)",
    )
    args = parser.parse_args(argv)

    if args.telemetry:
        _telemetry.configure(args.telemetry)
    try:
        return _sweep(args)
    finally:
        store = _telemetry.store()
        if store is not None:
            _telemetry.finalize_run()
            out = Path(args.telemetry)
            _export.write_chrome_trace(
                store, out / _export.CHROME_TRACE_FILENAME
            )
            _export.write_spans_jsonl(store, out / _export.SPANS_FILENAME)
            _telemetry.configure(None)
            print(f"telemetry written to {out}", file=sys.stderr)


def _sweep(args: argparse.Namespace) -> int:
    """The fuzz sweep proper (split out so telemetry wraps every exit)."""
    configs = [c.strip().upper() for c in args.configs.split(",") if c.strip()]
    widths = [int(w) for w in args.widths.split(",") if w.strip()]

    failures = 0
    cells = 0

    if args.store:
        import tempfile

        from repro.sim.runner import run_workload

        result = run_workload("olden.treeadd", "BC", seed=1, scale=0.05)
        with tempfile.TemporaryDirectory(prefix="fuzz-store-") as tmp:
            store_dir = Path(tmp) / "store"
            for seed in range(args.seeds):
                ok, report = run_store_cell(store_dir, result, seed)
                cells += 1
                if not ok:
                    failures += 1
                    print(report)
        status = "ok" if not failures else f"{failures} FAILURES"
        print(f"[store corruption] {args.seeds} seeds: {status}")
        return emit_summary(cells, args.seeds, failures, args.seeds)

    if args.codec:
        from repro.check.codec_diff import fuzz_codec
        from repro.compression.codecs import CODEC_NAMES, get_codec

        names = (
            list(CODEC_NAMES)
            if args.codec.strip().lower() == "all"
            else [c.strip().lower() for c in args.codec.split(",") if c.strip()]
        )
        expected = 0
        for name in names:
            codec = get_codec(name)  # typos fail before any cell runs
            cell_failures = 0
            for seed in range(args.seeds):
                with _span.span("fuzz_codec_lines", codec=name, seed=seed):
                    divergences = fuzz_codec(
                        name, seed, n_lines=max(1, args.ops // 2)
                    )
                cells += 1
                if divergences:
                    cell_failures += 1
                    failures += 1
                    for d in divergences[:5]:
                        print(f"[codec {name} seed={seed}] {d.describe()}")
            status = "ok" if not cell_failures else f"{cell_failures} FAILURES"
            print(f"[codec-lines {name}] {args.seeds} seeds: {status}")
            expected += args.seeds
            if codec.word_scheme is None:
                continue
            # Word-capable codecs also drive the real-vs-naive hierarchy.
            for config in configs:
                cfg_failures = 0
                for seed in range(args.seeds):
                    ok, report = run_cell(
                        config,
                        getattr(codec.word_scheme, "payload_bits", 15),
                        seed,
                        args.ops,
                        audit=args.audit,
                        scheme=codec.word_scheme,
                        label=f"{config} codec={name} seed={seed}",
                    )
                    cells += 1
                    if not ok:
                        cfg_failures += 1
                        failures += 1
                        print(report)
                status = (
                    "ok" if not cfg_failures else f"{cfg_failures} FAILURES"
                )
                print(
                    f"[codec-hierarchy {name} {config}] "
                    f"{args.seeds} seeds: {status}"
                )
                expected += args.seeds
        print(f"{cells} cells total, {failures} divergent")
        return emit_summary(cells, expected, failures, args.seeds)

    if args.backend_equiv:
        from repro.check.diff import BackendDiffRunner, random_program

        for config in configs:
            cell_failures = 0
            runner = BackendDiffRunner(config)
            for seed in range(args.seeds):
                divergence = runner.run(random_program(seed))
                cells += 1
                if divergence is not None:
                    cell_failures += 1
                    failures += 1
                    print(f"[{config} seed={seed}] {divergence.describe()}")
            status = "ok" if not cell_failures else f"{cell_failures} FAILURES"
            print(f"[backend-equiv {config}] {args.seeds} seeds: {status}")
        expected = len(configs) * args.seeds
        print(f"{cells} cells total, {failures} divergent")
        return emit_summary(cells, expected, failures, args.seeds)

    if args.workload:
        for config in configs:
            ok, report = run_workload_cell(
                args.workload, config, args.seed, args.scale, audit=args.audit
            )
            cells += 1
            print(report)
            if not ok:
                failures += 1
        print(f"{cells} workload cells, {failures} divergent")
        return emit_summary(cells, len(configs), failures, 1)

    for config in configs:
        for width in widths:
            cell_failures = 0
            for seed in range(args.seeds):
                ok, report = run_cell(
                    config, width, seed, args.ops, audit=args.audit
                )
                cells += 1
                if not ok:
                    cell_failures += 1
                    failures += 1
                    print(report)
            status = "ok" if not cell_failures else f"{cell_failures} FAILURES"
            print(f"[{config} width={width}] {args.seeds} seeds: {status}")
    if not args.no_strict_boundary and "CPP" in configs:
        for width in widths:
            cell_failures = 0
            for seed in range(args.seeds):
                ok, report = run_cell(
                    "CPP", width, seed, args.ops, audit=args.audit, strict_boundary=True
                )
                cells += 1
                if not ok:
                    cell_failures += 1
                    failures += 1
                    print(report)
            status = "ok" if not cell_failures else f"{cell_failures} FAILURES"
            print(f"[CPP strict-boundary width={width}] {args.seeds} seeds: {status}")
    expected = len(configs) * len(widths) * args.seeds
    if not args.no_strict_boundary and "CPP" in configs:
        expected += len(widths) * args.seeds
    print(f"{cells} cells total, {failures} divergent")
    return emit_summary(cells, expected, failures, args.seeds)


if __name__ == "__main__":
    raise SystemExit(main())
