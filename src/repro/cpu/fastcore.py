"""The ``fast`` simulation backend's core: flat-array event-driven loop.

Bit-identical re-expression of :class:`repro.cpu.pipeline.OutOfOrderCore`
(the ``reference`` backend), rebuilt around three observations:

* **The ROB is an index range.** Dispatch and commit are both in
  program order, so the in-flight window is exactly the contiguous trace
  indices ``[committed, disp_end)`` and the IFQ is ``[disp_end,
  i_fetch)`` — two ints replace the deques, and per-instruction state
  lives in ``bytearray`` columns indexed by trace position instead of
  recycled ``RUUEntry`` objects. The issue stage walks a sorted list of
  exactly the READY indices, never the whole window.
* **Renaming is static.** The pre-decoded dependence edges
  (:mod:`repro.isa.predecode`) make the register-producer map, consumer
  lists and store-forwarding lists pure array probes: a source is
  pending iff its producer index is ``>= committed`` and not DONE; a
  load forwards iff its youngest older same-address store is
  ``>= committed`` (commit is in order, so that single comparison is the
  reference's in-flight-list scan).
* **Fetch outcomes are precomputed.** With a fresh bimod table the whole
  mispredict stream is a pure function of the trace; batched fetch
  advances ``i_fetch`` in blocks using a next-mispredict array instead
  of testing every instruction.

Statistics stay bit-identical: the Welford ready-queue accumulators run
the reference's exact per-cycle formula (and its exact idle-skip bulk
formula), and the cache word-ops' uncounted hit paths are tallied
locally and flushed into :class:`~repro.caches.stats.CacheStats` once at
the end — counter addition is order-free.

Anything the flat loop cannot observe faithfully — load verification,
event tracing, the i-cache model, a warm (reused) predictor — falls back
to the reference core wholesale, sharing this core's predictor so the
handoff is seamless.
"""

from __future__ import annotations

import heapq
from bisect import insort as _insort

from repro.caches.base import Cache
from repro.caches.compression_cache import CompressionCache
from repro.caches.hierarchy import Hierarchy
from repro.caches.interface import SERVED_BY_CODES
from repro.check.runtime import runtime_checks_enabled
from repro.cpu.branch import BimodPredictor
from repro.cpu.metrics import CoreMetrics
from repro.cpu.pipeline import CoreConfig, CoreResult, OutOfOrderCore
from repro.cpu.resources import FuPool
from repro.errors import TraceError
from repro.inject import hooks as _inject
from repro.isa.predecode import get_predecoded
from repro.isa.trace import Trace
from repro.obs import tracer as _trace

__all__ = ["FastCore"]

#: Completion-heap entries pack ``(cycle << _IDX_BITS) | idx`` into one
#: int (int comparisons beat tuple comparisons and skip the per-event
#: allocation). Same-cycle completions pop in index order, which is
#: immaterial: writeback effects (DONE marks, wake-counter decrements,
#: a same-valued ``pending_resume``) commute.
_IDX_BITS = 25
_IDX_MASK = (1 << _IDX_BITS) - 1


class FastCore:
    """Drop-in replacement for :class:`OutOfOrderCore` (``fast`` backend)."""

    def __init__(
        self,
        hierarchy: Hierarchy,
        config: CoreConfig | None = None,
        *,
        verify_loads: bool = False,
    ) -> None:
        self.hierarchy = hierarchy
        self.config = config if config is not None else CoreConfig()
        self.verify_loads = verify_loads
        self.predictor = BimodPredictor(self.config.bimod_entries)

    # ---- fallback -----------------------------------------------------------

    def _needs_reference(self) -> bool:
        """Conditions under which only the fully general loop is faithful."""
        return (
            self.config.icache_enabled
            or self.verify_loads
            or _trace.ACTIVE
            or self.predictor.lookups != 0
        )

    def _run_reference(self, trace: Trace) -> CoreResult:
        core = OutOfOrderCore(
            self.hierarchy, self.config, verify_loads=self.verify_loads
        )
        core.predictor = self.predictor
        return core.run(trace)

    # ---- the loop -----------------------------------------------------------

    def run(self, trace: Trace) -> CoreResult:
        """Execute *trace* to completion; returns cycles and metrics."""
        if self._needs_reference():
            return self._run_reference(trace)
        cfg = self.config
        hier = self.hierarchy
        metrics = CoreMetrics()
        n = len(trace)
        if n == 0:
            return CoreResult(0, metrics, 0, 0)
        if n >= 1 << _IDX_BITS:
            # Trace indices would overflow the packed heap entries; such
            # traces are far past any paper-scale run anyway.
            return self._run_reference(trace)

        hot = trace.hot()
        t_ismem = hot.is_mem
        t_addr = hot.addr
        t_value = hot.value
        pre = get_predecoded(trace)
        cons_start = pre.cons_start
        cons_flat = pre.cons_flat
        t_mispred, bp_branches, bp_mispredicts = pre.bimod_outcomes(
            trace, cfg.bimod_entries
        )
        t_next_mp = _next_mispredicts(pre, cfg.bimod_entries, t_mispred)
        # Per-stage row tuples: one list index + unpack per instruction
        # per stage, instead of four or five column indexings. Cached on
        # the pre-decode record across runs of the same trace.
        iss_rows = pre.issue_rows
        if iss_rows is None:
            iss_rows = pre.issue_rows = list(
                zip(
                    pre.slot,
                    trace.load_mask.tolist(),
                    pre.fwd,
                    hot.addr,
                    hot.latency,
                )
            )
        disp_rows = pre.disp_rows
        if disp_rows is None:
            disp_rows = pre.disp_rows = list(zip(pre.dep1, pre.dep2, t_ismem))
        t_kind = pre.kind
        if t_kind is None:
            t_kind = pre.kind = (
                (trace.load_mask + 2 * trace.store_mask).astype("uint8").tobytes()
            )

        # Per-instruction pipeline state (indices are trace positions;
        # instructions pass through exactly once, so no recycling).
        state = bytearray(n)  # 0 WAITING / 1 READY / 2 ISSUED / 3 DONE
        pending = bytearray(n)
        missf = bytearray(n)  # load miss in flight

        completions: list[int] = []  # (cycle << _IDX_BITS) | idx
        heappush = heapq.heappush
        heappop = heapq.heappop
        insort = _insort

        l1 = hier.l1
        l1_access = l1.access
        l1_hit_latency = l1.hit_latency
        # Word-ops: allocation-free load/store against the L1 with an
        # uncounted inline hit path (stats flushed once at the end). Only
        # the exact base classes implement the contract, and only when no
        # observation hook needs the general access() path.
        use_word_ops = (
            type(l1) in (Cache, CompressionCache)
            and not _inject.ACTIVE
            and not runtime_checks_enabled()
        )
        l1_load_word = l1.load_word if use_word_ops else None
        l1_store_word = l1.store_word if use_word_ops else None

        hard_limit = 2_000 * n + 1_000_000
        fu = FuPool(cfg.fu)

        # The compiled kernel runs the identical schedule natively,
        # crossing into Python only for cache misses and stores; when it
        # is unavailable the Python loop below produces the same bits.
        if use_word_ops:
            from repro.cpu.ckernel import run_compiled

            tallies = run_compiled(
                trace,
                pre,
                hot,
                cfg,
                l1,
                fu._limits,
                t_mispred,
                t_next_mp,
                hard_limit,
            )
            if tallies is not None:
                (
                    now,
                    committed,
                    store_count,
                    n_loads,
                    forwarded_loads,
                    n_mispredicts,
                    fetch_stall_cycles,
                    miss_cycles,
                    all_n,
                    miss_n,
                    uncounted_l1_ops,
                    served_counts,
                    all_mean,
                    all_m2,
                    miss_mean,
                    miss_m2,
                ) = tallies
                return self._flush(
                    metrics,
                    l1,
                    now,
                    committed,
                    store_count,
                    n_loads,
                    forwarded_loads,
                    n_mispredicts,
                    fetch_stall_cycles,
                    miss_cycles,
                    all_n,
                    all_mean,
                    all_m2,
                    miss_n,
                    miss_mean,
                    miss_m2,
                    served_counts,
                    {},
                    uncounted_l1_ops,
                    bp_branches,
                    bp_mispredicts,
                )

        #: READY trace indices in ascending (program) order: dispatch
        #: appends (indices grow monotonically), writeback wake-ups
        #: insort, issue rebuilds with the FU-blocked survivors.
        ready: list[int] = []
        i_fetch = 0  # next instruction to fetch
        disp_end = 0  # ROB = [committed, disp_end); IFQ = [disp_end, i_fetch)
        committed = 0
        now = 0
        lsq_used = 0
        outstanding_misses = 0
        fetch_blocked = False
        pending_resume: int | None = None

        issue_width = cfg.issue_width
        commit_width = cfg.commit_width
        decode_width = cfg.decode_width
        fetch_width = cfg.fetch_width
        ruu_size = cfg.ruu_size
        lsq_size = cfg.lsq_size
        ifq_size = cfg.ifq_size
        mispredict_penalty = cfg.mispredict_penalty
        forward_latency = cfg.forward_latency
        idle_skip = cfg.enable_idle_skip
        fu_free = fu._free
        fu_limits = fu._limits

        # Locally tallied statistics, flushed once at the end.
        store_count = 0
        n_loads = 0
        forwarded_loads = 0
        n_mispredicts = 0
        fetch_stall_cycles = 0
        miss_cycles = 0
        all_n = 0
        all_mean = 0.0
        all_m2 = 0.0
        miss_n = 0
        miss_mean = 0.0
        miss_m2 = 0.0
        served_counts = [0] * 8  # per packed word-op code
        served_dict: dict[str, int] = {}  # non-word-op load attribution
        uncounted_l1_ops = 0  # word-op inline hits owing stats accesses/hits

        while committed < n:
            if now > hard_limit:
                raise TraceError(
                    f"core exceeded {hard_limit} cycles at instruction "
                    f"{committed}/{n}: probable deadlock"
                )

            # ---- writeback: results arriving this cycle ------------------
            if completions:
                limit = (now + 1) << _IDX_BITS
                while completions and completions[0] < limit:
                    idx = heappop(completions) & _IDX_MASK
                    state[idx] = 3
                    if missf[idx]:
                        outstanding_misses -= 1
                        missf[idx] = 0
                    for ci in range(cons_start[idx], cons_start[idx + 1]):
                        k = cons_flat[ci]
                        if k < disp_end:
                            p = pending[k] - 1
                            pending[k] = p
                            if p == 0:
                                state[k] = 1
                                insort(ready, k)
                    if t_mispred[idx]:
                        pending_resume = now + mispredict_penalty

            # ---- commit: in order, up to commit_width --------------------
            n_commit = 0
            while committed < disp_end and n_commit < commit_width:
                if state[committed] != 3:
                    break
                idx = committed
                committed += 1
                n_commit += 1
                kind = t_kind[idx]
                if kind:
                    lsq_used -= 1
                    if kind == 2:  # store: write through the L1 at commit
                        if l1_store_word is not None:
                            if l1_store_word(t_addr[idx], t_value[idx], now):
                                uncounted_l1_ops += 1
                        else:
                            l1_access(t_addr[idx], True, t_value[idx], now)
                        store_count += 1
            if committed >= n:
                break  # the last instruction committed this cycle

            # ---- issue: oldest-first among READY entries ------------------
            ready_len = len(ready)
            if ready_len:
                fu_free[:] = fu_limits
                n_issued = 0
                kept: list[int] = []
                for pos, idx in enumerate(ready):
                    slot, is_load, fwd, addr, lat = iss_rows[idx]
                    avail = fu_free[slot]
                    if avail:
                        fu_free[slot] = avail - 1
                        state[idx] = 2
                        if is_load:
                            n_loads += 1
                            if fwd >= committed:
                                # Youngest older same-address store still
                                # in flight: store-to-load forwarding.
                                forwarded_loads += 1
                                lat = forward_latency
                            elif l1_load_word is not None:
                                packed = l1_load_word(addr, now)
                                served_counts[packed & 7] += 1
                                lat = packed >> 3
                                if lat < 1:
                                    lat = 1
                            else:
                                # General L1s (victim/prefetch wrappers)
                                # have labels beyond the packed code
                                # space; tally by name instead.
                                result = l1_access(addr, False, None, now)
                                sb = result.served_by
                                served_dict[sb] = served_dict.get(sb, 0) + 1
                                lat = result.latency
                                if lat < 1:
                                    lat = 1
                            if lat > l1_hit_latency:
                                missf[idx] = 1
                                outstanding_misses += 1
                        heappush(completions, ((now + lat) << _IDX_BITS) | idx)
                        n_issued += 1
                        if n_issued >= issue_width:
                            kept.extend(ready[pos + 1 :])
                            break
                    else:
                        kept.append(idx)
                ready = kept

            # ---- metrics sample (state as of this cycle) -------------------
            # Same Welford recurrence as the reference ("* 1" elided:
            # IEEE multiplication by one is exact, so bit-identical).
            delta = ready_len - all_mean
            total = all_n + 1
            all_mean += delta / total
            all_m2 += delta * delta * all_n / total
            all_n = total
            if outstanding_misses > 0:
                miss_cycles += 1
                delta = ready_len - miss_mean
                total = miss_n + 1
                miss_mean += delta / total
                miss_m2 += delta * delta * miss_n / total
                miss_n = total
            if fetch_blocked:
                fetch_stall_cycles += 1

            # ---- dispatch: IFQ -> RUU/LSQ ---------------------------------
            n_disp = 0
            while (
                disp_end < i_fetch
                and n_disp < decode_width
                and disp_end - committed < ruu_size
            ):
                idx = disp_end
                d1, d2, is_mem = disp_rows[idx]
                if is_mem and lsq_used >= lsq_size:
                    break
                disp_end += 1
                n_disp += 1
                p = 0
                if d1 >= committed and state[d1] != 3:
                    p = 1
                if d2 >= committed and state[d2] != 3:
                    p += 1
                if p == 0:
                    state[idx] = 1
                    ready.append(idx)  # idx exceeds every queued index
                else:
                    pending[idx] = p
                if is_mem:
                    lsq_used += 1

            # ---- fetch: fill the IFQ unless redirecting --------------------
            if fetch_blocked and pending_resume is not None and now >= pending_resume:
                fetch_blocked = False
                pending_resume = None
            if not fetch_blocked and i_fetch < n:
                room = ifq_size - (i_fetch - disp_end)
                take = fetch_width if fetch_width < room else room
                if take > n - i_fetch:
                    take = n - i_fetch
                if take > 0:
                    next_mp = t_next_mp[i_fetch]
                    if next_mp < i_fetch + take:
                        # Fetch up to and including the mispredicted
                        # branch, then redirect.
                        i_fetch = next_mp + 1
                        n_mispredicts += 1
                        fetch_blocked = True
                    else:
                        i_fetch += take

            # ---- advance the clock, skipping provably idle cycles ----------
            next_now = now + 1
            if (
                idle_skip
                # Pre-issue count, like the reference: a cycle that issued
                # its whole ready set is not "idle" even though the kept
                # list is empty — skipping from it would merge the next
                # explicit zero-sample into the bulk gap and shift the
                # Welford accumulators' rounding by a ULP.
                and ready_len == 0  # nothing ready implies nothing issued
                and n_disp == 0
                and (committed == disp_end or state[committed] != 3)
                and (
                    disp_end == i_fetch
                    or disp_end - committed >= ruu_size
                    or (t_ismem[disp_end] and lsq_used >= lsq_size)
                )
                and (
                    fetch_blocked
                    or i_fetch >= n
                    or i_fetch - disp_end >= ifq_size
                )
            ):
                targets = []
                if completions:
                    targets.append(completions[0] >> _IDX_BITS)
                if fetch_blocked and pending_resume is not None:
                    targets.append(pending_resume)
                if not targets:
                    raise TraceError(
                        f"core deadlocked at cycle {now} "
                        f"({committed}/{n} committed)"
                    )
                skip_to = min(targets)
                if skip_to < next_now:
                    skip_to = next_now
                gap = skip_to - next_now
                if gap > 0:
                    # sample_ready_queue(0, weight=gap), inlined.
                    delta = 0 - all_mean
                    total = all_n + gap
                    all_mean += delta * gap / total
                    all_m2 += delta * delta * all_n * gap / total
                    all_n = total
                    if outstanding_misses > 0:
                        miss_cycles += gap
                        delta = 0 - miss_mean
                        total = miss_n + gap
                        miss_mean += delta * gap / total
                        miss_m2 += delta * delta * miss_n * gap / total
                        miss_n = total
                    if fetch_blocked:
                        fetch_stall_cycles += gap
                next_now = skip_to
            now = next_now

        return self._flush(
            metrics,
            l1,
            now,
            committed,
            store_count,
            n_loads,
            forwarded_loads,
            n_mispredicts,
            fetch_stall_cycles,
            miss_cycles,
            all_n,
            all_mean,
            all_m2,
            miss_n,
            miss_mean,
            miss_m2,
            served_counts,
            served_dict,
            uncounted_l1_ops,
            bp_branches,
            bp_mispredicts,
        )

    def _flush(
        self,
        metrics: CoreMetrics,
        l1,
        now: int,
        committed: int,
        store_count: int,
        n_loads: int,
        forwarded_loads: int,
        n_mispredicts: int,
        fetch_stall_cycles: int,
        miss_cycles: int,
        all_n: int,
        all_mean: float,
        all_m2: float,
        miss_n: int,
        miss_mean: float,
        miss_m2: float,
        served_counts: list[int],
        served_dict: dict[str, int],
        uncounted_l1_ops: int,
        bp_branches: int,
        bp_mispredicts: int,
    ) -> CoreResult:
        """Fold locally tallied statistics into the shared accounting.

        Shared by the Python loop and the compiled kernel — both count
        with the same local tallies, so the flush is identical.
        """
        predictor = self.predictor
        predictor.lookups += bp_branches
        predictor.correct += bp_branches - bp_mispredicts
        uncounted_l1_ops += served_counts[0]  # code-0 (inline-hit) loads
        if uncounted_l1_ops:
            stats = l1.stats
            stats.accesses += uncounted_l1_ops
            stats.hits += uncounted_l1_ops
        loads_by_level = metrics.loads_by_level
        if forwarded_loads:
            loads_by_level["forward"] = forwarded_loads
        n_l1 = served_counts[0] + served_counts[1]
        if n_l1:
            loads_by_level["l1"] = n_l1
        for code in range(2, 8):
            if served_counts[code]:
                loads_by_level[SERVED_BY_CODES[code]] = served_counts[code]
        # Word-ops and the general path are mutually exclusive per run,
        # so a plain merge cannot clobber the packed counts.
        for sb, count in served_dict.items():
            loads_by_level[sb] = count
        metrics.load_count = n_loads
        metrics.forwarded_loads = forwarded_loads
        metrics.committed = committed
        metrics.cycles = now
        metrics.store_count = store_count
        metrics.mispredicts = n_mispredicts
        metrics.fetch_stall_cycles = fetch_stall_cycles
        metrics.miss_cycles = miss_cycles
        rq = metrics.ready_queue_all_cycles
        rq.count = all_n
        rq._mean = all_mean
        rq._m2 = all_m2
        rq = metrics.ready_queue_miss_cycles
        rq.count = miss_n
        rq._mean = miss_mean
        rq._m2 = miss_m2
        return CoreResult(
            cycles=now,
            metrics=metrics,
            branch_lookups=predictor.lookups,
            branch_mispredicts=predictor.mispredicts,
        )


def _next_mispredicts(pre, n_entries: int, flags: list[bool]) -> list[int]:
    """``next_mp[i]``: smallest ``j >= i`` with ``flags[j]`` (or ``n``).

    Cached on the pre-decode record per predictor geometry; lets fetch
    advance in blocks instead of testing every instruction's flag.
    """
    cache = pre.next_mp
    out = cache.get(n_entries)
    if out is None:
        n = len(flags)
        out = [0] * n
        nxt = n
        for i in range(n - 1, -1, -1):
            if flags[i]:
                nxt = i
            out[i] = nxt
        cache[n_entries] = out
    return out
