"""Unit tests for the BCP next-line prefetch wrapper."""

import numpy as np
import pytest

from repro.caches.base import Cache
from repro.caches.interface import MemoryPort
from repro.caches.next_line import PrefetchingCache
from repro.errors import ConfigurationError
from repro.memory.bus import TrafficKind
from repro.memory.image import MemoryImage
from repro.memory.main_memory import MainMemory

BASE = 0x1000_0000


def make_bcp_l1(mem=None, buffer_entries=4):
    """A single-level prefetching cache straight over memory."""
    mem = mem or MainMemory(MemoryImage(), latency=100)
    cache = Cache(
        "L1",
        size_bytes=512,
        assoc=1,
        line_bytes=64,
        hit_latency=1,
        downstream=MemoryPort(mem),
    )
    return PrefetchingCache(cache, buffer_entries), mem


class TestPrefetchOnMiss:
    def test_miss_prefetches_next_line(self):
        pc, mem = make_bcp_l1()
        pc.access(BASE, write=False, now=0)
        assert pc.cache.line_no(BASE) + 1 in pc.buffer
        assert pc.stats.prefetches_issued == 1
        assert mem.bus.prefetch_words == 16

    def test_prefetch_not_installed_in_cache(self):
        pc, _ = make_bcp_l1()
        pc.access(BASE, write=False, now=0)
        assert not pc.cache.probe(BASE + 64)

    def test_buffer_hit_is_a_hit_and_rearms(self):
        pc, _ = make_bcp_l1()
        pc.access(BASE, write=False, now=0)
        result = pc.access(BASE + 64, write=False, now=500)  # prefetch done
        assert result.served_by == "l1-buffer"
        assert result.latency == 1
        assert pc.stats.buffer_hits == 1
        assert pc.stats.misses == 1  # only the first access missed
        # tagged re-arm: the next line is now in flight
        assert pc.cache.line_no(BASE) + 2 in pc.buffer

    def test_late_prefetch_counts_as_miss_with_partial_hiding(self):
        pc, _ = make_bcp_l1()
        pc.access(BASE, write=False, now=0)  # prefetch ready at ~100
        result = pc.access(BASE + 64, write=False, now=40)
        assert result.served_by == "l1-buffer-late"
        assert 0 < result.latency <= 100
        assert result.latency == 60  # remaining flight time
        assert pc.stats.misses == 2
        assert pc.stats.extra["late_prefetch_hits"] == 1

    def test_no_prefetch_when_target_cached(self):
        pc, _ = make_bcp_l1()
        pc.access(BASE + 64, write=False, now=0)  # brings line 1, prefetch line 2
        pc.access(BASE, write=False, now=200)  # target line 1 already cached
        assert pc.stats.prefetches_issued == 1  # line 1 prefetch suppressed
        assert pc.cache.line_no(BASE) + 1 not in pc.buffer


class TestDataCorrectness:
    def test_buffer_delivers_correct_values(self):
        mem = MainMemory(MemoryImage(), latency=100)
        mem.poke_word(BASE + 64, 0xCAFE)
        pc, _ = make_bcp_l1(mem)
        pc.access(BASE, write=False, now=0)
        result = pc.access(BASE + 64, write=False, now=500)
        assert result.value == 0xCAFE

    def test_write_into_buffered_line(self):
        pc, mem = make_bcp_l1()
        pc.access(BASE, write=False, now=0)
        pc.access(BASE + 64, write=True, value=42, now=500)  # buffer hit + write
        assert pc.access(BASE + 64, write=False, now=501).value == 42

    def test_writeback_merges_buffered_copy(self):
        """The LineSource role must not keep two copies of a line."""
        mem = MainMemory(MemoryImage(), latency=100)
        l2 = Cache(
            "L2",
            size_bytes=2048,
            assoc=2,
            line_bytes=128,
            hit_latency=10,
            downstream=MemoryPort(mem),
        )
        pl2 = PrefetchingCache(l2, 4)
        pl2.fetch(BASE, 16, 0, now=0)  # demand miss -> prefetch next L2 line
        target = l2.line_no(BASE) + 1
        assert target in pl2.buffer
        values = np.full(16, 7, dtype=np.uint32)
        pl2.write_back(target << 7, values, np.ones(16, dtype=bool))
        assert target not in pl2.buffer
        assert l2.probe(target << 7)
        resp = pl2.fetch(target << 7, 16, 0, now=10)
        assert resp.values[0] == 7


class TestFetchRole:
    def test_demand_miss_counts_and_prefetches(self):
        mem = MainMemory(MemoryImage(), latency=100)
        l2 = Cache(
            "L2", size_bytes=2048, assoc=2, line_bytes=128, hit_latency=10,
            downstream=MemoryPort(mem),
        )
        pl2 = PrefetchingCache(l2, 4)
        resp = pl2.fetch(BASE, 16, 0, now=0)
        assert resp.latency == 110
        assert pl2.stats.misses == 1
        assert mem.bus.prefetch_words == 32  # full next L2 line prefetched

    def test_buffer_hit_in_fetch_role(self):
        mem = MainMemory(MemoryImage(), latency=100)
        l2 = Cache(
            "L2", size_bytes=2048, assoc=2, line_bytes=128, hit_latency=10,
            downstream=MemoryPort(mem),
        )
        pl2 = PrefetchingCache(l2, 4)
        pl2.fetch(BASE, 16, 0, now=0)
        next_line_addr = (l2.line_no(BASE) + 1) << 7
        resp = pl2.fetch(next_line_addr, 16, 0, now=500)
        assert resp.served_by == "l2-buffer"
        assert pl2.stats.buffer_hits == 1

    def test_supply_prefetch_peeks_without_install(self):
        mem = MainMemory(MemoryImage(), latency=100)
        mem.poke_word(BASE, 3)
        l2 = Cache(
            "L2", size_bytes=2048, assoc=2, line_bytes=128, hit_latency=10,
            downstream=MemoryPort(mem),
        )
        pl2 = PrefetchingCache(l2, 4)
        values, latency = pl2.supply_prefetch(BASE, 16, 0)
        assert values[0] == 3
        assert latency == 10 + 100
        assert not l2.probe(BASE)  # nothing installed
        assert pl2.stats.accesses == 0  # not a demand access


class TestConfig:
    def test_buffer_entries_checked(self):
        cache = Cache(
            "L1", size_bytes=512, assoc=1, line_bytes=64, hit_latency=1,
            downstream=MemoryPort(MainMemory(MemoryImage())),
        )
        with pytest.raises(ConfigurationError):
            PrefetchingCache(cache, 0)
