"""Figure 3 bench: value compressibility across the suite."""

from conftest import BENCH_SCALE, BENCH_SEED, run_once

from repro.experiments.fig03_compressibility import run as run_fig3


def test_fig03_compressibility(benchmark):
    out = run_once(benchmark, run_fig3, seed=BENCH_SEED, scale=BENCH_SCALE)
    averages = out.series["compressible %"]["average"]
    benchmark.extra_info["avg_compressible_pct"] = round(averages, 1)
    benchmark.extra_info["paper_avg_pct"] = 59.0
    # Shape: the suite average sits in the paper's neighbourhood.
    assert 45.0 <= averages <= 75.0
    # Shape: there is real spread, not a constant (the paper's figure
    # ranges from ~20% to ~90% across benchmarks).
    per_workload = [v for k, v in out.series["compressible %"].items() if k != "average"]
    assert max(per_workload) - min(per_workload) > 30.0
