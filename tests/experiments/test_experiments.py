"""Experiment-harness tests: every figure regenerates with sane structure.

Run on a two-workload subset at reduced scale so the whole file stays
fast; full-suite shape claims live in tests/integration.
"""

import pytest

from repro.errors import ExperimentError
from repro.experiments.common import render_output
from repro.experiments.registry import EXPERIMENTS, get_experiment, run_experiment
from repro.sim.runner import clear_caches

SUBSET = ["olden.treeadd", "spec95.130.li"]
SCALE = 0.25


@pytest.fixture(scope="module", autouse=True)
def _fresh():
    clear_caches()
    yield
    clear_caches()


class TestRegistry:
    def test_all_nine_figures_registered(self):
        assert set(EXPERIMENTS) == {
            "fig3", "fig3c", "fig9", "fig10", "fig11", "fig12", "fig13",
            "fig14", "fig15",
        }

    def test_lookup_normalization(self):
        assert get_experiment("Figure 10") is EXPERIMENTS["fig10"]

    def test_unknown(self):
        with pytest.raises(ExperimentError):
            get_experiment("fig99")


class TestEveryFigure:
    @pytest.mark.parametrize("figure", sorted(EXPERIMENTS))
    def test_runs_and_renders(self, figure):
        out = run_experiment(figure, SUBSET, scale=SCALE)
        assert out.figure == figure
        assert out.headers and out.rows
        for row in out.rows:
            assert len(row) == len(out.headers)
        text = render_output(out)
        assert out.title in text

    @pytest.mark.parametrize("figure", ["fig10", "fig11", "fig12", "fig13"])
    def test_normalized_figures_have_bc_at_100(self, figure):
        out = run_experiment(figure, SUBSET, scale=SCALE)
        bc_col = out.headers.index("BC")
        for row in out.rows:
            assert row[bc_col] == pytest.approx(100.0)

    def test_fig3_reports_percentages(self):
        out = run_experiment("fig3", SUBSET, scale=SCALE)
        comp_col = out.headers.index("compressible %")
        for row in out.rows:
            assert 0.0 <= row[comp_col] <= 100.0

    def test_fig9_matches_live_defaults(self):
        out = run_experiment("fig9")
        table = {row[0]: row[1] for row in out.rows}
        assert table["Issue width"].startswith("4")
        assert "8K" in table["L1 D-cache"]
        assert "64K" in table["L2 cache"]

    def test_fig14_importance_in_range(self):
        out = run_experiment("fig14", SUBSET, scale=SCALE)
        for row in out.rows:
            for value in row[1:]:
                assert 0.0 <= float(value) <= 100.0

    def test_fig15_has_uplift_column(self):
        out = run_experiment("fig15", SUBSET, scale=SCALE)
        assert out.headers[-1] == "uplift %"

    def test_average_row_present(self):
        out = run_experiment("fig11", SUBSET, scale=SCALE)
        assert out.rows[-1][0] == "average"

    def test_fig3c_covers_every_codec_with_timing(self):
        from repro.compression.codecs import CODEC_NAMES

        out = run_experiment("fig3c", SUBSET, scale=SCALE)
        codec_col = out.headers.index("codec")
        ratio_col = out.headers.index("ratio")
        eff_col = out.headers.index("effective ratio")
        dec_col = out.headers.index("decompress cycles")
        for workload in SUBSET + ["average"]:
            seen = {r[codec_col] for r in out.rows if r[0] == workload}
            assert seen == set(CODEC_NAMES)
        for row in out.rows:
            assert row[ratio_col] > 0
            # Overhead can only reduce the ratio, never raise it.
            assert row[eff_col] <= row[ratio_col] + 1e-9
            assert row[dec_col] >= 0
        # The paper's scheme is the only zero-cycle codec in the zoo.
        cpp_rows = [r for r in out.rows if r[codec_col] == "cpp"]
        assert all(r[dec_col] == 0 for r in cpp_rows)


class TestCli:
    def test_main_runs_single_figure(self, capsys):
        from repro.experiments.runall import main

        rc = main(["fig9", "--no-charts"])
        assert rc == 0
        captured = capsys.readouterr().out
        assert "Baseline experimental setup" in captured

    def test_main_with_workload_subset(self, capsys):
        from repro.experiments.runall import main

        rc = main(
            ["fig3", "--workloads", "olden.treeadd", "--scale", "0.1", "--no-charts"]
        )
        assert rc == 0
        assert "olden.treeadd" in capsys.readouterr().out

    def test_line_only_codec_rejected_before_simulation(self, capsys):
        from repro.experiments.runall import main

        rc = main(
            ["fig11", "--workloads", "olden.mst", "--codec", "bdi", "--no-charts"]
        )
        assert rc != 0
        err = capsys.readouterr().err
        assert "line-granular" in err and "fig11" in err

    def test_line_only_codec_allowed_for_fig3c(self, capsys, monkeypatch):
        from repro.experiments.runall import main

        # The CLI exports REPRO_CODEC; registering it with monkeypatch
        # guarantees the pre-test value comes back at teardown.
        monkeypatch.setenv("REPRO_CODEC", "cpp")
        rc = main(
            [
                "fig3c", "--workloads", "olden.mst", "--scale", "0.1",
                "--codec", "bdi", "--no-charts",
            ]
        )
        assert rc == 0
        assert "bdi" in capsys.readouterr().out
