"""Tests for trace save/load."""

import numpy as np
import pytest

from repro.errors import TraceError
from repro.isa.opcodes import OpClass
from repro.isa.trace import TraceBuilder
from repro.isa.traceio import load_trace, save_trace
from repro.workloads.registry import generate


def small_trace():
    tb = TraceBuilder("io-test")
    tb.append(0x400000, OpClass.LOAD, dest=1, addr=0x1000, value=7)
    tb.append(0x400008, OpClass.IALU, dest=2, src1=1)
    tb.append(0x400010, OpClass.STORE, src2=2, addr=0x1004, value=9)
    tb.append(0x400018, OpClass.BRANCH, src1=2, taken=True)
    return tb.build()


class TestRoundTrip:
    def test_columns_identical(self, tmp_path):
        trace = small_trace()
        path = save_trace(trace, tmp_path / "t")
        assert path.suffix == ".npz"
        loaded = load_trace(path)
        assert loaded.name == trace.name
        for col in ("pc", "op", "dest", "src1", "src2", "addr", "value", "taken"):
            assert np.array_equal(getattr(loaded, col), getattr(trace, col)), col

    def test_real_workload_roundtrip(self, tmp_path):
        trace = generate("olden.mst", seed=1, scale=0.1).trace
        loaded = load_trace(save_trace(trace, tmp_path / "mst.npz"))
        assert len(loaded) == len(trace)
        assert np.array_equal(loaded.value, trace.value)

    def test_suffix_appended_once(self, tmp_path):
        path = save_trace(small_trace(), tmp_path / "x.npz")
        assert path.name == "x.npz"


class TestErrors:
    def test_missing_file(self, tmp_path):
        with pytest.raises(TraceError):
            load_trace(tmp_path / "nope.npz")

    def test_not_a_trace_archive(self, tmp_path):
        path = tmp_path / "junk.npz"
        np.savez(path, foo=np.zeros(3))
        with pytest.raises(TraceError):
            load_trace(path)

    def test_wrong_version(self, tmp_path):
        import json

        trace = small_trace()
        path = tmp_path / "old.npz"
        meta = json.dumps({"version": 0, "name": "x"})
        np.savez(
            path,
            meta=np.frombuffer(meta.encode(), dtype=np.uint8),
            **{
                c: getattr(trace, c)
                for c in ("pc", "op", "dest", "src1", "src2", "addr", "value", "taken")
            },
        )
        with pytest.raises(TraceError):
            load_trace(path)
