"""Ablations of the CPP policy choices called out in DESIGN.md §6:

* **word-based partial service** (paper §3.1: "we do not always enforce a
  complete line from the L2 cache") versus forcing full lines;
* **victim stashing** (paper §3.3: keep a clean partial copy of evicted
  lines in their affiliated place) on versus off.
"""

from conftest import BENCH_SEED, run_once

from repro.caches.compression_cache import CPPPolicy
from repro.caches.hierarchy import HierarchyParams
from repro.sim.config import SimConfig
from repro.sim.runner import get_program, run_program

WORKLOADS = ["olden.health", "spec95.130.li", "spec2000.300.twolf"]
SCALE = 0.35


def _total_cycles(policy: CPPPolicy) -> tuple[int, int]:
    config = SimConfig(
        cache_config="CPP", hierarchy=HierarchyParams(cpp_policy=policy)
    )
    cycles = traffic = 0
    for name in WORKLOADS:
        result = run_program(get_program(name, seed=BENCH_SEED, scale=SCALE), config)
        cycles += result.cycles
        traffic += result.bus_words
    return cycles, traffic


def test_ablation_partial_line_service(benchmark):
    def sweep():
        return {
            "partial (paper)": _total_cycles(CPPPolicy(serve_partial=True)),
            "full-line": _total_cycles(CPPPolicy(serve_partial=False)),
        }

    results = run_once(benchmark, sweep)
    for label, (cycles, traffic) in results.items():
        benchmark.extra_info[f"{label} cycles"] = cycles
        benchmark.extra_info[f"{label} bus_words"] = traffic
    # Forcing complete lines refetches on every hole: more traffic, and
    # never faster.
    assert results["partial (paper)"][1] <= results["full-line"][1]
    assert results["partial (paper)"][0] <= results["full-line"][0] * 1.02


def test_ablation_victim_stash(benchmark):
    def sweep():
        return {
            "stash (paper)": _total_cycles(CPPPolicy(stash_victims=True)),
            "no-stash": _total_cycles(CPPPolicy(stash_victims=False)),
        }

    results = run_once(benchmark, sweep)
    for label, (cycles, traffic) in results.items():
        benchmark.extra_info[f"{label} cycles"] = cycles
        benchmark.extra_info[f"{label} bus_words"] = traffic
    # Stashing keeps free second copies around: it cannot lose on cycles
    # beyond noise, and typically wins.
    assert results["stash (paper)"][0] <= results["no-stash"][0] * 1.02
