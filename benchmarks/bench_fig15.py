"""Figure 15 bench: ready-queue length during miss cycles, CPP vs HAC."""

from conftest import BENCH_SCALE, BENCH_SEED, run_once

from repro.experiments.common import GEOMEAN
from repro.experiments.fig15_ready_queue import run as run_fig15

#: The paper evaluates this figure on "the benchmarks with significant
#: importance reduction"; these are ours.
IMPROVED = [
    "olden.treeadd",
    "olden.health",
    "spec95.130.li",
    "spec95.129.compress",
    "spec2000.300.twolf",
]


def test_fig15_ready_queue(benchmark):
    out = run_once(
        benchmark, run_fig15, IMPROVED, seed=BENCH_SEED, scale=BENCH_SCALE
    )
    uplift = out.series["ready-queue uplift %"]
    benchmark.extra_info["avg_uplift_pct"] = round(uplift[GEOMEAN], 1)
    benchmark.extra_info["max_uplift_pct"] = round(
        max(v for k, v in uplift.items() if k != GEOMEAN), 1
    )
    benchmark.extra_info["paper"] = "up to 78% improvement over HAC"
    # Shape: CPP leaves more ready work during misses on these benchmarks.
    assert uplift[GEOMEAN] > 0.0
    assert max(v for k, v in uplift.items() if k != GEOMEAN) > 20.0
