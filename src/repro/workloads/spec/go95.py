"""spec95.099.go — Go position evaluation: board scans and flood fills.

Models the heart of the Go program's evaluation: a 19x19 board of small
codes (empty/black/white) scanned repeatedly, with group liberty counting
done by explicit-stack flood fill. Everything is a small value in a dense
array — highly compressible — and control is branch-heavy with
data-dependent outcomes, which is why go was one of the classically
mispredict-bound SPEC95 members.
"""

from __future__ import annotations

from repro.workloads.base import Program, ProgramBuilder, scaled

__all__ = ["build", "DEFAULT_MOVES", "BOARD"]

BOARD = 19
DEFAULT_MOVES = 110

_EMPTY, _BLACK, _WHITE = 0, 1, 2


def build(seed: int = 1, scale: float = 1.0) -> Program:
    """Generate the go program; *scale* adjusts the number of moves."""
    moves = scaled(DEFAULT_MOVES, scale, minimum=4)

    pb = ProgramBuilder("spec95.099.go", seed)
    pb.op("g", (), label="go.entry")

    n_sq = BOARD * BOARD
    board = pb.static_array(n_sq)
    marks = pb.static_array(n_sq)
    stack = pb.static_array(n_sq)
    zobrist = pb.static_array(n_sq)  #: position-hash table: large values
    grid: list[int] = [_EMPTY] * n_sq

    for i in pb.for_range("go.clear", n_sq, cond_srcs=("g",)):
        pb.store(board + 4 * i, _EMPTY, base="g", label="go.init.b")
    zvals = [pb.rand_large() for _ in range(n_sq)]
    for i in pb.for_range("go.mkzob", n_sq, cond_srcs=("g",)):
        pb.store(zobrist + 4 * i, zvals[i], base="g", label="go.init.z")

    # Shape-pattern database: the original's pattern matcher consults large
    # static tables with hash-scattered lookups.
    n_pat = 6144
    patterns = pb.static_array(n_pat)
    pvals = [pb.rand_large() for _ in range(n_pat)]
    for i in pb.for_range("go.mkpat", n_pat, cond_srcs=("g",)):
        pb.store(patterns + 4 * i, pvals[i], base="g", label="go.init.pat")

    def neighbors(sq: int) -> list[int]:
        r, c = divmod(sq, BOARD)
        out = []
        if r > 0:
            out.append(sq - BOARD)
        if r < BOARD - 1:
            out.append(sq + BOARD)
        if c > 0:
            out.append(sq - 1)
        if c < BOARD - 1:
            out.append(sq + 1)
        return out

    def flood_liberties(start: int, color: int) -> int:
        """Explicit-stack flood fill counting the group's liberties."""
        seen: set[int] = set()
        libs: set[int] = set()
        sp = 0
        pb.store(stack, start, base="g", label="go.ff.push0")
        work = [start]
        seen.add(start)
        while work:
            pb.branch("go.ff.loop", taken=True, srcs=("sp",))
            sq = work.pop()
            pb.load(stack + 4 * (len(work) % n_sq), "sq", base="g", label="go.ff.pop")
            for nb in neighbors(sq):
                v = pb.load(board + 4 * nb, "v", base="sq", label="go.ff.ldnb")
                if pb.if_("go.ff.empty", v == _EMPTY, srcs=("v",)):
                    libs.add(nb)
                    pb.store(marks + 4 * nb, 1, base="sq", label="go.ff.mark")
                elif pb.if_("go.ff.same", v == color and nb not in seen, srcs=("v",)):
                    seen.add(nb)
                    work.append(nb)
                    pb.store(stack + 4 * (len(work) % n_sq), nb, base="sq",
                             label="go.ff.push")
        pb.branch("go.ff.loop", taken=False, srcs=("sp",))
        return len(libs)

    score = 0
    hash_slot = pb.static_array(1)
    for m in pb.for_range("go.moves", moves, cond_srcs=("g",)):
        color = _BLACK if m % 2 == 0 else _WHITE
        # Scan for a random empty square (the original's move generator
        # scans candidate points, loading board cells as it goes).
        sq = int(pb.rng.integers(0, n_sq))
        scanned = 0
        while grid[sq] != _EMPTY and scanned < n_sq:
            v = pb.load(board + 4 * sq, "v", base="g", label="go.scan.ld")
            pb.branch("go.scan.occ", taken=True, srcs=("v",))
            sq = (sq + 7) % n_sq
            scanned += 1
        pb.branch("go.scan.occ", taken=False, srcs=("v",))
        if scanned >= n_sq:
            break
        grid[sq] = color
        pb.store(board + 4 * sq, color, base="g", label="go.move.place")

        # Update the position hash (large values, like the original's
        # hashing of board positions for superko detection).
        z = pb.load(zobrist + 4 * sq, "z", base="g", label="go.hash.ldz")
        pb.op("hash", ("hash", "z"), label="go.hash.xor")
        pb.store(hash_slot, z ^ (m * 2654435761 & 0xFFFFFFFF), base="g",
                 src="hash", label="go.hash.st")

        # Full-board influence scan (the evaluator touches every point).
        for i in pb.for_range("go.eval.scan", n_sq // 4, cond_srcs=("g",)):
            v = pb.load(board + 4 * (i * 4 % n_sq), "v", base="g",
                        label="go.eval.scanld")
            pb.op("infl", ("infl", "v"), label="go.eval.infl")

        # Pattern matching around the move: hash-scattered table probes.
        pidx = (zvals[sq] >> 8) % n_pat
        for k in pb.for_range("go.pat.probe", 24, cond_srcs=("hash",)):
            pv = pb.load(patterns + 4 * pidx, "pat", base="hash",
                         label="go.pat.ld")
            pb.op("infl", ("infl", "pat"), label="go.pat.mix")
            pidx = (pidx * 31 + 7) % n_pat

        # Evaluate: liberties of the new stone's group plus neighbour groups.
        libs = flood_liberties(sq, color)
        score += libs
        pb.op("score", ("score",), label="go.move.acc")
        for nb in neighbors(sq):
            v = pb.load(board + 4 * nb, "v", base="g", label="go.eval.ldnb")
            enemy = v not in (_EMPTY, color)
            if pb.if_("go.eval.enemy", enemy, srcs=("v",)):
                elibs = flood_liberties(nb, v)
                if pb.if_("go.eval.capture", elibs == 0, srcs=("score",)):
                    # Capture: clear the enemy group (rare, expensive).
                    for cap in [s for s in range(n_sq) if grid[s] == v][:8]:
                        grid[cap] = _EMPTY
                        pb.store(board + 4 * cap, _EMPTY, base="g",
                                 label="go.capture.clear")

    out = pb.static_array(1)
    pb.store(out, score & 0x3FFF, src="score", label="go.result")
    return pb.build(
        description="board scans + flood-fill liberty counting (small values)",
        params={"moves": moves, "score": score},
    )
