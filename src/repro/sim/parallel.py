"""Process-parallel execution of the (workload x configuration) matrix.

The evaluation matrix is embarrassingly parallel — every cell is an
independent, deterministic simulation — so the standard
``ProcessPoolExecutor`` pattern applies directly: one task per cell,
workers regenerate their own traces (cheap, and it avoids shipping
multi-megabyte arrays through pickling), results flow back as plain
picklable dataclasses.

Determinism is preserved: a cell's result is a pure function of
``(workload, config, seed, scale)``, so the parallel matrix equals the
serial one bit for bit (asserted in ``tests/sim/test_parallel.py``).

Speedup is bounded by the largest single cell (the matrix is wide but
cells are unequal); on a 4-core machine the full-scale matrix drops from
~90 s to ~30 s.
"""

from __future__ import annotations

import os
from collections.abc import Sequence
from concurrent.futures import ProcessPoolExecutor

from repro.errors import ExperimentError
from repro.obs import phases as _phases
from repro.obs import progress as _progress
from repro.sim.results import SimResult

__all__ = ["run_matrix_parallel", "default_workers"]


def default_workers() -> int:
    """A polite default: leave one core for the caller."""
    return max(1, (os.cpu_count() or 2) - 1)


def _run_cell(task: tuple[str, str, int, float]) -> tuple[tuple[str, str], SimResult]:
    """Worker entry point: simulate one matrix cell.

    Module-level (not a closure) so it pickles; each worker process keeps
    its own memoization caches, so repeated configs of one workload share
    the generated trace within a worker.
    """
    from repro.sim.runner import run_workload

    workload, config, seed, scale = task
    result = run_workload(workload, config, seed=seed, scale=scale)
    return (workload, config), result


def run_matrix_parallel(
    workloads: Sequence[str],
    configs: Sequence[str],
    *,
    seed: int = 1,
    scale: float = 1.0,
    max_workers: int | None = None,
    progress: bool = False,
) -> dict[tuple[str, str], SimResult]:
    """Simulate the full matrix across processes.

    Returns the same ``{(workload, config): result}`` mapping as
    :func:`repro.sim.runner.run_matrix`. Tasks are grouped by workload so
    each worker amortizes trace generation across the configurations it
    happens to receive. *progress* reports each completed cell through
    the same :mod:`repro.obs.progress` funnel as the serial path.
    """
    if not workloads or not configs:
        raise ExperimentError("workloads and configs must be non-empty")
    workers = max_workers if max_workers is not None else default_workers()
    if workers < 1:
        raise ExperimentError("max_workers must be positive")
    tasks = [
        (workload, config, seed, scale)
        for workload in workloads
        for config in configs
    ]
    out: dict[tuple[str, str], SimResult] = {}
    with _phases.phase("parallel_matrix"):
        if workers == 1 or len(tasks) == 1:
            for i, task in enumerate(tasks, 1):
                if progress:
                    _progress.report(
                        f"running {task[0]} on {task[1]} ({i}/{len(tasks)})"
                    )
                key, result = _run_cell(task)
                out[key] = result
            return out
        with ProcessPoolExecutor(max_workers=workers) as pool:
            for i, (key, result) in enumerate(pool.map(_run_cell, tasks), 1):
                out[key] = result
                if progress:
                    _progress.report(
                        f"completed {key[0]} on {key[1]} ({i}/{len(tasks)})"
                    )
    return out


def _run_config_cell(task):
    """Worker entry for explicit SimConfig objects (e.g. miss-scaled)."""
    from repro.sim.machine import Machine
    from repro.sim.runner import get_program

    workload, config, seed, scale = task
    result = Machine(config).run(get_program(workload, seed=seed, scale=scale))
    return (workload, config.cache_config, config.miss_scale), result


def run_matrix_parallel_configs(
    workloads: Sequence[str],
    configs: Sequence,
    *,
    seed: int = 1,
    scale: float = 1.0,
    max_workers: int | None = None,
) -> dict[tuple[str, str, float], SimResult]:
    """Like :func:`run_matrix_parallel` but over explicit
    :class:`~repro.sim.config.SimConfig` objects (which carry miss
    scaling); keys are ``(workload, cache_config, miss_scale)``."""
    if not workloads or not configs:
        raise ExperimentError("workloads and configs must be non-empty")
    workers = max_workers if max_workers is not None else default_workers()
    if workers < 1:
        raise ExperimentError("max_workers must be positive")
    tasks = [
        (workload, config, seed, scale)
        for workload in workloads
        for config in configs
    ]
    with _phases.phase("parallel_matrix"):
        if workers == 1 or len(tasks) == 1:
            return dict(_run_config_cell(task) for task in tasks)
        out: dict[tuple[str, str, float], SimResult] = {}
        with ProcessPoolExecutor(max_workers=workers) as pool:
            for key, result in pool.map(_run_config_cell, tasks):
                out[key] = result
    return out
