"""Bench baseline history: JSONL recording and downward-trend warnings."""

import importlib.util
import json
from pathlib import Path

_TOOL = Path(__file__).resolve().parent.parent / "tools" / "bench_baseline.py"
_spec = importlib.util.spec_from_file_location("bench_baseline", _TOOL)
bench = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(bench)


def _entry(bc: int, cpp: int) -> dict:
    return {
        "schema": 1,
        "configs": {
            "BC": {"insn_per_sec": bc, "cycles": 100},
            "CPP": {"insn_per_sec": cpp, "cycles": 200},
        },
    }


class TestHistoryFile:
    def test_missing_file_is_empty_history(self, tmp_path):
        assert bench.load_history(tmp_path / "none.jsonl") == []

    def test_append_then_load_roundtrip(self, tmp_path):
        path = tmp_path / "hist.jsonl"
        recorded = bench.append_history(_entry(100, 200), path)
        assert "recorded" in recorded
        bench.append_history(_entry(90, 210), path)
        loaded = bench.load_history(path)
        assert len(loaded) == 2
        assert loaded[0]["configs"]["BC"]["insn_per_sec"] == 100
        assert loaded[1]["configs"]["BC"]["insn_per_sec"] == 90

    def test_load_skips_corrupt_and_foreign_lines(self, tmp_path):
        path = tmp_path / "hist.jsonl"
        path.write_text(
            "not json\n"
            + json.dumps({"unrelated": True})
            + "\n"
            + json.dumps(_entry(100, 200))
            + "\n"
        )
        loaded = bench.load_history(path)
        assert len(loaded) == 1


class TestTrendWarnings:
    def test_short_history_never_warns(self):
        assert bench.trend_warnings([_entry(100, 200), _entry(90, 190)]) == []

    def test_three_strict_drops_warn_per_config(self):
        history = [_entry(100, 200), _entry(90, 210), _entry(80, 220)]
        warnings = bench.trend_warnings(history)
        assert len(warnings) == 1
        assert warnings[0].startswith("BC:")
        assert "100" in warnings[0] and "80" in warnings[0]

    def test_flat_or_recovering_series_does_not_warn(self):
        flat = [_entry(100, 200), _entry(100, 200), _entry(100, 200)]
        recovering = [_entry(100, 200), _entry(80, 200), _entry(90, 200)]
        assert bench.trend_warnings(flat) == []
        assert bench.trend_warnings(recovering) == []

    def test_only_last_window_considered(self):
        history = [
            _entry(50, 200),  # old low point is irrelevant
            _entry(100, 200),
            _entry(90, 200),
            _entry(80, 200),
        ]
        warnings = bench.trend_warnings(history)
        assert len(warnings) == 1 and "100" in warnings[0]
