"""Runtime gate for the opt-in invariant layer.

A deliberately tiny leaf module — :mod:`repro.caches.compression_cache`
imports it at module load, so it must not (transitively) import any cache
or simulator code.

The gate is the ``REPRO_CHECK`` environment variable, read once per cache
construction. Using the environment (rather than a Python global) means
the supervised matrix workers of :mod:`repro.sim.fault` inherit the
setting for free, so ``REPRO_CHECK=1 python -m repro.experiments ...``
audits every cell even when cells run in forked subprocesses.
"""

from __future__ import annotations

import os

__all__ = ["ENV_VAR", "runtime_checks_enabled", "set_runtime_checks"]

ENV_VAR = "REPRO_CHECK"

_OFF = ("", "0", "false", "off", "no")


def runtime_checks_enabled() -> bool:
    """Is the runtime invariant layer switched on (``REPRO_CHECK=1``)?"""
    return os.environ.get(ENV_VAR, "").strip().lower() not in _OFF


def set_runtime_checks(on: bool) -> None:
    """Programmatic switch (the ``--check`` CLI flag): sets the env var
    so forked workers inherit the decision."""
    if on:
        os.environ[ENV_VAR] = "1"
    else:
        os.environ.pop(ENV_VAR, None)
