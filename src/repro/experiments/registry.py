"""Registry of the paper's figures and the modules regenerating them."""

from __future__ import annotations

from types import ModuleType

from repro.errors import ExperimentError
from repro.experiments import (
    fig03_compressibility,
    fig03c_codec_sweep,
    fig09_config_table,
    fig10_traffic,
    fig11_execution_time,
    fig12_l1_misses,
    fig13_l2_misses,
    fig14_importance,
    fig15_ready_queue,
)
from repro.experiments.common import ExperimentOutput

__all__ = [
    "EXPERIMENTS",
    "MATRIX_CONFIGS",
    "NO_MATRIX_FIGURES",
    "get_experiment",
    "run_experiment",
    "miss_scales_for",
]

#: Every cache configuration any simulation figure needs.
MATRIX_CONFIGS = ("BC", "BCC", "HAC", "BCP", "CPP")

#: Figures that are analytical (no simulation matrix behind them).
NO_MATRIX_FIGURES = ("fig3", "fig3c", "fig9")

EXPERIMENTS: dict[str, ModuleType] = {
    "fig3": fig03_compressibility,
    "fig3c": fig03c_codec_sweep,
    "fig9": fig09_config_table,
    "fig10": fig10_traffic,
    "fig11": fig11_execution_time,
    "fig12": fig12_l1_misses,
    "fig13": fig13_l2_misses,
    "fig14": fig14_importance,
    "fig15": fig15_ready_queue,
}


def miss_scales_for(figures) -> tuple[float, ...]:
    """The miss-latency scales the matrix needs for *figures*.

    Figure 14 (the importance-of-latency study) is the only figure that
    re-runs the matrix at a second miss-latency scale.
    """
    return (1.0, 0.5) if "fig14" in figures else (1.0,)


def get_experiment(figure: str) -> ModuleType:
    """Resolve a figure id (e.g. ``"fig10"``) to its experiment module."""
    key = figure.lower().replace("figure", "fig").replace(" ", "")
    module = EXPERIMENTS.get(key)
    if module is None:
        raise ExperimentError(
            f"unknown experiment {figure!r}; available: {', '.join(EXPERIMENTS)}"
        )
    return module


def run_experiment(
    figure: str,
    workloads: list[str] | None = None,
    *,
    seed: int = 1,
    scale: float = 1.0,
) -> ExperimentOutput:
    """Run one figure's experiment and return its output."""
    return get_experiment(figure).run(workloads, seed=seed, scale=scale)
