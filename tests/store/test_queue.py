"""CampaignQueue tests: claim exclusivity, leases, reclaim, exactly-once."""

from __future__ import annotations

import json
import os
import signal
import time

import pytest

from repro.errors import LeaseError
from repro.store.queue import CampaignQueue, Job


def make_queue(tmp_path, **kwargs) -> CampaignQueue:
    kwargs.setdefault("lease_ttl", 60.0)
    return CampaignQueue(tmp_path / "queue", "camp", **kwargs)


KEY = ("olden.treeadd", 1, 0.05, "BC", 1.0)
TASK = ("olden.treeadd", "BC", 1.0, 1, 0.05)


def test_enqueue_is_idempotent(tmp_path):
    queue = make_queue(tmp_path)
    assert queue.enqueue(KEY, TASK) is True
    assert queue.enqueue(KEY, TASK) is False
    assert queue.snapshot()["jobs"] == 1


def test_claim_is_exclusive(tmp_path):
    queue = make_queue(tmp_path)
    queue.enqueue(KEY, TASK)
    job = queue.claim("w1")
    assert job is not None
    assert job.key == KEY
    assert job.task == TASK
    assert job.attempt == 1
    assert queue.claim("w2") is None  # held under a live lease


def test_release_makes_job_claimable_again(tmp_path):
    queue = make_queue(tmp_path)
    queue.enqueue(KEY, TASK)
    job = queue.claim("w1")
    queue.release(job)
    job2 = queue.claim("w2")
    assert job2 is not None
    assert job2.digest == job.digest


def test_complete_writes_done_marker_and_drains(tmp_path):
    queue = make_queue(tmp_path)
    queue.enqueue(KEY, TASK)
    assert not queue.drained()
    job = queue.claim("w1")
    queue.complete(job, worker="w1")
    assert queue.drained()
    assert queue.claim("w2") is None  # done jobs are never handed out
    assert queue.snapshot()["done"] == 1
    assert queue.snapshot()["leased"] == 0


def test_expired_lease_is_reclaimed_with_bumped_attempt(tmp_path):
    queue = make_queue(tmp_path, lease_ttl=0.05)
    queue.enqueue(KEY, TASK)
    assert queue.claim("w1") is not None
    time.sleep(0.1)  # w1 "died": no heartbeat, lease expires
    job = queue.claim("w2")
    assert job is not None
    assert job.attempt == 2


def test_heartbeat_keeps_lease_alive(tmp_path):
    queue = make_queue(tmp_path, lease_ttl=0.2)
    queue.enqueue(KEY, TASK)
    job = queue.claim("w1")
    for _ in range(4):
        time.sleep(0.08)
        queue.heartbeat(job, worker="w1")
    # Well past the original ttl, but renewed: still not claimable.
    assert queue.claim("w2") is None


def test_heartbeat_raises_when_lease_lost(tmp_path):
    queue = make_queue(tmp_path, lease_ttl=0.05)
    queue.enqueue(KEY, TASK)
    job = queue.claim("w1")
    time.sleep(0.1)
    assert queue.claim("w2") is not None  # reclaims w1's expired lease
    with pytest.raises(LeaseError):
        queue.heartbeat(job, worker="w1")


def test_reclaim_limit_marks_job_failed(tmp_path):
    queue = make_queue(tmp_path, lease_ttl=0.02, max_claims=3)
    queue.enqueue(KEY, TASK)
    for _ in range(3):
        assert queue.claim("crashy") is not None
        time.sleep(0.05)  # die without completing, every time
    assert queue.claim("crashy") is None
    records = queue.failed_records()
    assert len(records) == 1
    assert records[0]["kind"] == "reclaim_limit"
    assert queue.drained()  # failed is a settled state


def test_corrupt_job_spec_fails_visibly(tmp_path):
    queue = make_queue(tmp_path)
    queue.enqueue(KEY, TASK)
    job_file = next(queue.jobs_dir.glob("*.json"))
    job_file.write_bytes(b"\x00torn")
    assert queue.claim("w1") is None
    records = queue.failed_records()
    assert len(records) == 1
    assert records[0]["kind"] == "corrupt"


def test_ensure_done_is_idempotent(tmp_path):
    queue = make_queue(tmp_path)
    queue.ensure_done(KEY)
    queue.ensure_done(KEY)
    assert queue.enqueue(KEY, TASK) is False  # already settled
    assert queue.drained()


def test_unreadable_lease_body_expires_by_age(tmp_path):
    """A claimer SIGKILLed between O_EXCL create and writing the body
    leaves an empty lease; it must expire by mtime, not live forever."""
    queue = make_queue(tmp_path, lease_ttl=0.05)
    queue.enqueue(KEY, TASK)
    job = queue.claim("w1")
    lease = queue._lease_path(job.digest)
    lease.write_bytes(b"")  # torn body
    time.sleep(0.1)
    job2 = queue.claim("w2")
    assert job2 is not None


def test_sigkilled_worker_job_is_reclaimed(tmp_path):
    """A real SIGKILL: the child claims and is killed holding the lease;
    after ttl the job is reclaimed and completed by another worker."""
    queue = make_queue(tmp_path, lease_ttl=0.3)
    queue.enqueue(KEY, TASK)
    pid = os.fork()
    if pid == 0:  # child: claim, then hang until killed
        try:
            make_queue(tmp_path, lease_ttl=0.3).claim("victim")
            time.sleep(30)
        finally:
            os._exit(1)
    time.sleep(0.1)  # let the child claim
    assert queue.claim("rescuer") is None, "child should hold the lease"
    os.kill(pid, signal.SIGKILL)
    os.waitpid(pid, 0)
    deadline = time.time() + 5.0
    job = None
    while job is None and time.time() < deadline:
        job = queue.claim("rescuer")
        if job is None:
            time.sleep(0.05)
    assert job is not None, "expired lease never reclaimed"
    assert job.attempt == 2
    queue.complete(job, worker="rescuer")
    assert queue.drained()


def test_two_workers_drain_disjointly(tmp_path):
    """Interleaved claims from two workers never hand out one job twice."""
    queue_a = make_queue(tmp_path)
    queue_b = make_queue(tmp_path)
    keys = [(f"wl{i}", 1, 0.05, "BC", 1.0) for i in range(8)]
    for key in keys:
        queue_a.enqueue(key, tuple(key))
    seen: list[Job] = []
    while True:
        job = queue_a.claim("wa") or queue_b.claim("wb")
        if job is None:
            break
        seen.append(job)
        (queue_a if len(seen) % 2 else queue_b).complete(job)
    assert len(seen) == len(keys)
    assert len({j.digest for j in seen}) == len(keys)
    assert queue_a.drained() and queue_b.drained()


def test_failed_records_skips_torn_marker(tmp_path):
    queue = make_queue(tmp_path)
    queue.enqueue(KEY, TASK)
    job = queue.claim("w1")
    queue.fail(job, kind="error", message="boom")
    (queue.failed_dir / "torn.json").write_bytes(b"{")
    records = queue.failed_records()
    assert len(records) == 1
    assert json.loads(json.dumps(records[0]))["kind"] == "error"
