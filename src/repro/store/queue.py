"""Crash-safe lease-based campaign queue over the filesystem.

Matrix cells become durable *jobs*; any number of worker processes drain
one queue concurrently without double-computing a cell, and a worker
that dies mid-cell loses only time — its lease expires and the job is
reclaimed.

Layout (under ``<store>/queue/<campaign>/``)::

    jobs/<digest>.json    the durable job spec (key + task tuple)
    leases/<digest>.json  held by exactly one live worker (deadline-stamped)
    done/<digest>.json    completion marker (idempotent)
    failed/<digest>.json  permanent-failure marker (kind, message, attempts)

Mutual exclusion uses two filesystem primitives that are atomic on a
local POSIX filesystem:

* **Claim** — ``open(lease, O_CREAT | O_EXCL)``: exactly one contender
  creates the lease file; everyone else sees ``FileExistsError``.
* **Reclaim** — an expired lease is first *renamed away* (``os.rename``
  succeeds for exactly one renamer; the loser gets ENOENT), then all
  contenders race the ``O_EXCL`` create as usual.

Heartbeats refresh a held lease well before expiry
(:meth:`CampaignQueue.heartbeat`); a lease that expires because its
worker was SIGKILLed (or the host wedged) is reclaimable by anyone.
Reclaim counts are bounded (``max_claims``): a job that keeps killing
its workers is marked failed instead of crash-looping the campaign.

**Expiry is measured on the filesystem clock, not the wall clock.** A
lease is expired when ``fs_now - lease_mtime > lease_ttl``, where
``fs_now`` is read back from the filesystem itself
(:func:`fs_clock_now` touches a probe file and stats it) and the lease
mtime is refreshed by every heartbeat rewrite. Both timestamps come
from the same clock, so wall-clock skew between worker processes,
mocked/stepped ``time.time()``, and backward clock jumps can delay a
reclaim (safe) but never trigger one early (unsafe). The ``deadline``
field still written into lease bodies is informational only.

A supervisor that has *observed* a worker die (waited on its pid) may
:meth:`CampaignQueue.expire` that worker's leases instead of waiting
out the TTL: the lease mtime is backdated, so the next claimer reclaims
immediately — through the same single-winner rename, with the claim
count preserved (the crash-loop bound stays intact).

The queue stores *bookkeeping*, not results — results go to the
:class:`~repro.store.cas.ResultStore`, and completion markers are only
written after the result is durably committed, so a crash between the
two leaves a reclaimable job whose recompute is an idempotent store put.
"""

from __future__ import annotations

import json
import os
import socket
import time
from dataclasses import dataclass
from pathlib import Path

from repro.errors import LeaseError, StoreError
from repro.obs.metrics import REGISTRY
from repro.store.integrity import cell_digest, fault_point
from repro.utils.atomic import atomic_write_text

__all__ = ["CampaignQueue", "Job", "default_worker_id", "fs_clock_now"]

#: Default lease time-to-live (seconds). Generous relative to one cell;
#: heartbeats renew at a third of this, so only a dead worker expires.
DEFAULT_LEASE_TTL = 120.0

#: Default bound on claims per job before it is marked failed.
DEFAULT_MAX_CLAIMS = 5


def default_worker_id() -> str:
    """This process's identity in lease files: host + pid."""
    return f"{socket.gethostname()}-{os.getpid()}"


def fs_clock_now(root: str | Path, *, probe_name: str = ".clock") -> float:
    """"Now" on *root*'s filesystem clock (touch a probe, stat it).

    Every process comparing file ages against this value reads the same
    clock the kernel stamps mtimes with, so the comparison is immune to
    ``time.time()`` skew between processes and to wall-clock steps (a
    backward jump makes files look *younger*, which only delays expiry).
    """
    probe = Path(root) / probe_name
    try:
        os.utime(probe, None)
    except FileNotFoundError:
        probe.touch()
    return probe.stat().st_mtime


@dataclass(frozen=True)
class Job:
    """One claimed unit of work (hold it to heartbeat/complete/release)."""

    digest: str
    key: tuple
    task: tuple
    attempt: int  #: 1-based claim count across all workers


class CampaignQueue:
    """One campaign's durable job queue (see module docstring)."""

    def __init__(
        self,
        root: str | Path,
        campaign: str,
        *,
        lease_ttl: float = DEFAULT_LEASE_TTL,
        max_claims: int = DEFAULT_MAX_CLAIMS,
    ) -> None:
        if lease_ttl <= 0:
            raise StoreError("lease_ttl must be positive")
        self.root = Path(root) / campaign
        self.campaign = campaign
        self.lease_ttl = lease_ttl
        self.max_claims = max_claims
        self.jobs_dir = self.root / "jobs"
        self.leases_dir = self.root / "leases"
        self.done_dir = self.root / "done"
        self.failed_dir = self.root / "failed"
        for d in (self.jobs_dir, self.leases_dir, self.done_dir, self.failed_dir):
            d.mkdir(parents=True, exist_ok=True)

    # -- enqueue ---------------------------------------------------------

    def enqueue(self, key: tuple | list, task) -> bool:
        """Add one durable job (idempotent; False when already present)."""
        digest = cell_digest(key)
        path = self.jobs_dir / f"{digest}.json"
        if path.exists() or (self.done_dir / f"{digest}.json").exists():
            return False
        atomic_write_text(
            path,
            json.dumps(
                {"digest": digest, "key": list(key), "task": list(task)},
                sort_keys=True,
            ),
        )
        REGISTRY.inc("queue.enqueued")
        return True

    def ensure_done(self, key: tuple | list, *, worker: str = "store") -> None:
        """Mark a cell done without a job (it was already in the store)."""
        digest = cell_digest(key)
        marker = self.done_dir / f"{digest}.json"
        if not marker.exists():
            self._write_done(digest, list(key), worker)

    def reopen(self, key: tuple | list) -> bool:
        """Drop a cell's done marker so it can be recomputed.

        The marker promises "the result is durably in the store"; when
        that stops being true — the record was quarantined as corrupt —
        the promise must be withdrawn, or the campaign would skip the
        cell forever. Returns True when a marker was actually dropped.
        """
        marker = self.done_dir / f"{cell_digest(key)}.json"
        existed = marker.exists()
        marker.unlink(missing_ok=True)
        if existed:
            REGISTRY.inc("queue.reopened")
        return existed

    # -- claim / lease ---------------------------------------------------

    def _lease_path(self, digest: str) -> Path:
        return self.leases_dir / f"{digest}.json"

    def _fs_now(self) -> float:
        """The queue filesystem's clock (see :func:`fs_clock_now`)."""
        return fs_clock_now(self.root)

    def _read_lease(self, path: Path) -> dict | None:
        try:
            lease = json.loads(path.read_text("utf-8"))
        except FileNotFoundError:
            return None
        except (OSError, ValueError):
            # Unreadable lease (creator died between O_EXCL create and
            # writing the body): owner unknown, expiry still by mtime.
            return {"worker": "?"}
        return lease if isinstance(lease, dict) else {"worker": "?"}

    def _lease_expired(self, path: Path, fs_now: float) -> bool | None:
        """Is the lease at *path* expired? None when it vanished.

        Age is mtime-vs-probe-mtime on the same filesystem clock; a
        heartbeat rewrite resets the age to zero.
        """
        try:
            mtime = path.stat().st_mtime
        except OSError:
            return None
        return (fs_now - mtime) > self.lease_ttl

    def _try_acquire(self, digest: str, worker: str, attempt: int) -> bool:
        """The atomic claim: O_EXCL-create the lease file."""
        path = self._lease_path(digest)
        try:
            fd = os.open(path, os.O_CREAT | os.O_EXCL | os.O_WRONLY, 0o644)
        except FileExistsError:
            return False
        except OSError as exc:
            raise LeaseError(f"cannot create lease {path}: {exc}") from exc
        try:
            body = json.dumps(
                {
                    "worker": worker,
                    "attempt": attempt,
                    "acquired": time.time(),
                    "deadline": time.time() + self.lease_ttl,
                },
                sort_keys=True,
            )
            os.write(fd, body.encode("utf-8"))
            os.fsync(fd)
        finally:
            os.close(fd)
        return True

    def _reclaim_expired(self, digest: str, lease: dict) -> int | None:
        """Rename an expired lease away; the claim count it freed, or
        None when another worker won the rename race."""
        path = self._lease_path(digest)
        tombstone = self.leases_dir / f".expired-{digest}-{os.getpid()}-{time.monotonic_ns()}"
        try:
            os.rename(path, tombstone)
        except FileNotFoundError:
            return None
        except OSError as exc:
            raise LeaseError(f"cannot reclaim lease {path}: {exc}") from exc
        tombstone.unlink(missing_ok=True)
        REGISTRY.inc("queue.reclaims")
        attempt = lease.get("attempt")
        return int(attempt) if isinstance(attempt, (int, float)) else 1

    def claim(self, worker: str | None = None) -> Job | None:
        """Claim one available job (None when nothing is claimable now).

        Scans jobs in digest order; skips done/failed jobs and live
        leases; reclaims expired leases. A job whose claim count would
        exceed ``max_claims`` is marked failed instead of handed out —
        that bounds crash loops.
        """
        worker = worker or default_worker_id()
        fs_now = self._fs_now()
        for job_path in sorted(self.jobs_dir.glob("*.json")):
            digest = job_path.stem
            if (self.done_dir / job_path.name).exists():
                continue
            if (self.failed_dir / job_path.name).exists():
                continue
            prior = 0
            lease_path = self._lease_path(digest)
            lease = self._read_lease(lease_path)
            if lease is not None:
                expired = self._lease_expired(lease_path, fs_now)
                if expired is None or not expired:
                    # Vanished (completed/released under us) or live:
                    # either way, not ours to reclaim this pass.
                    continue
                freed = self._reclaim_expired(digest, lease)
                if freed is None:
                    continue  # lost the rename race
                prior = freed
            attempt = prior + 1
            spec = self._read_job(job_path)
            if spec is None:
                # A torn/foreign job file is a permanent, visible failure,
                # never a silent skip.
                self._write_failed(
                    digest, [], "corrupt", "job spec unreadable", attempt
                )
                continue
            if attempt > self.max_claims:
                self._write_failed(
                    digest,
                    spec["key"],
                    "reclaim_limit",
                    f"job reclaimed {prior} time(s); giving up",
                    prior,
                )
                continue
            if self._try_acquire(digest, worker, attempt):
                REGISTRY.inc("queue.claims")
                return Job(
                    digest=digest,
                    key=tuple(spec["key"]),
                    task=tuple(spec["task"]),
                    attempt=attempt,
                )
        return None

    def _read_job(self, path: Path) -> dict | None:
        try:
            spec = json.loads(path.read_text("utf-8"))
        except (OSError, ValueError):
            return None
        if (
            isinstance(spec, dict)
            and isinstance(spec.get("key"), list)
            and isinstance(spec.get("task"), list)
        ):
            return spec
        return None

    def heartbeat(self, job: Job, *, worker: str | None = None) -> None:
        """Refresh a held lease (call well before expiry).

        The rewrite stamps a fresh mtime — the only thing expiry checks
        look at. Raises :class:`~repro.errors.LeaseError` when the lease
        is gone or owned by someone else — the worker lost it (e.g. it
        was reclaimed after a long stall) and must stop publishing this
        job.
        """
        worker = worker or default_worker_id()
        path = self._lease_path(job.digest)
        lease = self._read_lease(path)
        if lease is None or lease.get("worker") != worker:
            raise LeaseError(
                f"lease for {job.digest[:12]}… lost "
                f"(now held by {lease.get('worker') if lease else 'nobody'})"
            )
        lease["deadline"] = time.time() + self.lease_ttl  # informational
        atomic_write_text(path, json.dumps(lease, sort_keys=True))
        REGISTRY.inc("queue.heartbeats")

    def expire(self, digest: str, *, worker: str | None = None) -> bool:
        """Make a held lease immediately reclaimable (claim count kept).

        For supervisors that have *observed* the owning worker die
        (waited on its pid): the lease mtime is backdated past the TTL,
        so the next :meth:`claim` reclaims it through the usual
        single-winner rename instead of waiting out the TTL. With
        *worker* given, only that worker's lease is expired (a lease
        already reclaimed by someone else is left alone). Returns True
        when a lease was actually expired.
        """
        path = self._lease_path(digest)
        lease = self._read_lease(path)
        if lease is None:
            return False
        if worker is not None and lease.get("worker") != worker:
            return False
        past = self._fs_now() - self.lease_ttl - 1.0
        try:
            os.utime(path, (past, past))
        except OSError:
            return False  # vanished under us: released or reclaimed
        REGISTRY.inc("queue.expired")
        return True

    def expire_worker(self, worker: str) -> int:
        """Expire every lease held by *worker* (dead-worker handover)."""
        expired = 0
        for path in self.leases_dir.glob("*.json"):
            if path.name.startswith("."):
                continue
            if self.expire(path.stem, worker=worker):
                expired += 1
        return expired

    # -- completion ------------------------------------------------------

    def _write_done(self, digest: str, key: list, worker: str) -> None:
        atomic_write_text(
            self.done_dir / f"{digest}.json",
            json.dumps(
                {"digest": digest, "key": key, "worker": worker, "time": time.time()},
                sort_keys=True,
            ),
        )

    def _write_failed(
        self, digest: str, key: list, kind: str, message: str, attempts: int
    ) -> None:
        atomic_write_text(
            self.failed_dir / f"{digest}.json",
            json.dumps(
                {
                    "digest": digest,
                    "key": key,
                    "kind": kind,
                    "message": message,
                    "attempts": attempts,
                    "time": time.time(),
                },
                sort_keys=True,
            ),
        )
        REGISTRY.inc("queue.failed")

    def complete(self, job: Job, *, worker: str | None = None) -> None:
        """Mark a job done (write marker, then release the lease).

        Call only after the result is durably in the store: the marker
        is what stops other workers from recomputing, so it must never
        precede the result.
        """
        worker = worker or default_worker_id()
        fault_point("queue.before_done")
        self._write_done(job.digest, list(job.key), worker)
        fault_point("queue.after_done")
        self._lease_path(job.digest).unlink(missing_ok=True)
        REGISTRY.inc("queue.completed")

    def fail(self, job: Job, *, kind: str, message: str) -> None:
        """Mark a job permanently failed and release its lease."""
        self._write_failed(job.digest, list(job.key), kind, message, job.attempt)
        self._lease_path(job.digest).unlink(missing_ok=True)

    def release(self, job: Job) -> None:
        """Give a claimed job back (lease dropped; anyone may reclaim)."""
        self._lease_path(job.digest).unlink(missing_ok=True)
        REGISTRY.inc("queue.released")

    # -- queue state -----------------------------------------------------

    def _names(self, d: Path) -> set[str]:
        return {p.stem for p in d.glob("*.json")}

    def snapshot(self) -> dict:
        """Counts of every job state (one directory scan)."""
        jobs = self._names(self.jobs_dir)
        done = self._names(self.done_dir)
        failed = self._names(self.failed_dir)
        leases = {
            p.stem
            for p in self.leases_dir.glob("*.json")
            if not p.name.startswith(".")
        }
        settled = done | failed
        return {
            "jobs": len(jobs),
            "done": len(done & (jobs | done)),
            "failed": len(failed),
            "leased": len(leases - settled),
            "pending": len(jobs - settled),
        }

    def drained(self) -> bool:
        """True when every job has a done or failed marker."""
        settled = self._names(self.done_dir) | self._names(self.failed_dir)
        return self._names(self.jobs_dir) <= settled

    def failed_records(self) -> list[dict]:
        """All permanent-failure markers (for figure-hole reporting)."""
        out = []
        for path in sorted(self.failed_dir.glob("*.json")):
            try:
                record = json.loads(path.read_text("utf-8"))
            except (OSError, ValueError):
                continue
            if isinstance(record, dict):
                out.append(record)
        return out
