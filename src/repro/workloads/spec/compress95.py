"""spec95.129.compress — LZW compression over a byte stream.

Models the compress95 inner loop: read a symbol, combine with the current
code into a key, probe an open-addressed hash table (``htab``/``codetab``
arrays), extend the dictionary on miss, emit the code on mismatch. All
data are array-resident small integers — codes are bounded by the
dictionary size — so the workload sits near the top of Figure 3's
compressibility range, with sequential input reads that also reward plain
next-line prefetching.
"""

from __future__ import annotations

from repro.workloads.base import Program, ProgramBuilder, scaled

__all__ = ["build", "DEFAULT_INPUT_LEN"]

DEFAULT_INPUT_LEN = 5000  #: input symbols
_HSIZE = 16384  #: hash table entries (two 64 KB tables: the L2-busting footprint)
_FIRST_FREE = 257


def build(seed: int = 1, scale: float = 1.0) -> Program:
    """Generate the compress program; *scale* adjusts input length."""
    n = scaled(DEFAULT_INPUT_LEN, scale, minimum=64)

    pb = ProgramBuilder("spec95.129.compress", seed)
    pb.op("g", (), label="cz.entry")

    # Input: bytes with heavy repetition (Markov-ish source so LZW matches).
    input_arr = pb.static_array(n)
    symbols: list[int] = []
    state = 65
    for i in range(n):
        if pb.rng.random() < 0.6:
            state = int(pb.rng.integers(65, 91))
        symbols.append(state)
    for i in pb.for_range("cz.mkinput", n, cond_srcs=("g",)):
        pb.store(input_arr + 4 * i, symbols[i], base="g", label="cz.init.in")

    htab = pb.static_array(_HSIZE)  # key (or 0 = empty)
    codetab = pb.static_array(_HSIZE)  # code for the key
    out_arr = pb.static_array(n + 16)

    # Generation-time mirror of the table (drives control flow).
    table: dict[int, int] = {}
    free_code = _FIRST_FREE
    n_out = 0

    ent = symbols[0]
    pb.load(input_arr, "ent", base="g", label="cz.ld.first")
    for i in pb.for_range("cz.main", n - 1, cond_srcs=("i",)):
        c = symbols[i + 1]
        pb.load(input_arr + 4 * (i + 1), "c", base="g", label="cz.ld.next")
        key = (c << 12) + ent
        pb.op("key", ("c", "ent"), label="cz.hash.key")
        h = ((c << 5) ^ ent) & (_HSIZE - 1)
        pb.op("h", ("key",), label="cz.hash.h")

        # Probe chain (linear probing on collision, like the original's
        # secondary probe).
        probes = 0
        found = False
        while True:
            slot_key = pb.load(htab + 4 * h, "hk", base="h", label="cz.probe.ldk")
            occupied = slot_key != 0
            if occupied and table.get(h, (None, None))[0] == key:
                found = True
                pb.branch("cz.probe.hit", taken=True, srcs=("hk", "key"))
                break
            pb.branch("cz.probe.hit", taken=False, srcs=("hk", "key"))
            if not occupied:
                break
            h = (h + 1) & (_HSIZE - 1)
            pb.op("h", ("h",), label="cz.probe.step")
            probes += 1
            if probes > 8:
                break
            pb.branch("cz.probe.more", taken=True, srcs=("h",))
        if probes <= 8 and not found:
            pb.branch("cz.probe.more", taken=False, srcs=("h",))

        if found:
            code = pb.load(codetab + 4 * h, "ent", base="h", label="cz.hit.ldcode")
            ent = table[h][1]
        else:
            # Emit current code, add (key -> free_code) to the dictionary.
            pb.store(out_arr + 4 * n_out, ent, base="g", src="ent", label="cz.out.st")
            n_out += 1
            if free_code < _HSIZE - 1:
                # Keys are (char << 12) + code: up to 17 bits, so a good
                # fraction exceed the small-value range — like the original's
                # fcode values.
                pb.store(htab + 4 * h, key & 0x1FFFF, base="h", src="key",
                         label="cz.add.stk")
                pb.store(codetab + 4 * h, free_code, base="h", label="cz.add.stc")
                table[h] = (key, free_code)
                free_code += 1
                pb.branch("cz.add.room", taken=True, srcs=("h",))
            else:
                pb.branch("cz.add.room", taken=False, srcs=("h",))
            ent = c
            pb.op("ent", ("c",), label="cz.restart")

    pb.store(out_arr + 4 * n_out, ent, base="g", src="ent", label="cz.out.last")
    out = pb.static_array(1)
    pb.store(out, n_out + 1, src="ent", label="cz.result")
    return pb.build(
        description="LZW loop: hash probes over small-integer arrays",
        params={"input_len": n, "codes_emitted": n_out + 1, "dict_size": free_code},
    )
