"""Extension bench: prefix compression vs frequent-value compression.

Swaps the CPP cache's compressibility predicate for the related-work
FVC table ([6], §5) and measures both hit rates and end performance.
Expected shape: the prefix scheme wins overall — it needs no profiling
pass and catches *pointers*, the dominant compressible class in
linked-structure code — while FVC is competitive on value-repetitive
array code and uniquely catches repeated large constants.
"""

from conftest import BENCH_SEED, run_once

from repro.caches.hierarchy import HierarchyParams
from repro.compression.frequent import profile_frequent_values
from repro.compression.vectorized import compression_summary
from repro.sim.config import SimConfig
from repro.sim.runner import get_program, run_program

WORKLOADS = ["olden.treeadd", "spec95.130.li", "spec95.129.compress"]
SCALE = 0.35
TABLE = 256


def run_fvc_comparison():
    out = {}
    for name in WORKLOADS:
        program = get_program(name, seed=BENCH_SEED, scale=SCALE)
        fvc = profile_frequent_values(program.trace, top_n=TABLE)
        prefix_frac = compression_summary(
            *program.trace.accessed_values()
        ).fraction_compressible
        fvc_frac = compression_summary(
            *program.trace.accessed_values(), fvc
        ).fraction_compressible
        prefix_cycles = run_program(program, SimConfig(cache_config="CPP")).cycles
        fvc_cycles = run_program(
            program,
            SimConfig(cache_config="CPP", hierarchy=HierarchyParams(scheme=fvc)),
        ).cycles
        out[name] = {
            "prefix_frac": prefix_frac,
            "fvc_frac": fvc_frac,
            "prefix_cycles": prefix_cycles,
            "fvc_cycles": fvc_cycles,
        }
    return out


def test_extension_frequent_value_compression(benchmark):
    results = run_once(benchmark, run_fvc_comparison)
    total_prefix = total_fvc = 0
    for name, r in results.items():
        short = name.split(".")[-1]
        benchmark.extra_info[f"{short}_prefix_frac"] = round(r["prefix_frac"], 3)
        benchmark.extra_info[f"{short}_fvc_frac"] = round(r["fvc_frac"], 3)
        total_prefix += r["prefix_cycles"]
        total_fvc += r["fvc_cycles"]
    benchmark.extra_info["prefix_cycles"] = total_prefix
    benchmark.extra_info["fvc_cycles"] = total_fvc
    # Both schemes compress a nontrivial share everywhere:
    for r in results.values():
        assert r["fvc_frac"] > 0.1
    # The prefix scheme dominates on the pointer-heavy workloads (it
    # compresses pointers FVC cannot tabulate):
    assert (
        results["olden.treeadd"]["prefix_frac"]
        > results["olden.treeadd"]["fvc_frac"]
    )
    # ... and overall performance with the prefix scheme is at least as
    # good (the paper's design choice).
    assert total_prefix <= total_fvc * 1.02
