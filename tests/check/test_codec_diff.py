"""The codec differential harness: oracles catch planted bugs, zoo is clean."""

import pytest

from repro.check.codec_diff import (
    CodecDivergence,
    boundary_lines,
    check_line,
    fuzz_codec,
)
from repro.compression.codecs import CODEC_NAMES, get_codec
from repro.compression.codecs.protocol import Codec, EncodedLine, LinePack, TagOverhead
from repro.compression.timing import CodecTiming

BASE = 0x1000_0000


@pytest.mark.parametrize("name", CODEC_NAMES)
def test_zoo_is_clean(name):
    assert fuzz_codec(name, seed=0, n_lines=50) == []


def test_boundary_lines_cover_the_edges():
    lines = boundary_lines()
    flat = [v for vals, _ in lines for v in vals]
    # The named edges from the satellite: SE8 min/max, BDI overflow
    # pairs, C-Pack repeat-for-dictionary-hit, long zero runs.
    assert 0x7F in flat and 0x80 in flat
    assert 0xFFFF_FF7F in flat and 0xFFFF_FF80 in flat
    assert flat.count(0xDEAD_BEEF) >= 2
    assert any(len(vals) == 0 for vals, _ in lines)


class _BrokenRoundTrip(Codec):
    """Drops the last word on decode — the harness must notice."""

    name = "broken-rt"

    def compress_line(self, values, addrs):
        return EncodedLine(self.name, len(values), tuple(values), 32 * len(values))

    def decompress_line(self, encoded, addrs):
        return [v & 0xFFFFFFFF for v in encoded.tokens][:-1]

    def pack_line(self, values, addrs):
        return LinePack(len(values), 0, 32 * len(values), 0)

    @property
    def timing(self):
        return CodecTiming(0, 0)

    def tag_overhead(self):
        return TagOverhead()


class _BrokenAccounting(_BrokenRoundTrip):
    """Round-trips fine but pack_line disagrees with compress_line."""

    name = "broken-bits"

    def decompress_line(self, encoded, addrs):
        return [v & 0xFFFFFFFF for v in encoded.tokens]

    def pack_line(self, values, addrs):
        return LinePack(len(values), 0, 32 * len(values) + 1, 0)


def test_round_trip_oracle_fires():
    d = check_line(_BrokenRoundTrip(), [1, 2, 3], BASE)
    assert isinstance(d, CodecDivergence)
    assert d.oracle == "round-trip"
    assert "3" in d.detail or "length" in d.detail


def test_bit_accounting_oracle_fires():
    d = check_line(_BrokenAccounting(), [1, 2, 3], BASE)
    assert d is not None
    assert d.oracle == "bit-accounting"


def test_divergence_describe_names_the_line():
    d = check_line(_BrokenRoundTrip(), [0xABCD_0123], BASE)
    text = d.describe()
    assert "broken-rt" in text and "0xabcd0123" in text


def test_word_facet_equality_for_cpp():
    # The cpp facet is total: facet count must equal pack count; a line
    # of half pointers half junk exercises both sides.
    vals = [BASE + 4 * i if i % 2 else 0xBAD0_0000 + i for i in range(16)]
    assert check_line(get_codec("cpp"), vals, BASE) is None
