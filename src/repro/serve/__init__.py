"""The resilient experiment service (`python -m repro.serve`).

An HTTP facade over the content-addressed result store and its lease
queue, plus the self-healing worker pool that drains it:

* :mod:`repro.serve.app` — the stdlib asyncio HTTP server and the
  service lifecycle (supervision loop, background GC, graceful drain);
* :mod:`repro.serve.handlers` — pure request handlers implementing the
  202-until-200 degraded-mode contract;
* :mod:`repro.serve.supervisor` — the worker pool: spawn, reap, reclaim
  leases, restart with deterministic backoff, stall-kill;
* :mod:`repro.serve.worker` — one queue-draining worker process;
* :mod:`repro.serve.client` — a blocking stdlib client with the polling
  contract built in.

The design rule throughout: every durable truth lives in the store (and
is verified on read); the service holds no state a SIGKILL could lose.
"""

from repro.serve.app import ExperimentService, run_service
from repro.serve.client import ServeClient, ServeReply
from repro.serve.supervisor import WorkerPool
from repro.serve.worker import run_worker

__all__ = [
    "ExperimentService",
    "ServeClient",
    "ServeReply",
    "WorkerPool",
    "run_service",
    "run_worker",
]
