"""Two-level hierarchy tests across all five configurations."""

import pytest

from repro.caches.hierarchy import (
    CONFIG_NAMES,
    HierarchyParams,
    build_hierarchy,
)
from repro.errors import ConfigurationError
from repro.memory.image import MemoryImage
from repro.memory.main_memory import MainMemory

from tests.conftest import TINY_PARAMS, make_tiny

BASE = 0x1000_0000


class TestBuilders:
    @pytest.mark.parametrize("name", CONFIG_NAMES)
    def test_builds(self, name):
        h = make_tiny(name)
        assert h.name == name

    def test_case_insensitive(self):
        mem = MainMemory(MemoryImage())
        assert build_hierarchy("cpp", mem, TINY_PARAMS).name == "CPP"

    def test_unknown_rejected(self):
        with pytest.raises(ConfigurationError):
            build_hierarchy("XYZ", MainMemory(MemoryImage()))

    def test_hac_doubles_associativity(self):
        h = make_tiny("HAC")
        assert h.l1.assoc == 2 * TINY_PARAMS.l1_assoc
        assert h.l2.assoc == 2 * TINY_PARAMS.l2_assoc

    def test_bcp_has_buffers(self):
        h = make_tiny("BCP")
        assert h.l1.buffer.n_entries == TINY_PARAMS.l1_buffer_entries
        assert h.l2.buffer.n_entries == TINY_PARAMS.l2_buffer_entries

    def test_scaled_latencies(self):
        p = HierarchyParams().scaled_latencies(0.5)
        assert p.l2_latency == 5
        with pytest.raises(ConfigurationError):
            HierarchyParams().scaled_latencies(0)


class TestLatencies:
    """The paper's Figure 9 latency structure, on each configuration."""

    @pytest.mark.parametrize("name", CONFIG_NAMES)
    def test_l1_hit_is_one_cycle(self, name, seeded_memory):
        h = make_tiny(name, seeded_memory)
        h.load(BASE)
        assert h.load(BASE).latency == 1

    @pytest.mark.parametrize("name", CONFIG_NAMES)
    def test_cold_miss_pays_memory_latency(self, name, seeded_memory):
        h = make_tiny(name, seeded_memory)
        assert h.load(BASE).latency == 110  # 10 (L2) + 100 (memory)

    @pytest.mark.parametrize("name", CONFIG_NAMES)
    def test_l2_hit_costs_ten(self, name, seeded_memory):
        h = make_tiny(name, seeded_memory)
        h.load(BASE)  # into both levels
        # Evict from tiny L1 with conflicting lines, keep in larger L2:
        for k in range(1, 3):
            h.load(BASE + k * TINY_PARAMS.l1_size)
        lat = h.load(BASE).latency
        assert lat in (10, 11)  # 11 = CPP affiliated location at L2


class TestDataPaths:
    @pytest.mark.parametrize("name", CONFIG_NAMES)
    def test_read_your_writes_through_evictions(self, name):
        h = make_tiny(name)
        addrs = [BASE + 64 * k for k in range(32)]  # 4x the tiny L1
        for i, addr in enumerate(addrs):
            h.store(addr, 0x4000_0000 + i)
        for i, addr in enumerate(addrs):
            assert h.load(addr).value == 0x4000_0000 + i, name

    @pytest.mark.parametrize("name", CONFIG_NAMES)
    def test_flush_reaches_memory(self, name):
        h = make_tiny(name)
        h.store(BASE, 1234)
        h.flush()
        assert h.memory.peek_word(BASE) == 1234

    @pytest.mark.parametrize("name", CONFIG_NAMES)
    def test_invariants_after_traffic(self, name, seeded_memory):
        h = make_tiny(name, seeded_memory)
        for k in range(200):
            addr = BASE + (k * 92) % 8192
            addr &= ~3
            if k % 3 == 0:
                h.store(addr, k)
            else:
                h.load(addr)
        h.check_invariants()


class TestTrafficShape:
    """Coarse cross-configuration properties on a mixed access stream."""

    def run_stream(self, name, seeded_memory=None):
        mem = seeded_memory or MainMemory(MemoryImage())
        h = make_tiny(name, mem)
        for k in range(1024):
            h.load(BASE + 4 * (k % 2048))
        return h

    def test_bcc_traffic_below_bc(self, seeded_memory):
        bc = self.run_stream("BC")
        # fresh seeded memory per config
        from tests.conftest import HEAP  # noqa: F401

        bcc = self.run_stream("BCC")
        assert bcc.bus.total_words < bc.bus.total_words

    def test_bcc_timing_equals_bc(self, seeded_memory):
        bc = self.run_stream("BC")
        bcc = self.run_stream("BCC")
        assert bc.l1_stats.misses == bcc.l1_stats.misses
        assert bc.l2_stats.misses == bcc.l2_stats.misses

    def test_bcp_generates_prefetch_traffic(self):
        bcp = self.run_stream("BCP")
        assert bcp.bus.prefetch_words > 0

    def test_cpp_fill_traffic_at_most_bc(self):
        bc = self.run_stream("BC")
        cpp = self.run_stream("CPP")
        assert cpp.bus.fill_words <= bc.bus.fill_words
