"""Ablation: the affiliated-line pairing mask (DESIGN.md §6).

The paper fixes ``mask = 0x1`` — pairing consecutive lines, i.e.
next-line prefetch. This sweep checks that choice against farther
pairings (mask 2 and 4 pair lines two and four apart).

Note the mask interacts with the memory interface: only mask 0x1 lets an
L2 line carry both halves of an L1 pair, so larger masks lose the free
L2->L1 piggyback and should do no better — which is what this bench
demonstrates.
"""

from dataclasses import replace

from conftest import BENCH_SEED, run_once

from repro.caches.compression_cache import CPPPolicy
from repro.caches.hierarchy import HierarchyParams
from repro.sim.config import SimConfig
from repro.sim.runner import get_program, run_program

WORKLOADS = ["olden.treeadd", "spec95.130.li"]
SCALE = 0.35


def run_mask_sweep():
    results = {}
    for mask in (1, 2, 4):
        params = HierarchyParams(cpp_policy=CPPPolicy(mask=mask))
        config = SimConfig(cache_config="CPP", hierarchy=params)
        cycles = 0
        traffic = 0
        for name in WORKLOADS:
            result = run_program(get_program(name, seed=BENCH_SEED, scale=SCALE), config)
            cycles += result.cycles
            traffic += result.bus_words
        results[mask] = (cycles, traffic)
    return results


def test_ablation_pairing_mask(benchmark):
    results = run_once(benchmark, run_mask_sweep)
    for mask, (cycles, traffic) in results.items():
        benchmark.extra_info[f"mask_{mask}_cycles"] = cycles
        benchmark.extra_info[f"mask_{mask}_bus_words"] = traffic
    # The paper's next-line pairing is the best of the sweep.
    best_mask = min(results, key=lambda m: results[m][0])
    assert best_mask == 1
    assert results[1][0] <= results[2][0]
    assert results[1][0] <= results[4][0]
