"""Figure 11 — performance comparison (execution time normalized to BC).

Paper: CPP runs ~7 % faster than BC on average and ~2 % faster than HAC;
BC and BCC are identical; BCP is the strongest on most benchmarks but
loses to CPP where conflict misses dominate (e.g. 300.twolf).
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.experiments._matrix import normalized_comparison
from repro.experiments.common import ExperimentOutput

__all__ = ["run", "FIGURE", "TITLE"]

FIGURE = "fig11"
TITLE = "Execution time (cycles) normalized to BC"


def run(
    workloads: Sequence[str] | None = None,
    *,
    seed: int = 1,
    scale: float = 1.0,
) -> ExperimentOutput:
    """Regenerate this figure over *workloads* (default: all fourteen)."""
    return normalized_comparison(
        figure=FIGURE,
        title=TITLE,
        metric=lambda r: float(r.cycles),
        workloads=workloads,
        seed=seed,
        scale=scale,
        paper_reference=(
            "Figure 11: BCC == BC; HAC consistently <= BC; BCP best for 11 "
            "of 14 programs; CPP ~7% faster than BC, ~2% over HAC, and "
            "better than BCP where conflict misses dominate (health, twolf)."
        ),
    )
