"""Phase timers: nesting, accumulation, rendering."""

import pytest

from repro.obs.phases import PhaseTimer


class TestNesting:
    def test_nested_paths_are_slash_joined(self):
        t = PhaseTimer()
        with t.phase("figure.fig10"):
            assert t.current == "figure.fig10"
            with t.phase("simulate"):
                assert t.current == "figure.fig10/simulate"
        assert t.current is None
        assert set(t.stats) == {"figure.fig10", "figure.fig10/simulate"}

    def test_parent_time_includes_child_time(self):
        t = PhaseTimer()
        with t.phase("outer"):
            with t.phase("inner"):
                pass
        assert t.total_seconds("outer") >= t.total_seconds("outer/inner")

    def test_calls_accumulate_per_path(self):
        t = PhaseTimer()
        for _ in range(3):
            with t.phase("simulate"):
                pass
        assert t.stats["simulate"].calls == 3

    def test_exception_still_closes_phase(self):
        t = PhaseTimer()
        with pytest.raises(RuntimeError):
            with t.phase("boom"):
                raise RuntimeError("x")
        assert t.current is None
        assert t.stats["boom"].calls == 1

    def test_slash_in_name_rejected(self):
        t = PhaseTimer()
        with pytest.raises(ValueError):
            with t.phase("a/b"):
                pass

    def test_same_leaf_under_different_parents_is_distinct(self):
        t = PhaseTimer()
        with t.phase("fig10"):
            with t.phase("simulate"):
                pass
        with t.phase("fig11"):
            with t.phase("simulate"):
                pass
        assert "fig10/simulate" in t.stats
        assert "fig11/simulate" in t.stats
        assert "simulate" not in t.stats


class TestReporting:
    def test_snapshot_shape(self):
        t = PhaseTimer()
        with t.phase("simulate"):
            pass
        snap = t.snapshot()
        assert snap["simulate"]["calls"] == 1
        assert snap["simulate"]["seconds"] >= 0.0

    def test_render_empty_and_nonempty(self):
        t = PhaseTimer()
        assert "no phases" in t.render()
        with t.phase("simulate"):
            pass
        out = t.render()
        assert "simulate" in out
        assert "x1" in out

    def test_reset(self):
        t = PhaseTimer()
        with t.phase("simulate"):
            pass
        t.reset()
        assert t.stats == {}
