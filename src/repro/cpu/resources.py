"""Functional-unit issue-bandwidth model.

The paper's baseline (Figure 9): 4 integer ALUs, 1 integer mult/div,
2 memory ports, 4 FP ALUs, 1 FP mult/div. Units are fully pipelined —
each unit accepts one new operation per cycle — so contention is modeled
as per-cycle issue slots per unit class.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.isa.opcodes import OpClass

__all__ = ["FuCounts", "FuPool"]


@dataclass(frozen=True)
class FuCounts:
    """Number of units of each class (paper defaults)."""

    ialu: int = 4
    imult: int = 1  #: shared integer multiplier/divider
    mem_ports: int = 2
    falu: int = 4
    fmult: int = 1  #: shared FP multiplier/divider

    def __post_init__(self) -> None:
        for field_name in ("ialu", "imult", "mem_ports", "falu", "fmult"):
            if getattr(self, field_name) < 1:
                raise ConfigurationError(f"need at least one {field_name} unit")


#: Which unit class executes each op class. NOP/branch use an integer ALU
#: slot (branches resolve on the ALU in SimpleScalar).
_UNIT_OF: dict[OpClass, str] = {
    OpClass.NOP: "ialu",
    OpClass.IALU: "ialu",
    OpClass.BRANCH: "ialu",
    OpClass.IMULT: "imult",
    OpClass.IDIV: "imult",
    OpClass.FALU: "falu",
    OpClass.FMULT: "fmult",
    OpClass.FDIV: "fmult",
    OpClass.LOAD: "mem_ports",
    OpClass.STORE: "mem_ports",
}

_UNIT_NAMES = ("ialu", "imult", "mem_ports", "falu", "fmult")
#: Op-class code -> index into the per-cycle slot list (accepts plain ints
#: from the columnar trace as well as OpClass members).
_UNIT_INDEX: tuple[int, ...] = tuple(
    _UNIT_NAMES.index(_UNIT_OF[OpClass(code)]) for code in range(max(OpClass) + 1)
)


class FuPool:
    """Per-cycle issue slots for each functional-unit class.

    The slot table is a fixed list of five ints reset in place every
    cycle — the core loop calls :meth:`new_cycle` and :meth:`try_issue`
    millions of times, so neither allocates.
    """

    def __init__(self, counts: FuCounts | None = None) -> None:
        self.counts = counts if counts is not None else FuCounts()
        self._limits = (
            self.counts.ialu,
            self.counts.imult,
            self.counts.mem_ports,
            self.counts.falu,
            self.counts.fmult,
        )
        self._free = list(self._limits)

    def new_cycle(self) -> None:
        """Reset slot availability at the start of a cycle."""
        self._free[:] = self._limits

    def try_issue(self, op: OpClass | int) -> bool:
        """Claim a unit slot for *op* this cycle; False if none is free."""
        unit = _UNIT_INDEX[op]
        if self._free[unit] > 0:
            self._free[unit] -= 1
            return True
        return False

    def free_slots(self, op: OpClass | int) -> int:
        """Remaining issue slots this cycle for the unit class of *op*."""
        return self._free[_UNIT_INDEX[op]]
