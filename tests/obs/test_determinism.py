"""Observability must never perturb the simulation.

The acceptance bar for the obs layer: cycle counts (and every other
headline number) are bit-identical with tracing armed or disarmed,
because events carry only simulation-deterministic fields and phase
timing never feeds back into simulated time.
"""

import pytest

import repro.obs as obs
from repro.sim.runner import clear_caches, run_workload


@pytest.fixture(autouse=True)
def _fresh_obs():
    obs.disable()
    obs.reset()
    clear_caches()
    yield
    obs.disable()
    obs.reset()
    clear_caches()


def _run(workload, config):
    return run_workload(workload, config, seed=1, scale=0.1, use_cache=False)


@pytest.mark.parametrize("config", ["BC", "BCP", "CPP"])
def test_cycles_identical_with_tracing_on_vs_off(config):
    baseline = _run("olden.mst", config)

    obs.enable(capacity=4096)
    traced = _run("olden.mst", config)
    obs.disable()

    assert traced.cycles == baseline.cycles
    assert traced.as_dict() == baseline.as_dict()


def test_sampled_tracing_is_also_invisible():
    baseline = _run("olden.em3d", "CPP")

    obs.enable(capacity=256, sample_every=16)
    traced = _run("olden.em3d", "CPP")
    tracer = obs.get_tracer()
    obs.disable()

    assert traced.cycles == baseline.cycles
    # Sampling thins retention, never counting.
    assert tracer.count("cache_access") > len(tracer.events())


def test_tracer_saw_the_cpp_machinery():
    obs.enable(capacity=65536)
    _run("olden.mst", "CPP")
    tracer = obs.get_tracer()
    obs.disable()

    assert tracer.count("cache_access") > 0
    assert tracer.count("bus_transfer") > 0
    # CPP runs exercise the compression-specific events too.
    assert tracer.count("affiliated_hit") > 0
    assert tracer.count("promotion") > 0
