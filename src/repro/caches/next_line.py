"""Next-line prefetch-on-miss wrapper: the BCP configuration.

Implements the classic *prefetch on miss* policy (§2.2): "if a referenced
cache line ``l`` is not in the cache, line ``l`` is loaded into the data
cache and line ``l+1`` is brought into the prefetch buffer", with tagged
re-arming (consuming a buffered line prefetches its successor, keeping a
stream running — and burning bandwidth when the stream is illusory).

Timing and accounting rules:

* prefetched lines live ONLY in the buffers — they are read *through* the
  lower levels without being installed anywhere, so prefetching neither
  pollutes a cache nor masks the lower level's demand-miss statistics;
* each buffer entry records when its data arrives; a demand access that
  beats the prefetch ("late prefetch") counts as a **miss** whose penalty
  is the remaining flight time — only an access that *finds* its data in
  the buffer escapes the miss count (paper §4.4);
* prefetch-induced transfers travel as ``TrafficKind.PREFETCH`` (the
  Figure 10 BCP traffic blow-up).

The wrapper plays both hierarchy roles, like the caches it wraps:
CPU-facing (:meth:`access`, the L1 position, 8-entry buffer) and
:class:`~repro.caches.interface.LineSource` (:meth:`fetch` /
:meth:`write_back`, the L2 position, 32-entry buffer).
"""

from __future__ import annotations

from repro.caches.base import Cache
from repro.caches.interface import AccessResult, FetchResponse
from repro.caches.prefetch_buffer import PrefetchBuffer
from repro.errors import ConfigurationError
from repro.memory.bus import TrafficKind
from repro.obs import tracer as _trace

__all__ = ["PrefetchingCache"]


class PrefetchingCache:
    """A conventional cache plus a next-line prefetch buffer."""

    def __init__(self, cache: Cache, buffer_entries: int) -> None:
        if buffer_entries < 1:
            raise ConfigurationError("prefetch buffer needs at least one entry")
        self.cache = cache
        self.buffer = PrefetchBuffer(buffer_entries, cache.line_words)
        self.stats = cache.stats  # shared counters; buffer events land here

    # ---- shared helpers -------------------------------------------------------

    @property
    def name(self) -> str:
        return self.cache.name

    @property
    def line_words(self) -> int:
        return self.cache.line_words

    @property
    def hit_latency(self) -> int:
        return self.cache.hit_latency

    def _issue_prefetch(self, missed_line_no: int, now: int) -> None:
        """Prefetch the next sequential line into the buffer.

        The prefetched line is read *through* the levels below via
        :meth:`supply_prefetch` without being installed in any cache:
        "prefetched data is usually kept in a separate prefetch buffer"
        precisely so speculation cannot pollute the caches (§1), and a
        wasted prefetch therefore wastes its full memory transfer — the
        Figure 10 BCP traffic blow-up.
        """
        target = missed_line_no + 1
        target_addr = self.cache.line_addr(target)
        if self.cache.probe(target_addr) or target in self.buffer:
            return
        values, latency = self.cache.downstream.supply_prefetch(
            target_addr, self.cache.line_words, now
        )
        self.buffer.insert(target, values, ready_cycle=now + latency)
        self.stats.prefetches_issued += 1
        if _trace.ACTIVE:
            _trace.emit(
                "prefetch",
                level=self.cache.name,
                line=target,
                ready_cycle=now + latency,
            )

    # ---- CPU-facing role (BCP L1) ------------------------------------------------

    def access(
        self, addr: int, write: bool = False, value: int | None = None, now: int = 0
    ) -> AccessResult:
        """CPU access: cache first, then the buffer, then demand fetch."""
        line_no = self.cache.line_no(addr)
        if self.cache.probe(addr):
            return self.cache.access(addr, write=write, value=value, now=now)
        entry = self.buffer.pop(line_no)
        if entry is not None:
            self.cache.install_line(line_no, entry.data)
            result = self.cache.access(addr, write=write, value=value, now=now)
            self._issue_prefetch(line_no, now)  # tagged re-arm
            if entry.ready(now):
                # Found in the buffer: a hit at hit latency (paper §4.4).
                self.stats.buffer_hits += 1
                self.stats.prefetches_useful += 1
                return AccessResult(
                    latency=result.latency, served_by="l1-buffer", value=result.value
                )
            # Late prefetch: the data is still in flight — a miss whose
            # penalty is the remaining flight time.
            self.stats.hits -= 1  # reclassify the cache.access hit
            self.stats.misses += 1
            self.stats.extra["late_prefetch_hits"] = (
                self.stats.extra.get("late_prefetch_hits", 0) + 1
            )
            remaining = entry.ready_cycle - now
            return AccessResult(
                latency=remaining, served_by="l1-buffer-late", value=result.value
            )
        result = self.cache.access(addr, write=write, value=value, now=now)
        self._issue_prefetch(line_no, now)
        return result

    # ---- LineSource role (BCP L2) ----------------------------------------------------

    def fetch(
        self,
        addr: int,
        n_words: int,
        need_word: int,
        *,
        kind: TrafficKind = TrafficKind.FILL,
        now: int = 0,
        pair_addr: int | None = None,
    ) -> FetchResponse:
        """Serve a demand request from above: cache, then buffer, then
        below. (Upper-level prefetches arrive via :meth:`supply_prefetch`,
        never here, so everything seen by this method is demand; the
        wrapped conventional cache has no compressed payload to give, so
        *pair_addr* is accepted for protocol compatibility and unused.)
        """
        line_no = self.cache.line_no(addr)
        if self.cache.probe(addr):
            return self.cache.fetch(addr, n_words, need_word, kind=kind, now=now)
        entry = self.buffer.pop(line_no)
        if entry is not None:
            self.cache.install_line(line_no, entry.data)
            resp = self.cache.fetch(
                addr, n_words, need_word, kind=kind, record=False, now=now
            )
            self._issue_prefetch(line_no, now)  # tagged re-arm
            if entry.ready(now):
                self.stats.record_access(hit=True)
                self.stats.buffer_hits += 1
                self.stats.prefetches_useful += 1
                return FetchResponse(
                    values=resp.values,
                    avail=resp.avail,
                    latency=resp.latency,
                    served_by="l2-buffer",
                )
            # Late prefetch: still in flight when the request arrived.
            self.stats.record_access(hit=False)
            self.stats.extra["late_prefetch_hits"] = (
                self.stats.extra.get("late_prefetch_hits", 0) + 1
            )
            return FetchResponse(
                values=resp.values,
                avail=resp.avail,
                latency=max(resp.latency, entry.ready_cycle - now),
                served_by="l2-buffer-late",
            )
        resp = self.cache.fetch(addr, n_words, need_word, kind=kind, now=now)
        self._issue_prefetch(line_no, now)
        return resp

    def supply_prefetch(self, addr: int, n_words: int, now: int = 0):
        """Serve an upper-level prefetch: peek the cache, then the buffer,
        then forward toward memory — never installing anything here.

        Not counted in demand hit/miss statistics (the paper's miss
        figures count demand accesses only); the memory transfer of a
        fall-through is still recorded on the bus as prefetch traffic.
        """
        line_no = self.cache.line_no(addr)
        offset = (addr >> 2) & (self.cache.line_words - 1)
        data = self.cache.peek_line(line_no)
        if data is not None:
            return data[offset : offset + n_words], self.cache.hit_latency
        entry = self.buffer.peek(line_no)
        if entry is not None:
            latency = max(self.cache.hit_latency, entry.ready_cycle - now)
            return entry.data[offset : offset + n_words], latency
        values, below = self.cache.downstream.supply_prefetch(addr, n_words, now)
        return values, self.cache.hit_latency + below

    def write_back(self, addr: int, values, mask, comp: int | None = None) -> None:
        """Accept an upper-level eviction, merging any buffered copy first."""
        line_no = self.cache.line_no(addr)
        if not self.cache.probe(addr):
            entry = self.buffer.pop(line_no)
            if entry is not None:
                # Merge into the buffered copy via the cache to keep one
                # copy; a writeback move is a coherence action, not a hit.
                self.cache.install_line(line_no, entry.data)
        self.cache.write_back(addr, values, mask, comp)

    def flush(self) -> None:
        """Flush the wrapped cache and drop the (clean) buffer contents."""
        self.cache.flush()
        self.buffer.clear()
