"""Bench baseline history: JSONL recording and downward-trend warnings."""

import importlib.util
import json
from pathlib import Path

import pytest

_TOOL = Path(__file__).resolve().parent.parent / "tools" / "bench_baseline.py"
_spec = importlib.util.spec_from_file_location("bench_baseline", _TOOL)
bench = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(bench)


def _cell(rate: int, cycles: int = 100) -> dict:
    return {"insn_per_sec": rate, "cycles": cycles}


def _measured(ref_bc: int, fast_bc: int) -> dict:
    """A minimal schema-2 grid (one workload, one config per backend)."""
    return {
        "schema": 2,
        "seed": 1,
        "reps": 1,
        "workloads": {"spec95.130.li": {"scale": 0.3, "instructions": 1000}},
        "backends": {
            "reference": {"spec95.130.li": {"BC": _cell(ref_bc)}},
            "fast": {"spec95.130.li": {"BC": _cell(fast_bc)}},
        },
    }


def _v1_entry(bc: int, cpp: int) -> dict:
    return {
        "schema": 1,
        "configs": {
            "BC": {"insn_per_sec": bc, "cycles": 100},
            "CPP": {"insn_per_sec": cpp, "cycles": 200},
        },
    }


def _v2_entry(backend: str, bc: int) -> dict:
    return {
        "schema": 2,
        "backend": backend,
        "workloads": {
            "spec95.130.li": {"scale": 0.3, "configs": {"BC": _cell(bc)}}
        },
    }


class TestHistoryFile:
    def test_missing_file_is_empty_history(self, tmp_path):
        assert bench.load_history(tmp_path / "none.jsonl") == []

    def test_append_then_load_roundtrip(self, tmp_path):
        path = tmp_path / "hist.jsonl"
        rows = bench.append_history(_measured(100, 900), path)
        assert all("recorded" in row for row in rows)
        assert sorted(row["backend"] for row in rows) == ["fast", "reference"]
        loaded = bench.load_history(path)
        assert len(loaded) == 2
        by_backend = {row["backend"]: row for row in loaded}
        wl = by_backend["reference"]["workloads"]["spec95.130.li"]
        assert wl["configs"]["BC"]["insn_per_sec"] == 100
        wl = by_backend["fast"]["workloads"]["spec95.130.li"]
        assert wl["configs"]["BC"]["insn_per_sec"] == 900

    def test_load_skips_corrupt_and_foreign_lines(self, tmp_path):
        path = tmp_path / "hist.jsonl"
        path.write_text(
            "not json\n"
            + json.dumps({"unrelated": True})
            + "\n"
            + json.dumps(_v2_entry("fast", 100))
            + "\n"
        )
        loaded = bench.load_history(path)
        assert len(loaded) == 1

    def test_v1_rows_still_load(self, tmp_path):
        path = tmp_path / "hist.jsonl"
        path.write_text(json.dumps(_v1_entry(100, 200)) + "\n")
        assert len(bench.load_history(path)) == 1


class TestTrendWarnings:
    def test_short_history_never_warns(self):
        history = [_v2_entry("fast", 100), _v2_entry("fast", 90)]
        assert bench.trend_warnings(history) == []

    def test_three_strict_drops_warn_per_cell(self):
        history = [
            _v2_entry("fast", 100),
            _v2_entry("fast", 90),
            _v2_entry("fast", 80),
        ]
        warnings = bench.trend_warnings(history)
        assert len(warnings) == 1
        assert warnings[0].startswith("fast/spec95.130.li/BC:")
        assert "100" in warnings[0] and "80" in warnings[0]

    def test_backends_tracked_independently(self):
        # fast falls three times; reference is flat — only fast warns.
        history = [
            _v2_entry("fast", 100),
            _v2_entry("reference", 50),
            _v2_entry("fast", 90),
            _v2_entry("reference", 50),
            _v2_entry("fast", 80),
            _v2_entry("reference", 50),
        ]
        warnings = bench.trend_warnings(history)
        assert len(warnings) == 1 and warnings[0].startswith("fast/")

    def test_flat_or_recovering_series_does_not_warn(self):
        flat = [_v2_entry("fast", 100)] * 3
        recovering = [
            _v2_entry("fast", 100),
            _v2_entry("fast", 80),
            _v2_entry("fast", 90),
        ]
        assert bench.trend_warnings(flat) == []
        assert bench.trend_warnings(recovering) == []

    def test_only_last_window_considered(self):
        history = [
            _v2_entry("fast", 50),  # old low point is irrelevant
            _v2_entry("fast", 100),
            _v2_entry("fast", 90),
            _v2_entry("fast", 80),
        ]
        warnings = bench.trend_warnings(history)
        assert len(warnings) == 1 and "100" in warnings[0]

    def test_v1_rows_fold_into_reference_series(self):
        history = [
            _v1_entry(100, 200),
            _v1_entry(90, 200),
            _v2_entry("reference", 80),
        ]
        # v1 rows count toward the reference/spec95.130.li series, so a
        # fall that spans the schema change still warns.
        warnings = bench.trend_warnings(history)
        assert any(w.startswith("reference/spec95.130.li/BC:") for w in warnings)


class TestCheck:
    def test_backend_cycle_divergence_fails(self):
        measured = _measured(100, 900)
        measured["backends"]["fast"]["spec95.130.li"]["BC"]["cycles"] = 101
        baseline = json.loads(json.dumps(measured))  # identical baseline
        problems = bench.check(measured, baseline, tolerance=0.5)
        assert any("backends diverged" in p for p in problems)

    def test_identical_grid_passes(self):
        measured = _measured(100, 900)
        baseline = json.loads(json.dumps(measured))
        assert bench.check(measured, baseline, tolerance=0.5) == []

    def test_throughput_floor_gates_each_backend(self):
        measured = _measured(100, 900)
        baseline = json.loads(json.dumps(measured))
        measured["backends"]["fast"]["spec95.130.li"]["BC"]["insn_per_sec"] = 100
        problems = bench.check(measured, baseline, tolerance=0.5)
        assert len(problems) == 1 and problems[0].startswith("fast/")

    def test_v1_baseline_demands_rerecord(self):
        problems = bench.check(_measured(100, 900), _v1_entry(1, 2), 0.5)
        assert problems and "re-record" in problems[0]


class TestCLI:
    def test_unknown_backend_flag_errors_before_measuring(self, capsys):
        with pytest.raises(SystemExit) as exc:
            bench.main(["--backends", "bogus"])
        assert exc.value.code == 2
        assert "bogus" in capsys.readouterr().err

    def test_record_refuses_a_partial_backend_grid(self, capsys):
        with pytest.raises(SystemExit) as exc:
            bench.main(["--record", "--backends", "fast"])
        assert exc.value.code == 2
        assert "full backend grid" in capsys.readouterr().err
