"""Vectorized (NumPy) bulk compressibility analysis.

Figure 3 of the paper classifies *every dynamically accessed word* of each
benchmark. Traces easily reach millions of accesses, so the per-word
Python codec would be the bottleneck; these routines classify whole trace
columns at once. They are bit-for-bit equivalent to
:class:`~repro.compression.scheme.CompressionScheme` (property-tested in
``tests/compression/test_vectorized.py``).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.compression.scheme import PAPER_SCHEME, CompressClass, CompressionScheme

__all__ = ["classify_words", "compressible_mask", "compression_summary", "CompressionSummary"]


def _as_u32(a: np.ndarray) -> np.ndarray:
    return np.ascontiguousarray(a, dtype=np.uint32)


def classify_words(
    values: np.ndarray,
    addrs: np.ndarray,
    scheme: CompressionScheme = PAPER_SCHEME,
) -> np.ndarray:
    """Classify arrays of words; returns ``uint8`` :class:`CompressClass` codes.

    Small-value classification wins over pointer classification for words
    passing both tests, matching the scalar scheme. Alternative schemes
    (e.g. frequent-value compression) plug in through a
    ``mask_compressible`` hook; their compressible words are reported as
    ``SMALL`` since they carry no small/pointer distinction.
    """
    values = _as_u32(values)
    addrs = _as_u32(addrs)
    if values.shape != addrs.shape:
        raise ValueError("values and addrs must have identical shapes")

    hook = getattr(scheme, "mask_compressible", None)
    if hook is not None:
        out = np.zeros(values.shape, dtype=np.uint8)
        out[hook(values, addrs)] = np.uint8(CompressClass.SMALL)
        return out

    shift_small = np.uint32(32 - scheme.small_check_bits)
    top_small = values >> shift_small
    all_ones = np.uint32((1 << scheme.small_check_bits) - 1)
    small = (top_small == 0) | (top_small == all_ones)

    shift_ptr = np.uint32(32 - scheme.pointer_prefix_bits)
    pointer = (values >> shift_ptr) == (addrs >> shift_ptr)

    out = np.zeros(values.shape, dtype=np.uint8)
    out[pointer] = np.uint8(CompressClass.POINTER)
    out[small] = np.uint8(CompressClass.SMALL)  # small wins: applied last
    return out


def compressible_mask(
    values: np.ndarray,
    addrs: np.ndarray,
    scheme: CompressionScheme = PAPER_SCHEME,
) -> np.ndarray:
    """Boolean mask of words compressible under *scheme*."""
    return classify_words(values, addrs, scheme) != np.uint8(
        CompressClass.INCOMPRESSIBLE
    )


def packed_bus_words_vec(
    values: np.ndarray,
    addrs: np.ndarray,
    scheme: CompressionScheme = PAPER_SCHEME,
    *,
    count_flag_bits: bool = True,
) -> int:
    """Vectorized equivalent of :func:`repro.compression.codec.packed_bus_words`.

    Used on the cache models' hot transfer-accounting path (every
    compressed fill and write-back); equivalence with the scalar codec is
    property-tested.
    """
    values = _as_u32(values)
    addrs = _as_u32(addrs)
    n = int(values.size)
    if n == 0:
        return 0
    n_comp = int(np.count_nonzero(compressible_mask(values, addrs, scheme)))
    bits = scheme.compressed_bits * n_comp + 32 * (n - n_comp)
    if count_flag_bits:
        bits += n
    return -(-bits // 32)


@dataclass(frozen=True)
class CompressionSummary:
    """Aggregate classification counts for a stream of accessed words."""

    n_words: int
    n_small: int
    n_pointer: int

    @property
    def n_compressible(self) -> int:
        return self.n_small + self.n_pointer

    @property
    def n_incompressible(self) -> int:
        return self.n_words - self.n_compressible

    @property
    def fraction_compressible(self) -> float:
        """The Figure 3 quantity: share of accessed words that compress."""
        return self.n_compressible / self.n_words if self.n_words else 0.0

    @property
    def fraction_small(self) -> float:
        return self.n_small / self.n_words if self.n_words else 0.0

    @property
    def fraction_pointer(self) -> float:
        return self.n_pointer / self.n_words if self.n_words else 0.0


def compression_summary(
    values: np.ndarray,
    addrs: np.ndarray,
    scheme: CompressionScheme = PAPER_SCHEME,
) -> CompressionSummary:
    """Classify a word stream and aggregate counts (the Figure 3 analysis)."""
    classes = classify_words(values, addrs, scheme)
    n_small = int(np.count_nonzero(classes == np.uint8(CompressClass.SMALL)))
    n_pointer = int(np.count_nonzero(classes == np.uint8(CompressClass.POINTER)))
    return CompressionSummary(
        n_words=int(classes.size), n_small=n_small, n_pointer=n_pointer
    )
