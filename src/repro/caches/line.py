"""Classic cache line state (BC / BCC / HAC / BCP lines)."""

from __future__ import annotations

from repro.utils.bitmask import as_words

__all__ = ["CacheLine"]


class CacheLine:
    """One full, valid-or-invalid line of a conventional cache.

    ``data`` is a plain list of Python ints — one 32-bit word value per
    slot — so the per-access hot path (word reads, word writes, slice
    copies for sub-line fetches) never touches NumPy.
    """

    __slots__ = ("line_no", "valid", "dirty", "data")

    def __init__(self, n_words: int) -> None:
        self.line_no = -1  #: line number (address >> line_shift); -1 = invalid
        self.valid = False
        self.dirty = False
        self.data: list[int] = [0] * n_words

    def install(self, line_no: int, values) -> None:
        """Fill the line with fresh data."""
        self.line_no = line_no
        self.valid = True
        self.dirty = False
        self.data[:] = as_words(values)

    def invalidate(self) -> None:
        """Mark the line empty and clean."""
        self.line_no = -1
        self.valid = False
        self.dirty = False

    def __repr__(self) -> str:  # pragma: no cover - debug cosmetic
        state = "V" if self.valid else "-"
        state += "D" if self.dirty else " "
        return f"<CacheLine {self.line_no:#x} {state}>"
