"""SPECint95 / SPECint2000 workload models.

Unlike Olden's pure pointer kernels, the SPEC integer programs mix array
sweeps, hash tables, interpreters and randomized search — giving the
evaluation its spread of compressibility, branch behaviour and miss
patterns (e.g. twolf's conflict-miss dominance, which is where the paper
shows CPP beating BCP).
"""

from repro.workloads.spec import (  # noqa: F401  (re-export modules)
    compress95,
    go95,
    gzip00,
    ijpeg95,
    li95,
    mcf00,
    parser00,
    twolf00,
    vortex95,
    vpr00,
)

__all__ = [
    "compress95",
    "go95",
    "gzip00",
    "ijpeg95",
    "li95",
    "mcf00",
    "parser00",
    "twolf00",
    "vortex95",
    "vpr00",
]
