"""Per-cache-level statistics.

The Figure 12/13 comparisons are built from these counters. Following the
paper, a BCP access satisfied from the prefetch buffer is *not* counted as
a miss ("it is not considered as a cache miss in BCP if an access can find
its data item from prefetch buffer").
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["CacheStats"]


@dataclass
class CacheStats:
    """Event counters for one cache level."""

    name: str = ""

    accesses: int = 0
    hits: int = 0
    misses: int = 0

    # -- classic-prefetch (BCP) events --------------------------------------
    buffer_hits: int = 0  #: demand accesses satisfied by the prefetch buffer
    prefetches_issued: int = 0
    prefetches_useful: int = 0  #: buffer entries later consumed by demand

    # -- CPP events -----------------------------------------------------------
    affiliated_hits: int = 0  #: demand hits served from the affiliated place
    partial_fills: int = 0  #: fills that arrived with holes
    hole_misses: int = 0  #: misses on a present-but-partial line
    promotions: int = 0  #: affiliated line moved to its primary place
    stashes: int = 0  #: victims stashed into their affiliated place
    prefetched_words: int = 0  #: affiliated words installed by fills
    dropped_affiliated_words: int = 0  #: evicted by value-compressibility changes

    writebacks: int = 0

    extra: dict[str, int] = field(default_factory=dict)

    # ---- derived -------------------------------------------------------------

    @property
    def miss_rate(self) -> float:
        """Misses per access (0 when idle)."""
        return self.misses / self.accesses if self.accesses else 0.0

    @property
    def hit_rate(self) -> float:
        return 1.0 - self.miss_rate if self.accesses else 0.0

    def record_access(self, *, hit: bool) -> None:
        """Count one demand access as a hit or a miss."""
        self.accesses += 1
        if hit:
            self.hits += 1
        else:
            self.misses += 1

    #: The integer counters every level carries (used by as_dict/publish).
    COUNTER_FIELDS = (
        "accesses",
        "hits",
        "misses",
        "buffer_hits",
        "prefetches_issued",
        "prefetches_useful",
        "affiliated_hits",
        "partial_fills",
        "hole_misses",
        "promotions",
        "stashes",
        "prefetched_words",
        "dropped_affiliated_words",
        "writebacks",
    )

    def as_dict(self) -> dict[str, float | int | str]:
        """Flatten to plain types for reports.

        ``extra`` counters are namespaced as ``extra.<key>`` so a wrapper
        registering e.g. an ``extra["misses"]`` counter can never shadow
        the base ``misses`` column.
        """
        out: dict[str, float | int | str] = {"name": self.name}
        for field_name in self.COUNTER_FIELDS:
            out[field_name] = getattr(self, field_name)
        out["miss_rate"] = self.miss_rate
        for key, value in self.extra.items():
            out[f"extra.{key}"] = value
        return out

    def publish(self, registry, **labels) -> None:
        """Publish every counter into a metrics *registry*.

        Metric names are ``cache.<counter>``; the cache level rides in a
        ``level`` label, callers add run identity (workload/config).
        Counters accumulate across runs per the registry contract.
        """
        labels.setdefault("level", self.name or "?")
        for field_name in self.COUNTER_FIELDS:
            value = getattr(self, field_name)
            if value:
                registry.inc(f"cache.{field_name}", value, **labels)
        for key, value in self.extra.items():
            if value:
                registry.inc(f"cache.extra.{key}", value, **labels)
        registry.set_gauge("cache.miss_rate", self.miss_rate, **labels)
