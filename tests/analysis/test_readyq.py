"""Tests for the Figure 15 ready-queue analysis."""

import pytest

from repro.analysis.readyq import ReadyQueueComparison, ready_queue_uplift
from repro.errors import ExperimentError
from repro.sim.runner import clear_caches


class TestComparison:
    def test_uplift_math(self):
        cmp_ = ReadyQueueComparison("w", "HAC", "CPP", 1.0, 1.5)
        assert cmp_.uplift == pytest.approx(0.5)
        assert cmp_.uplift_percent == pytest.approx(50.0)

    def test_zero_baseline(self):
        cmp_ = ReadyQueueComparison("w", "HAC", "CPP", 0.0, 1.0)
        assert cmp_.uplift == 0.0

    def test_same_configs_rejected(self):
        with pytest.raises(ExperimentError):
            ready_queue_uplift("olden.mst", baseline_config="CPP", test_config="CPP")


class TestMeasured:
    def test_cpp_uplift_on_pointer_workload(self):
        """Paper: CPP leaves the pipeline with more ready work during
        misses than HAC on the benchmarks it helps."""
        clear_caches()
        cmp_ = ready_queue_uplift("spec95.130.li", scale=0.3)
        assert cmp_.baseline_config == "HAC"
        assert cmp_.test_config == "CPP"
        assert cmp_.test_length > 0
        assert cmp_.uplift > 0.0
