"""Figure 14 — importance of cache misses.

Estimated, as in the paper, by the percentage of instructions directly
dependent on the miss instructions: run each (workload, configuration)
twice — normal and half miss penalty — and solve Amdahl's law for the
enhanced fraction (S_enhanced = 2). The paper finds CPP reduces miss
importance for most benchmarks versus BC and HAC.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.analysis.importance import fraction_enhanced
from repro.errors import ReproError
from repro.experiments.common import GEOMEAN, ExperimentOutput, average, resolve_workloads
from repro.sim import fault as _fault
from repro.sim.config import SIM_CONFIGS

__all__ = ["run", "FIGURE", "TITLE", "DEFAULT_CONFIGS"]

FIGURE = "fig14"
TITLE = "Importance of cache misses (% of directly dependent instructions)"
DEFAULT_CONFIGS = ("BC", "HAC", "BCP", "CPP")


def _importance_percent(
    workload: str, cfg: str, *, seed: int, scale: float
) -> float | None:
    """The Figure 14 percentage, or ``None`` if either cell is a hole.

    Same pair of runs as :func:`repro.analysis.importance.miss_importance`
    (normal and half-miss-penalty), but fetched through
    :func:`repro.sim.fault.try_cell` so a failed cell degrades to a hole
    instead of aborting the figure.
    """
    base_cfg = SIM_CONFIGS.get(cfg.upper())
    if base_cfg is None:
        return None
    normal = _fault.try_cell(workload, base_cfg, seed=seed, scale=scale)
    half = _fault.try_cell(
        workload, base_cfg.with_miss_scale(0.5), seed=seed, scale=scale
    )
    if normal is None or half is None:
        return None
    try:
        return 100.0 * fraction_enhanced(normal.cycles, half.cycles)
    except ReproError:
        return None


def run(
    workloads: Sequence[str] | None = None,
    *,
    seed: int = 1,
    scale: float = 1.0,
    configs: Sequence[str] = DEFAULT_CONFIGS,
) -> ExperimentOutput:
    """Regenerate this figure over *workloads* (default: all fourteen)."""
    names = resolve_workloads(workloads)
    configs = list(configs)
    series: dict[str, dict[str, float]] = {cfg: {} for cfg in configs}
    rows: list[list[object]] = []
    for workload in names:
        row: list[object] = [workload]
        for cfg in configs:
            percent = _importance_percent(workload, cfg, seed=seed, scale=scale)
            if percent is not None:
                series[cfg][workload] = percent
            row.append(None if percent is None else round(percent, 2))
        rows.append(row)
    for cfg in configs:
        cfg_avg = average({k: v for k, v in series[cfg].items() if k != GEOMEAN})
        if cfg_avg is not None:
            series[cfg][GEOMEAN] = cfg_avg
    rows.append(
        [
            GEOMEAN,
            *(
                None
                if series[cfg].get(GEOMEAN) is None
                else round(series[cfg][GEOMEAN], 2)
                for cfg in configs
            ),
        ]
    )
    return ExperimentOutput(
        figure=FIGURE,
        title=TITLE,
        headers=["workload", *configs],
        rows=rows,
        series=series,
        unit="%",
        paper_reference=(
            "Figure 14: CPP reduces miss importance for most benchmarks "
            "relative to BC and HAC; benchmarks where CPP trails HAC in "
            "Figure 11 show larger importance parameters."
        ),
    )
