"""Per-cache-level statistics.

The Figure 12/13 comparisons are built from these counters. Following the
paper, a BCP access satisfied from the prefetch buffer is *not* counted as
a miss ("it is not considered as a cache miss in BCP if an access can find
its data item from prefetch buffer").
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["CacheStats"]


@dataclass
class CacheStats:
    """Event counters for one cache level."""

    name: str = ""

    accesses: int = 0
    hits: int = 0
    misses: int = 0

    # -- classic-prefetch (BCP) events --------------------------------------
    buffer_hits: int = 0  #: demand accesses satisfied by the prefetch buffer
    prefetches_issued: int = 0
    prefetches_useful: int = 0  #: buffer entries later consumed by demand

    # -- CPP events -----------------------------------------------------------
    affiliated_hits: int = 0  #: demand hits served from the affiliated place
    partial_fills: int = 0  #: fills that arrived with holes
    hole_misses: int = 0  #: misses on a present-but-partial line
    promotions: int = 0  #: affiliated line moved to its primary place
    stashes: int = 0  #: victims stashed into their affiliated place
    prefetched_words: int = 0  #: affiliated words installed by fills
    dropped_affiliated_words: int = 0  #: evicted by value-compressibility changes

    writebacks: int = 0

    extra: dict[str, int] = field(default_factory=dict)

    # ---- derived -------------------------------------------------------------

    @property
    def miss_rate(self) -> float:
        """Misses per access (0 when idle)."""
        return self.misses / self.accesses if self.accesses else 0.0

    @property
    def hit_rate(self) -> float:
        return 1.0 - self.miss_rate if self.accesses else 0.0

    def record_access(self, *, hit: bool) -> None:
        """Count one demand access as a hit or a miss."""
        self.accesses += 1
        if hit:
            self.hits += 1
        else:
            self.misses += 1

    def as_dict(self) -> dict[str, float | int | str]:
        """Flatten to plain types for reports."""
        out: dict[str, float | int | str] = {
            "name": self.name,
            "accesses": self.accesses,
            "hits": self.hits,
            "misses": self.misses,
            "miss_rate": self.miss_rate,
            "buffer_hits": self.buffer_hits,
            "prefetches_issued": self.prefetches_issued,
            "prefetches_useful": self.prefetches_useful,
            "affiliated_hits": self.affiliated_hits,
            "partial_fills": self.partial_fills,
            "hole_misses": self.hole_misses,
            "promotions": self.promotions,
            "stashes": self.stashes,
            "prefetched_words": self.prefetched_words,
            "dropped_affiliated_words": self.dropped_affiliated_words,
            "writebacks": self.writebacks,
        }
        out.update(self.extra)
        return out
