"""Shared low-level helpers: bit manipulation, integer math, statistics,
deterministic RNG construction, and ASCII report rendering."""

from repro.utils.bitops import (
    MASK32,
    bit,
    bits,
    high_bits,
    low_bits,
    sign_extend,
    to_int32,
    to_uint32,
)
from repro.utils.intmath import align_down, align_up, ceil_div, is_pow2, log2i
from repro.utils.rng import make_rng, derive_seed
from repro.utils.stats import Counter, Histogram, RunningMean
from repro.utils.tables import format_bar_chart, format_table

__all__ = [
    "MASK32",
    "bit",
    "bits",
    "high_bits",
    "low_bits",
    "sign_extend",
    "to_int32",
    "to_uint32",
    "align_down",
    "align_up",
    "ceil_div",
    "is_pow2",
    "log2i",
    "make_rng",
    "derive_seed",
    "Counter",
    "Histogram",
    "RunningMean",
    "format_bar_chart",
    "format_table",
]
