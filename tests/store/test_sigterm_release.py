"""SIGTERM mid-campaign: leases released, store clean, exit code 130.

Satellite of the resilient-service PR: ``python -m repro.experiments
... --store DIR`` must treat SIGTERM (what init systems and CI send
first) exactly like Ctrl-C — unwind through the campaign engine's
cleanup so the held queue lease is released immediately (not abandoned
to TTL expiry) and the store stays a clean, recoverable prefix.

The child is a real CLI process computing a real (tiny) matrix cell;
the test waits until it holds a lease and then terminates it.
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

SRC = Path(__file__).resolve().parents[2] / "src"


def _spawn_campaign(store: Path) -> subprocess.Popen:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(SRC) + os.pathsep + env.get("PYTHONPATH", "")
    env["REPRO_PROGRESS"] = "plain"
    return subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro.experiments",
            "fig12",
            "--workloads",
            "olden.treeadd",
            "--scale",
            "0.05",
            "--store",
            str(store),
            "--no-profile",
            "--no-charts",
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        env=env,
        text=True,
    )


def _wait_for_lease(leases: Path, proc, timeout: float = 60.0) -> None:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if proc.poll() is not None:
            out = proc.stdout.read() if proc.stdout else ""
            pytest.fail(
                f"campaign exited rc={proc.returncode} before holding a "
                f"lease:\n{out[-2000:]}"
            )
        if leases.is_dir() and any(
            p.suffix == ".json" for p in leases.iterdir()
        ):
            return
        time.sleep(0.05)
    pytest.fail("campaign never claimed a lease")


def test_sigterm_mid_cell_releases_lease_and_exits_130(tmp_path):
    store = tmp_path / "store"
    proc = _spawn_campaign(store)
    leases = store / "queue" / "matrix-seed1-scale0.05" / "leases"
    try:
        _wait_for_lease(leases, proc)
        proc.send_signal(signal.SIGTERM)
        out, _ = proc.communicate(timeout=60)
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait()

    assert proc.returncode == 130, f"rc={proc.returncode}\n{out[-2000:]}"
    assert "interrupted" in out
    # The held lease was released on the way out, not left to TTL-expire.
    held = [p for p in leases.iterdir() if p.suffix == ".json"]
    assert held == [], f"leases left behind: {held}"

    # Whatever the interrupted run left behind is a clean prefix: the
    # journal replays or clears, every surviving record verifies.
    from repro.store.cas import ResultStore

    result_store = ResultStore(store)
    result_store.recover()
    report = result_store.fsck()
    assert report.clean, report.as_dict()
    assert result_store.quarantined_count() == 0

    # A rerun picks the campaign up from the released state and the
    # queue accounts for every cell exactly once.
    from repro.store.queue import CampaignQueue

    queue = CampaignQueue(store / "queue", "matrix-seed1-scale0.05")
    snapshot = queue.snapshot()
    assert snapshot["leased"] == 0
    assert snapshot["done"] + snapshot["pending"] == snapshot["jobs"]
