"""Phase timers: where did the wall-clock go?

Nested context-manager timers accumulating per-phase call counts and
seconds, keyed by slash-joined paths (``figure.fig10/simulate``). The
runner wraps trace generation and simulation, the experiment CLI wraps
prewarming and each figure, so every campaign can report its own time
breakdown (``python -m repro.experiments ... `` prints it, manifests
embed it).

Wall-clock measurement never feeds back into simulated time, so phase
timing cannot perturb cycle counts; it costs two ``perf_counter`` calls
per phase entry, which is why phases belong around *runs*, not events —
per-event timing is the tracer's job.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass

__all__ = ["PhaseStat", "PhaseTimer", "PHASES", "phase"]


@dataclass
class PhaseStat:
    """Accumulated occurrences of one phase path."""

    calls: int = 0
    seconds: float = 0.0


class PhaseTimer:
    """A stack of named phases with per-path accumulation."""

    def __init__(self) -> None:
        self._stack: list[str] = []
        self.stats: dict[str, PhaseStat] = {}

    @property
    def current(self) -> str | None:
        """Path of the innermost open phase (None at top level)."""
        return self._stack[-1] if self._stack else None

    @contextmanager
    def phase(self, name: str):
        """Time a phase; nests under whatever phase is currently open."""
        if "/" in name:
            raise ValueError("phase names must not contain '/'")
        path = f"{self._stack[-1]}/{name}" if self._stack else name
        self._stack.append(path)
        t0 = time.perf_counter()
        try:
            yield
        finally:
            dt = time.perf_counter() - t0
            self._stack.pop()
            stat = self.stats.get(path)
            if stat is None:
                stat = self.stats[path] = PhaseStat()
            stat.calls += 1
            stat.seconds += dt

    def snapshot(self) -> dict[str, dict[str, float | int]]:
        """Plain-dict view ``{path: {calls, seconds}}``, sorted by path."""
        return {
            path: {"calls": stat.calls, "seconds": stat.seconds}
            for path, stat in sorted(self.stats.items())
        }

    def total_seconds(self, path: str) -> float:
        """Accumulated seconds of one path (0.0 if never entered)."""
        stat = self.stats.get(path)
        return stat.seconds if stat else 0.0

    def reset(self) -> None:
        """Forget all accumulated phases (open phases keep nesting)."""
        self.stats.clear()

    def render(self, *, min_seconds: float = 0.0) -> str:
        """Indented text breakdown, children shown under their parents."""
        if not self.stats:
            return "(no phases recorded)"
        lines = ["phase breakdown (wall-clock):"]
        for path in sorted(self.stats):
            stat = self.stats[path]
            if stat.seconds < min_seconds:
                continue
            depth = path.count("/")
            name = path.rsplit("/", 1)[-1]
            lines.append(
                f"  {'  ' * depth}{name:<28} {stat.seconds:9.3f}s"
                f"  x{stat.calls}"
            )
        return "\n".join(lines)


#: The process-global timer (workers in a process pool get their own).
PHASES = PhaseTimer()


def phase(name: str):
    """Open a phase on the global timer: ``with phase("simulate"): ...``"""
    return PHASES.phase(name)
