"""Figure 9 — the baseline experimental setup table.

Regenerated directly from the live default configuration objects, so the
table can never drift from what the simulator actually uses.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.caches.hierarchy import HierarchyParams
from repro.cpu.pipeline import CoreConfig
from repro.experiments.common import ExperimentOutput
from repro.sim.config import MEMORY_LATENCY

__all__ = ["run", "FIGURE", "TITLE"]

FIGURE = "fig9"
TITLE = "Baseline experimental setup"


def run(
    workloads: Sequence[str] | None = None,
    *,
    seed: int = 1,
    scale: float = 1.0,
) -> ExperimentOutput:
    """Regenerate the configuration table from the live defaults."""
    core = CoreConfig()
    hier = HierarchyParams()
    rows: list[list[object]] = [
        ["Issue width", f"{core.issue_width} issue, OO"],
        ["IFQ size", f"{core.ifq_size} instr."],
        ["Branch predictor", f"Bimod, {core.bimod_entries} entries"],
        ["LD/ST queue", f"{core.lsq_size} entry"],
        ["RUU size", f"{core.ruu_size} entry"],
        [
            "Func. units",
            f"{core.fu.ialu} ALUs, {core.fu.imult} Mult/Div, "
            f"{core.fu.mem_ports} Mem ports, {core.fu.falu} FALU, "
            f"{core.fu.fmult} FMult/FDiv",
        ],
        ["L1 D-cache", f"{hier.l1_size // 1024}K, {hier.l1_assoc}-way, "
                       f"{hier.l1_line} B lines"],
        ["L1 D-cache hit latency", f"{hier.l1_latency} cycle"],
        ["L1 D-cache miss latency", f"{hier.l2_latency} cycles"],
        ["L2 cache", f"{hier.l2_size // 1024}K, {hier.l2_assoc}-way, "
                     f"{hier.l2_line} B lines"],
        ["Memory access latency", f"{MEMORY_LATENCY} cycles (L2 miss latency)"],
        ["Mispredict penalty", f"{core.mispredict_penalty} cycles + resolve"],
    ]
    return ExperimentOutput(
        figure=FIGURE,
        title=TITLE,
        headers=["Parameter", "Value"],
        rows=rows,
        paper_reference=(
            "Figure 9: 4-issue OO core, IFQ 16, bimod, 8-entry LD/ST queue, "
            "4 ALUs + 1 Mult/Div + 2 Mem ports + 4 FALU + 1 FMult/FDiv; "
            "L1 hit 1 cycle, L1 miss 10 cycles, memory 100 cycles."
        ),
    )
