"""ASCII rendering of result tables and bar charts.

The paper's evaluation is presented as bar charts (Figures 3, 10-15). We
regenerate each as (a) a machine-readable table of the series and (b) a
quick horizontal ASCII bar chart so the *shape* of each figure is visible
directly in a terminal without a plotting dependency.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping, Sequence

__all__ = ["format_table", "format_bar_chart"]


def _fmt_cell(value: object, ndigits: int) -> str:
    if value is None:
        return "—"  # an explicit hole: this cell failed or never ran
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, float):
        return f"{value:.{ndigits}f}"
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    *,
    title: str | None = None,
    ndigits: int = 3,
) -> str:
    """Render rows as a boxed, column-aligned ASCII table."""
    str_rows = [[_fmt_cell(c, ndigits) for c in row] for row in rows]
    for i, row in enumerate(str_rows):
        if len(row) != len(headers):
            raise ValueError(
                f"row {i} has {len(row)} cells, expected {len(headers)}"
            )
    widths = [len(h) for h in headers]
    for row in str_rows:
        for j, cell in enumerate(row):
            widths[j] = max(widths[j], len(cell))

    def line(cells: Sequence[str]) -> str:
        return "| " + " | ".join(c.ljust(w) for c, w in zip(cells, widths)) + " |"

    sep = "+" + "+".join("-" * (w + 2) for w in widths) + "+"
    out: list[str] = []
    if title:
        out.append(title)
    out.append(sep)
    out.append(line(list(headers)))
    out.append(sep)
    out.extend(line(row) for row in str_rows)
    out.append(sep)
    return "\n".join(out)


def format_bar_chart(
    data: Mapping[str, float],
    *,
    title: str | None = None,
    width: int = 50,
    unit: str = "",
    baseline: float | None = None,
) -> str:
    """Render a mapping ``label -> value`` as a horizontal ASCII bar chart.

    If *baseline* is given, a ``|`` marker is drawn at that value (used to
    show the BC = 100 % reference line of the normalized figures).
    """
    if width < 10:
        raise ValueError("chart width must be at least 10 columns")
    if not data:
        return (title or "") + "\n(empty)"
    label_w = max(len(k) for k in data)
    max_value = max(max(data.values()), baseline or 0.0, 1e-12)
    scale = width / max_value
    out: list[str] = []
    if title:
        out.append(title)
    marker_col = (
        min(width - 1, round(baseline * scale)) if baseline is not None else None
    )
    for label, value in data.items():
        n = max(0, round(value * scale))
        bar = list("#" * n + " " * (width - n))
        if marker_col is not None and 0 <= marker_col < len(bar):
            if bar[marker_col] == " ":
                bar[marker_col] = "|"
        out.append(f"{label.ljust(label_w)}  {''.join(bar)} {value:.3f}{unit}")
    return "\n".join(out)
