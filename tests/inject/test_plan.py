"""Deterministic fault planning."""

import pytest

from repro.errors import ConfigurationError
from repro.inject.faults import CACHE_TARGETS, FaultSpec, flip_bits
from repro.inject.plan import build_plan, faults_for_rate


class TestFlipBits:
    def test_flip_and_restore(self):
        v = 0xDEADBEEF
        assert flip_bits(flip_bits(v, [0, 5, 31]), [31, 0, 5]) == v

    def test_single_flip_changes_value(self):
        for p in range(32):
            assert flip_bits(0, [p]) == 1 << p


class TestFaultSpec:
    def test_dict_round_trip(self):
        spec = FaultSpec(
            fault_id=3, seed=77, target="meta", level="l2", trigger=41,
            bits=2, site_seed=123,
        )
        assert FaultSpec.from_dict(spec.as_dict()) == spec


class TestBuildPlan:
    def test_deterministic(self):
        a = build_plan(seed=7, n_faults=20, n_ops=400)
        b = build_plan(seed=7, n_faults=20, n_ops=400)
        assert a == b

    def test_seed_changes_plan(self):
        a = build_plan(seed=7, n_faults=20, n_ops=400)
        b = build_plan(seed=8, n_faults=20, n_ops=400)
        assert a != b

    def test_cache_targets_carry_levels(self):
        for spec in build_plan(seed=1, n_faults=50, n_ops=400):
            if spec.target in CACHE_TARGETS:
                assert spec.level in ("l1", "l2")
            else:
                assert spec.level == ""
            assert spec.trigger >= 1

    def test_target_filter(self):
        specs = build_plan(seed=1, n_faults=30, n_ops=400, targets=("bus",))
        assert all(s.target == "bus" for s in specs)
        # Bus triggers count transfers, which accrue far slower than ops.
        assert all(s.trigger < 400 // 8 for s in specs)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            build_plan(seed=1, n_faults=0, n_ops=400)
        with pytest.raises(ConfigurationError):
            build_plan(seed=1, n_faults=1, n_ops=1)
        with pytest.raises(ConfigurationError):
            build_plan(seed=1, n_faults=1, n_ops=400, targets=("rowhammer",))
        with pytest.raises(ConfigurationError):
            build_plan(seed=1, n_faults=1, n_ops=400, levels=("l3",))
        with pytest.raises(ConfigurationError):
            build_plan(seed=1, n_faults=1, n_ops=400, bits=0)


class TestFaultsForRate:
    def test_scaling(self):
        assert faults_for_rate(1.0, 1000) == 1
        assert faults_for_rate(2.5, 400) == 1
        assert faults_for_rate(10.0, 1000) == 10

    def test_floor_of_one(self):
        assert faults_for_rate(0.001, 100) == 1

    def test_rejects_nonpositive(self):
        with pytest.raises(ConfigurationError):
            faults_for_rate(0.0, 100)
        with pytest.raises(ConfigurationError):
            faults_for_rate(1.0, 0)
