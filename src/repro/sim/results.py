"""Simulation result records."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.caches.stats import CacheStats
from repro.cpu.metrics import CoreMetrics

__all__ = ["SimResult"]


@dataclass
class SimResult:
    """Everything measured from one (workload, configuration) run."""

    workload: str
    config: str
    cycles: int
    instructions: int
    l1: CacheStats
    l2: CacheStats
    bus_words: int
    bus_fill_words: int
    bus_prefetch_words: int
    bus_writeback_words: int
    metrics: CoreMetrics
    branch_mispredicts: int
    params: dict = field(default_factory=dict)

    @property
    def ipc(self) -> float:
        """Committed instructions per cycle (0.0 for an empty run).

        The paper's headline execution-time metric: Figure 11 reports
        execution time, which is ``instructions / ipc`` at fixed
        instruction count, so IPC uplift and time saved are two views of
        the same quantity.
        """
        return self.instructions / self.cycles if self.cycles else 0.0

    @property
    def l1_miss_rate(self) -> float:
        return self.l1.miss_rate

    @property
    def l2_miss_rate(self) -> float:
        return self.l2.miss_rate

    @property
    def ready_queue_in_miss_cycles(self) -> float:
        return self.metrics.avg_ready_queue_in_miss_cycles

    @property
    def bus_prefetch_share(self) -> float:
        """Fraction of all bus words spent on prefetch transfers — the
        Figure 10 "wasted bandwidth" signal (0 when the bus was idle)."""
        return self.bus_prefetch_words / self.bus_words if self.bus_words else 0.0

    def as_dict(self) -> dict[str, float | int | str]:
        """Flatten headline numbers for tables, including the full bus
        traffic breakdown (fill / prefetch / writeback words)."""
        return {
            "workload": self.workload,
            "config": self.config,
            "cycles": self.cycles,
            "instructions": self.instructions,
            "ipc": round(self.ipc, 4),
            "l1_misses": self.l1.misses,
            "l1_miss_rate": round(self.l1.miss_rate, 5),
            "l2_misses": self.l2.misses,
            "l2_miss_rate": round(self.l2.miss_rate, 5),
            "bus_words": self.bus_words,
            "bus_fill_words": self.bus_fill_words,
            "bus_prefetch_words": self.bus_prefetch_words,
            "bus_writeback_words": self.bus_writeback_words,
            "bus_prefetch_share": round(self.bus_prefetch_share, 5),
            "mispredicts": self.branch_mispredicts,
        }
