"""Tests for result serialization."""

import pytest

from repro.errors import ExperimentError
from repro.sim.results_io import (
    load_results_json,
    result_to_dict,
    results_to_csv,
    results_to_json,
)
from repro.sim.runner import clear_caches, run_matrix, run_workload


@pytest.fixture(scope="module")
def some_results():
    clear_caches()
    return run_matrix(["olden.mst"], ["BC", "CPP"], scale=0.1)


class TestDictForm:
    def test_nested_structure(self, some_results):
        d = result_to_dict(some_results[("olden.mst", "BC")])
        assert d["workload"] == "olden.mst"
        assert d["bus"]["total_words"] > 0
        assert d["l1"]["accesses"] > 0
        assert "ready_queue_in_miss_cycles" in d["core"]

    def test_json_roundtrip(self, some_results, tmp_path):
        path = results_to_json(some_results, tmp_path / "out.json")
        loaded = load_results_json(path)
        assert len(loaded) == 2
        assert {r["config"] for r in loaded} == {"BC", "CPP"}
        original = result_to_dict(some_results[("olden.mst", "BC")])
        match = next(r for r in loaded if r["config"] == "BC")
        assert match["cycles"] == original["cycles"]

    def test_accepts_list(self, some_results, tmp_path):
        path = results_to_json(list(some_results.values()), tmp_path / "l.json")
        assert len(load_results_json(path)) == 2


class TestHeadlineBusBreakdown:
    def test_as_dict_carries_the_bus_traffic_split(self, some_results):
        # Regression: as_dict() used to drop the fill/prefetch/writeback
        # word breakdown, leaving only the total.
        d = some_results[("olden.mst", "CPP")].as_dict()
        for key in (
            "bus_fill_words",
            "bus_prefetch_words",
            "bus_writeback_words",
            "bus_prefetch_share",
        ):
            assert key in d
        assert (
            d["bus_fill_words"] + d["bus_prefetch_words"] + d["bus_writeback_words"]
            == d["bus_words"]
        )

    def test_prefetch_share_is_a_fraction_of_total(self, some_results):
        r = some_results[("olden.mst", "CPP")]
        assert 0.0 <= r.bus_prefetch_share <= 1.0
        assert r.bus_prefetch_share == pytest.approx(
            r.bus_prefetch_words / r.bus_words
        )

    def test_prefetch_share_zero_on_idle_bus(self):
        from repro.sim.results import SimResult
        from repro.caches.stats import CacheStats
        from repro.cpu.metrics import CoreMetrics

        idle = SimResult(
            workload="w", config="c", cycles=0, instructions=0,
            l1=CacheStats("L1"), l2=CacheStats("L2"),
            bus_words=0, bus_fill_words=0, bus_prefetch_words=0,
            bus_writeback_words=0, metrics=CoreMetrics(),
            branch_mispredicts=0,
        )
        assert idle.bus_prefetch_share == 0.0


class TestCsv:
    def test_writes_header_and_rows(self, some_results, tmp_path):
        path = results_to_csv(some_results, tmp_path / "out.csv")
        lines = path.read_text().strip().splitlines()
        assert lines[0].startswith("workload,config,cycles")
        assert len(lines) == 3

    def test_empty_rejected(self, tmp_path):
        with pytest.raises(ExperimentError):
            results_to_csv([], tmp_path / "x.csv")


class TestErrors:
    def test_missing_file(self, tmp_path):
        with pytest.raises(ExperimentError):
            load_results_json(tmp_path / "missing.json")

    def test_wrong_shape(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"not": "a list"}')
        with pytest.raises(ExperimentError):
            load_results_json(path)
