"""Whole-evaluation report: every figure, one document.

``evaluation_report()`` regenerates all eight figures and renders them as
a single text document (the shape of the paper's §4), optionally writing
it to a file. Used by the CLI (``repro-experiments all``) consumers that
want one artifact, and by EXPERIMENTS.md regeneration.

Partial campaigns degrade instead of dying: cells recorded as failed in
:data:`repro.sim.fault.LEDGER` render as explicit ``—`` holes in the
figure tables, and the document ends with a failure summary
(:func:`failure_summary`) naming each failed cell and why, so a reader
can tell a clean evaluation from a degraded one at a glance.
"""

from __future__ import annotations

from pathlib import Path

from repro.experiments.common import ExperimentOutput, render_output
from repro.experiments.registry import EXPERIMENTS, run_experiment
from repro.obs import phases as _phases
from repro.sim import fault as _fault

__all__ = ["evaluation_report", "collect_outputs", "failure_summary"]

_HEADER = """\
================================================================
 Reproduction: Enabling Partial Cache Line Prefetching Through
 Data Compression (Zhang & Gupta, ICPP 2003)
 Regenerated evaluation — all figures
================================================================
"""


def collect_outputs(
    workloads: list[str] | None = None,
    *,
    seed: int = 1,
    scale: float = 1.0,
    figures: list[str] | None = None,
) -> dict[str, ExperimentOutput]:
    """Run the requested figures (default: all) and return their outputs."""
    figure_ids = figures if figures else list(EXPERIMENTS)
    outputs: dict[str, ExperimentOutput] = {}
    with _phases.phase("analysis"):
        for figure in figure_ids:
            with _phases.phase(f"figure.{figure}"):
                outputs[figure] = run_experiment(
                    figure, workloads, seed=seed, scale=scale
                )
    return outputs


def failure_summary() -> str:
    """Render the failure ledger as a report section ('' when clean)."""
    summary = _fault.LEDGER.summary()
    if not summary:
        return ""
    return (
        "!! partial evaluation — cells marked '—' above are holes\n" + summary
    )


def evaluation_report(
    workloads: list[str] | None = None,
    *,
    seed: int = 1,
    scale: float = 1.0,
    charts: bool = False,
    output_path: str | Path | None = None,
) -> str:
    """Regenerate the full evaluation and render it as one document.

    If any matrix cells failed (see :mod:`repro.sim.fault`), the report
    still renders — affected table cells show ``—`` and the document
    closes with a failure summary naming each hole.
    """
    outputs = collect_outputs(workloads, seed=seed, scale=scale)
    blocks = [_HEADER]
    blocks.append(f"(seed={seed}, input scale={scale})\n")
    for figure, output in outputs.items():
        blocks.append(render_output(output, charts=charts))
        blocks.append("-" * 64)
    failures = failure_summary()
    if failures:
        blocks.append(failures)
    text = "\n".join(blocks)
    if output_path is not None:
        Path(output_path).write_text(text, encoding="utf-8")
    return text
