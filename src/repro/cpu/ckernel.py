"""Optional compiled core loop for the ``fast`` backend.

The pure-Python fast loop (:mod:`repro.cpu.fastcore`) is bound by
per-instruction interpreter work: heap pushes, sorted-list inserts and
row unpacking dominate its profile. This module transcribes that exact
loop into C, compiles it once with the system C compiler into a cached
shared library, and drives it through :mod:`ctypes` — no third-party
build machinery, no install-time step, and a clean fallback to the
Python loop whenever a compiler is unavailable (or the build fails, or
``REPRO_DISABLE_CKERNEL`` is set).

The kernel owns the pipeline schedule (fetch/dispatch/issue/writeback/
commit, the completion heap, the ready list, the Welford accumulators)
but *not* the cache model, which stays in Python:

* The kernel mirrors only the L1's MRU way per set (``mru_line`` /
  ``mru_pa`` arrays). A load whose word is present in the mirrored MRU
  way is the cache's uncounted inline-hit path — served at
  ``hit_latency`` with zero Python involvement, exactly what
  ``load_word`` would do.
* Everything else crosses back into Python via two ``ctypes`` callbacks
  (one for load misses-of-the-MRU-way, one for every store, which may
  mutate frame metadata). The callback runs the ordinary word-op against
  the real cache and then refreshes the mirror entries for the only sets
  the access can have touched (the addressed set and, for a compression
  cache, its affiliated set) — so the mirror never claims a false hit.

Bit-identicality holds because the C loop is a statement-for-statement
transcription of the Python fast loop and the Welford recurrences use
the same IEEE-754 double operations in the same order (compiled without
``-ffast-math``, so the compiler may not reassociate them).
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import shutil
import subprocess
import tempfile
from pathlib import Path

import numpy as np

from repro.caches.compression_cache import CompressionCache
from repro.errors import TraceError

__all__ = ["kernel_available", "run_compiled"]

# ---- the kernel ---------------------------------------------------------------

_C_SOURCE = r"""
#include <stdint.h>
#include <stdlib.h>

typedef int64_t (*load_cb_t)(uint32_t addr, int64_t now);
typedef int64_t (*store_cb_t)(uint32_t addr, uint32_t value, int64_t now);

enum {
    P_N, P_ISSUE_W, P_COMMIT_W, P_DECODE_W, P_FETCH_W,
    P_RUU, P_LSQ, P_IFQ, P_MISP_PEN, P_FWD_LAT, P_IDLE_SKIP,
    P_L1_HIT, P_N_SLOTS, P_SET_MASK, P_LINE_SHIFT, P_WIDX_MASK,
    P_HARD_LIMIT,
    /* Trivial-store journal: 0 = off, 1 = conventional cache (any MRU
       hit is trivial), 2 = compression cache with the prefix scheme
       (MRU hit whose compressibility bit is unchanged is trivial). */
    P_TRIVIAL_MODE, P_SMALL_SHIFT, P_SMALL_ONES, P_PTR_SHIFT
};

enum {
    O_ERR, O_NOW, O_COMMITTED, O_STORE_COUNT, O_N_LOADS, O_FWD_LOADS,
    O_N_MISPRED, O_FETCH_STALL, O_MISS_CYCLES, O_ALL_N, O_MISS_N,
    O_UNCOUNTED_STORES, O_ERR_A, O_ERR_B, O_SERVED0
    /* O_SERVED0 .. O_SERVED0+7: per-code load counts */
};

enum { D_ALL_MEAN, D_ALL_M2, D_MISS_MEAN, D_MISS_M2 };

#define IDX_BITS 25
#define IDX_MASK ((1u << IDX_BITS) - 1)

static void heap_push(uint64_t *h, int *hn, uint64_t v) {
    int i = (*hn)++;
    h[i] = v;
    while (i > 0) {
        int p = (i - 1) >> 1;
        if (h[p] <= h[i]) break;
        uint64_t t = h[p]; h[p] = h[i]; h[i] = t;
        i = p;
    }
}

static uint64_t heap_pop(uint64_t *h, int *hn) {
    uint64_t top = h[0];
    int n = --(*hn);
    h[0] = h[n];
    int i = 0;
    for (;;) {
        int l = 2 * i + 1, s = i;
        if (l < n && h[l] < h[s]) s = l;
        if (l + 1 < n && h[l + 1] < h[s]) s = l + 1;
        if (s == i) break;
        uint64_t t = h[s]; h[s] = h[i]; h[i] = t;
        i = s;
    }
    return top;
}

int64_t run_core(
    const int64_t *params,
    const uint8_t *slot_arr, const uint8_t *is_load_arr,
    const int32_t *fwd_arr, const uint32_t *addr_arr,
    const uint32_t *value_arr, const int32_t *lat_arr,
    const int32_t *dep1_arr, const int32_t *dep2_arr,
    const uint8_t *is_mem_arr, const uint8_t *kind_arr,
    const uint8_t *mispred_arr, const int32_t *next_mp_arr,
    const int32_t *cons_start, const int32_t *cons_flat,
    const int32_t *fu_limits,
    /* The MRU mirror and journal counter are rewritten by the Python
       callbacks while this function is on the stack: volatile forbids
       caching them across the callback boundary. */
    volatile const int64_t *mru_line, volatile const uint32_t *mru_pa,
    volatile const uint32_t *mru_vcp,
    uint64_t *journal, volatile int64_t *journal_n,
    load_cb_t load_cb, store_cb_t store_cb,
    int64_t *out_i, double *out_d)
{
    const int64_t n = params[P_N];
    const int64_t issue_w = params[P_ISSUE_W];
    const int64_t commit_w = params[P_COMMIT_W];
    const int64_t decode_w = params[P_DECODE_W];
    const int64_t fetch_w = params[P_FETCH_W];
    const int64_t ruu = params[P_RUU];
    const int64_t lsq = params[P_LSQ];
    const int64_t ifq = params[P_IFQ];
    const int64_t misp_pen = params[P_MISP_PEN];
    const int64_t fwd_lat = params[P_FWD_LAT];
    const int64_t idle_skip = params[P_IDLE_SKIP];
    const int64_t l1_hit = params[P_L1_HIT];
    const int64_t n_slots = params[P_N_SLOTS];
    const int64_t set_mask = params[P_SET_MASK];
    const int64_t line_shift = params[P_LINE_SHIFT];
    const uint32_t widx_mask = (uint32_t)params[P_WIDX_MASK];
    const int64_t hard_limit = params[P_HARD_LIMIT];
    const int64_t trivial_mode = params[P_TRIVIAL_MODE];
    const uint32_t small_shift = (uint32_t)params[P_SMALL_SHIFT];
    const uint32_t small_ones = (uint32_t)params[P_SMALL_ONES];
    const uint32_t ptr_shift = (uint32_t)params[P_PTR_SHIFT];

    uint8_t *state = (uint8_t *)calloc((size_t)n, 1);
    uint8_t *pending = (uint8_t *)calloc((size_t)n, 1);
    uint8_t *missf = (uint8_t *)calloc((size_t)n, 1);
    uint64_t *heap = (uint64_t *)malloc(sizeof(uint64_t) * (size_t)(ruu + 8));
    int64_t *ready = (int64_t *)malloc(sizeof(int64_t) * (size_t)(ruu + 8));
    int32_t fu_free[64];
    int64_t err = 0, err_a = 0, err_b = 0;
    int heap_n = 0, ready_n = 0;
    int64_t i_fetch = 0, disp_end = 0, committed = 0, now = 0;
    int64_t lsq_used = 0, outstanding = 0;
    int fetch_blocked = 0;
    int64_t pending_resume = -1;
    int64_t served[8] = {0, 0, 0, 0, 0, 0, 0, 0};
    int64_t store_count = 0, n_loads = 0, fwd_loads = 0, n_mispred = 0;
    int64_t fetch_stall = 0, miss_cycles = 0, uncounted_stores = 0;
    int64_t all_n = 0, miss_n = 0;
    double all_mean = 0.0, all_m2 = 0.0, miss_mean = 0.0, miss_m2 = 0.0;

    if (!state || !pending || !missf || !heap || !ready || n_slots > 64) {
        err = 4;
        goto done;
    }

    while (committed < n) {
        if (now > hard_limit) { err = 1; err_a = now; err_b = committed; goto done; }

        /* writeback: results arriving this cycle */
        if (heap_n) {
            uint64_t limit = (uint64_t)(now + 1) << IDX_BITS;
            while (heap_n && heap[0] < limit) {
                int64_t idx = (int64_t)(heap_pop(heap, &heap_n) & IDX_MASK);
                state[idx] = 3;
                if (missf[idx]) { outstanding--; missf[idx] = 0; }
                for (int32_t ci = cons_start[idx]; ci < cons_start[idx + 1]; ci++) {
                    int64_t k = cons_flat[ci];
                    if (k < disp_end) {
                        uint8_t p = (uint8_t)(pending[k] - 1);
                        pending[k] = p;
                        if (p == 0) {
                            state[k] = 1;
                            int lo = 0, hi = ready_n;
                            while (lo < hi) {
                                int mid = (lo + hi) >> 1;
                                if (ready[mid] < k) lo = mid + 1; else hi = mid;
                            }
                            for (int j = ready_n; j > lo; j--) ready[j] = ready[j - 1];
                            ready[lo] = k;
                            ready_n++;
                        }
                    }
                }
                if (mispred_arr[idx]) pending_resume = now + misp_pen;
            }
        }

        /* commit: in order, up to commit_width */
        {
            int64_t n_commit = 0;
            while (committed < disp_end && n_commit < commit_w) {
                if (state[committed] != 3) break;
                int64_t idx = committed;
                committed++;
                n_commit++;
                uint8_t kind = kind_arr[idx];
                if (kind) {
                    lsq_used--;
                    if (kind == 2) {
                        uint32_t addr = addr_arr[idx];
                        uint32_t value = value_arr[idx];
                        int trivial = 0;
                        if (trivial_mode) {
                            int64_t ln = (int64_t)(addr >> line_shift);
                            int64_t si = ln & set_mask;
                            uint32_t bit = 1u << ((addr >> 2) & widx_mask);
                            if (mru_line[si] == ln && (mru_pa[si] & bit)) {
                                if (trivial_mode == 1) {
                                    trivial = 1;
                                } else {
                                    uint32_t top = value >> small_shift;
                                    int comp = (top == 0) || (top == small_ones)
                                        || ((value >> ptr_shift)
                                            == (addr >> ptr_shift));
                                    if (comp == ((mru_vcp[si] & bit) != 0))
                                        trivial = 1;
                                }
                            }
                        }
                        if (trivial) {
                            /* Uncounted MRU hit whose only effect is the
                               data word itself; deferred to the journal,
                               drained before the next Python callback. */
                            journal[(*journal_n)++] =
                                ((uint64_t)addr << 32) | (uint64_t)value;
                            uncounted_stores++;
                        } else {
                            int64_t r = store_cb(addr, value, now);
                            if (r < 0) { err = 3; goto done; }
                            if (r) uncounted_stores++;
                        }
                        store_count++;
                    }
                }
            }
        }
        if (committed >= n) break;

        /* issue: oldest-first among READY entries */
        int64_t ready_len = ready_n;
        if (ready_n) {
            for (int64_t s = 0; s < n_slots; s++) fu_free[s] = fu_limits[s];
            int64_t n_issued = 0;
            int kept_n = 0;
            for (int pos = 0; pos < ready_n; pos++) {
                int64_t idx = ready[pos];
                uint8_t sl = slot_arr[idx];
                int32_t avail = fu_free[sl];
                if (avail) {
                    fu_free[sl] = avail - 1;
                    state[idx] = 2;
                    int64_t lat = lat_arr[idx];
                    if (is_load_arr[idx]) {
                        n_loads++;
                        uint32_t addr = addr_arr[idx];
                        if (fwd_arr[idx] >= committed) {
                            fwd_loads++;
                            lat = fwd_lat;
                        } else {
                            int64_t ln = (int64_t)(addr >> line_shift);
                            int64_t si = ln & set_mask;
                            if (mru_line[si] == ln &&
                                ((mru_pa[si] >> ((addr >> 2) & widx_mask)) & 1u)) {
                                lat = l1_hit;
                                served[0]++;
                            } else {
                                int64_t packed = load_cb(addr, now);
                                if (packed < 0) { err = 3; goto done; }
                                served[packed & 7]++;
                                lat = packed >> 3;
                                if (lat < 1) lat = 1;
                            }
                        }
                        if (lat > l1_hit) { missf[idx] = 1; outstanding++; }
                    }
                    heap_push(heap, &heap_n,
                              ((uint64_t)(now + lat) << IDX_BITS) | (uint64_t)idx);
                    n_issued++;
                    if (n_issued >= issue_w) {
                        for (int j = pos + 1; j < ready_n; j++) ready[kept_n++] = ready[j];
                        break;
                    }
                } else {
                    ready[kept_n++] = idx;
                }
            }
            ready_n = kept_n;
        }

        /* metrics sample: same Welford recurrence, same operation order */
        {
            double delta = (double)ready_len - all_mean;
            int64_t total = all_n + 1;
            all_mean += delta / (double)total;
            all_m2 += delta * delta * (double)all_n / (double)total;
            all_n = total;
        }
        if (outstanding > 0) {
            miss_cycles++;
            double delta = (double)ready_len - miss_mean;
            int64_t total = miss_n + 1;
            miss_mean += delta / (double)total;
            miss_m2 += delta * delta * (double)miss_n / (double)total;
            miss_n = total;
        }
        if (fetch_blocked) fetch_stall++;

        /* dispatch: IFQ -> RUU/LSQ */
        int64_t n_disp = 0;
        while (disp_end < i_fetch && n_disp < decode_w
               && disp_end - committed < ruu) {
            int64_t idx = disp_end;
            uint8_t im = is_mem_arr[idx];
            if (im && lsq_used >= lsq) break;
            disp_end++;
            n_disp++;
            int32_t d1 = dep1_arr[idx], d2 = dep2_arr[idx];
            int p = 0;
            if (d1 >= committed && state[d1] != 3) p = 1;
            if (d2 >= committed && state[d2] != 3) p += 1;
            if (p == 0) {
                state[idx] = 1;
                ready[ready_n++] = idx;  /* idx exceeds every queued index */
            } else {
                pending[idx] = (uint8_t)p;
            }
            if (im) lsq_used++;
        }

        /* fetch: fill the IFQ unless redirecting */
        if (fetch_blocked && pending_resume >= 0 && now >= pending_resume) {
            fetch_blocked = 0;
            pending_resume = -1;
        }
        if (!fetch_blocked && i_fetch < n) {
            int64_t room = ifq - (i_fetch - disp_end);
            int64_t take = fetch_w < room ? fetch_w : room;
            if (take > n - i_fetch) take = n - i_fetch;
            if (take > 0) {
                int64_t next_mp = next_mp_arr[i_fetch];
                if (next_mp < i_fetch + take) {
                    i_fetch = next_mp + 1;
                    n_mispred++;
                    fetch_blocked = 1;
                } else {
                    i_fetch += take;
                }
            }
        }

        /* advance the clock, skipping provably idle cycles */
        int64_t next_now = now + 1;
        /* ready_len (pre-issue), not ready_n: a full issue leaves the kept
           list empty, but the reference only treats pre-issue-idle cycles
           as skippable — matching it keeps the Welford gap partitioning
           (and therefore the accumulators' rounding) bit-identical. */
        if (idle_skip && ready_len == 0 && n_disp == 0
            && (committed == disp_end || state[committed] != 3)
            && (disp_end == i_fetch
                || disp_end - committed >= ruu
                || (is_mem_arr[disp_end] && lsq_used >= lsq))
            && (fetch_blocked || i_fetch >= n || i_fetch - disp_end >= ifq)) {
            int64_t skip_to = -1;
            if (heap_n) skip_to = (int64_t)(heap[0] >> IDX_BITS);
            if (fetch_blocked && pending_resume >= 0
                && (skip_to < 0 || pending_resume < skip_to))
                skip_to = pending_resume;
            if (skip_to < 0) { err = 2; err_a = now; err_b = committed; goto done; }
            if (skip_to < next_now) skip_to = next_now;
            int64_t gap = skip_to - next_now;
            if (gap > 0) {
                double delta = 0.0 - all_mean;
                int64_t total = all_n + gap;
                all_mean += delta * (double)gap / (double)total;
                all_m2 += delta * delta * (double)all_n * (double)gap / (double)total;
                all_n = total;
                if (outstanding > 0) {
                    miss_cycles += gap;
                    delta = 0.0 - miss_mean;
                    total = miss_n + gap;
                    miss_mean += delta * (double)gap / (double)total;
                    miss_m2 += delta * delta * (double)miss_n * (double)gap
                               / (double)total;
                    miss_n = total;
                }
                if (fetch_blocked) fetch_stall += gap;
            }
            next_now = skip_to;
        }
        now = next_now;
    }

done:
    free(state);
    free(pending);
    free(missf);
    free(heap);
    free(ready);
    out_i[O_ERR] = err;
    out_i[O_NOW] = now;
    out_i[O_COMMITTED] = committed;
    out_i[O_STORE_COUNT] = store_count;
    out_i[O_N_LOADS] = n_loads;
    out_i[O_FWD_LOADS] = fwd_loads;
    out_i[O_N_MISPRED] = n_mispred;
    out_i[O_FETCH_STALL] = fetch_stall;
    out_i[O_MISS_CYCLES] = miss_cycles;
    out_i[O_ALL_N] = all_n;
    out_i[O_MISS_N] = miss_n;
    out_i[O_UNCOUNTED_STORES] = uncounted_stores;
    out_i[O_ERR_A] = err_a;
    out_i[O_ERR_B] = err_b;
    for (int c = 0; c < 8; c++) out_i[O_SERVED0 + c] = served[c];
    out_d[D_ALL_MEAN] = all_mean;
    out_d[D_ALL_M2] = all_m2;
    out_d[D_MISS_MEAN] = miss_mean;
    out_d[D_MISS_M2] = miss_m2;
    return err;
}
"""

_LOAD_CB = ctypes.CFUNCTYPE(ctypes.c_int64, ctypes.c_uint32, ctypes.c_int64)
_STORE_CB = ctypes.CFUNCTYPE(
    ctypes.c_int64, ctypes.c_uint32, ctypes.c_uint32, ctypes.c_int64
)

# Output-array indices (mirror the C enums).
_O_ERR, _O_NOW, _O_COMMITTED, _O_STORE_COUNT, _O_N_LOADS, _O_FWD_LOADS = range(6)
_O_N_MISPRED, _O_FETCH_STALL, _O_MISS_CYCLES, _O_ALL_N, _O_MISS_N = range(6, 11)
_O_UNCOUNTED_STORES, _O_ERR_A, _O_ERR_B, _O_SERVED0 = range(11, 15)
_OUT_I_LEN = _O_SERVED0 + 8

# ---- build & cache ------------------------------------------------------------

_KERNEL = None
_TRIED = False


def _cache_dir() -> Path:
    override = os.environ.get("REPRO_CKERNEL_DIR")
    if override:
        return Path(override)
    base = os.environ.get("XDG_CACHE_HOME") or os.path.join(
        os.path.expanduser("~"), ".cache"
    )
    return Path(base) / "repro"


def _build() -> ctypes._CFuncPtr | None:
    cc = shutil.which("gcc") or shutil.which("cc")
    if cc is None:
        return None
    digest = hashlib.sha256(_C_SOURCE.encode()).hexdigest()[:16]
    cache = _cache_dir()
    so_path = cache / f"coreloop-{digest}.so"
    if not so_path.exists():
        cache.mkdir(parents=True, exist_ok=True)
        with tempfile.TemporaryDirectory(dir=cache) as td:
            src = Path(td) / "coreloop.c"
            src.write_text(_C_SOURCE)
            built = Path(td) / "coreloop.so"
            # No -ffast-math: the Welford recurrences must stay exact
            # IEEE doubles evaluated in source order.
            result = subprocess.run(
                [cc, "-O2", "-fPIC", "-shared", "-o", str(built), str(src)],
                capture_output=True,
                timeout=120,
            )
            if result.returncode != 0 or not built.exists():
                return None
            os.replace(built, so_path)
    lib = ctypes.CDLL(str(so_path))
    fn = lib.run_core
    fn.restype = ctypes.c_int64
    fn.argtypes = [ctypes.c_void_p] * 21 + [
        _LOAD_CB,
        _STORE_CB,
        ctypes.c_void_p,
        ctypes.c_void_p,
    ]
    return fn


def _get_kernel():
    global _KERNEL, _TRIED
    if not _TRIED:
        _TRIED = True
        if not os.environ.get("REPRO_DISABLE_CKERNEL"):
            try:
                _KERNEL = _build()
            except Exception:
                _KERNEL = None
    return _KERNEL


def kernel_available() -> bool:
    """True when the compiled loop is usable in this process."""
    return _get_kernel() is not None


# ---- invocation ---------------------------------------------------------------


def _c_columns(trace, pre, hot) -> dict:
    cols = pre.c_cols
    if cols is None:
        cols = pre.c_cols = {
            "slot": np.ascontiguousarray(pre.slot, dtype=np.uint8),
            "is_load": np.ascontiguousarray(trace.load_mask, dtype=np.uint8),
            "fwd": np.ascontiguousarray(pre.fwd, dtype=np.int32),
            "addr": np.ascontiguousarray(trace.addr, dtype=np.uint32),
            "value": np.ascontiguousarray(trace.value, dtype=np.uint32),
            "lat": np.ascontiguousarray(hot.latency, dtype=np.int32),
            "dep1": np.ascontiguousarray(pre.dep1, dtype=np.int32),
            "dep2": np.ascontiguousarray(pre.dep2, dtype=np.int32),
            "is_mem": np.ascontiguousarray(trace.mem_mask, dtype=np.uint8),
            "kind": (trace.load_mask + 2 * trace.store_mask).astype(np.uint8),
            "cons_start": np.ascontiguousarray(pre.cons_start, dtype=np.int32),
            "cons_flat": np.ascontiguousarray(pre.cons_flat, dtype=np.int32),
        }
        cols["n_stores"] = int(np.count_nonzero(trace.store_mask))
    return cols


def _c_bp(pre, n_entries: int, mispred, next_mp) -> tuple:
    bp = pre.c_bp.get(n_entries)
    if bp is None:
        bp = pre.c_bp[n_entries] = (
            np.asarray(mispred, dtype=np.uint8),
            np.asarray(next_mp, dtype=np.int32),
        )
    return bp


def run_compiled(
    trace, pre, hot, cfg, l1, fu_limits, mispred, next_mp, hard_limit: int
):
    """Run the compiled loop; returns the tally tuple or ``None``.

    ``None`` means "kernel unavailable" — nothing was executed and the
    caller should run the Python loop. Deadlock/limit conditions raise
    :class:`TraceError` exactly like the Python loop; exceptions from the
    cache model propagate unchanged.
    """
    fn = _get_kernel()
    if fn is None or l1.line_words > 32:
        return None

    n = len(trace)
    cols = _c_columns(trace, pre, hot)
    mp_arr, next_mp_arr = _c_bp(pre, cfg.bimod_entries, mispred, next_mp)

    sets = l1._sets
    set_mask = l1.set_mask
    line_shift = l1.line_shift
    widx_mask = l1.line_words - 1
    n_sets = set_mask + 1
    mru_line = np.full(n_sets, -1, dtype=np.int64)
    mru_pa = np.zeros(n_sets, dtype=np.uint32)
    mru_vcp = np.zeros(n_sets, dtype=np.uint32)
    journal = np.zeros(cols["n_stores"] + 1, dtype=np.uint64)
    journal_n = np.zeros(1, dtype=np.int64)
    exc: list[BaseException] = []
    load_word = l1.load_word
    store_word = l1.store_word

    if type(l1) is CompressionCache:
        pair_mask = l1.policy.mask
        trivial_mode = (
            2 if (l1._prefix_params is not None and l1._pair_in_slot) else 0
        )
        prefix = l1._prefix_params or (0, 0, 0)

        def _drain() -> None:
            # Apply journaled trivial stores (MRU primary hits whose
            # compressibility bit did not change: their only effect is
            # the data word and the dirty flag). Nothing touched the
            # cache since they were journaled, so their frames are still
            # the MRU way of their sets.
            count = journal_n[0]
            if count:
                for packed in journal[:count].tolist():
                    addr = packed >> 32
                    frame = sets[(addr >> line_shift) & set_mask][0]
                    frame.pvals[(addr >> 2) & widx_mask] = packed & 0xFFFFFFFF
                    frame.dirty = True
                journal_n[0] = 0

        def _refresh(ln: int) -> None:
            # The only frames an access can touch live in the addressed
            # set and the affiliated set.
            for probe in (ln, ln ^ pair_mask):
                s = probe & set_mask
                frame = sets[s][0]
                mru_line[s] = frame.line_no
                mru_pa[s] = frame.pa
                mru_vcp[s] = frame.vcp

        def _on_load(addr: int, now: int) -> int:
            try:
                _drain()
                packed = load_word(addr, now)
                _refresh(addr >> line_shift)
                return packed
            except BaseException as e:  # noqa: BLE001 - relayed across C
                exc.append(e)
                return -1

        def _on_store(addr: int, value: int, now: int) -> int:
            try:
                _drain()
                hit = store_word(addr, value, now)
                _refresh(addr >> line_shift)
                return 1 if hit else 0
            except BaseException as e:  # noqa: BLE001 - relayed across C
                exc.append(e)
                return -1

    else:
        full_mask = l1.full_mask
        trivial_mode = 1
        prefix = (0, 0, 0)

        def _drain() -> None:
            count = journal_n[0]
            if count:
                for packed in journal[:count].tolist():
                    addr = packed >> 32
                    line = sets[(addr >> line_shift) & set_mask][0]
                    line.data[(addr >> 2) & widx_mask] = packed & 0xFFFFFFFF
                    line.dirty = True
                journal_n[0] = 0

        def _refresh(ln: int) -> None:
            s = ln & set_mask
            line = sets[s][0]
            if line.valid:
                mru_line[s] = line.line_no
                mru_pa[s] = full_mask
            else:
                mru_line[s] = -1
                mru_pa[s] = 0

        def _on_load(addr: int, now: int) -> int:
            try:
                _drain()
                packed = load_word(addr, now)
                _refresh(addr >> line_shift)
                return packed
            except BaseException as e:  # noqa: BLE001 - relayed across C
                exc.append(e)
                return -1

        def _on_store(addr: int, value: int, now: int) -> int:
            try:
                _drain()
                hit = store_word(addr, value, now)
                if not hit:
                    # An inline store hit mutates only the MRU line's
                    # data words; the mirror keys stay valid (and the
                    # hit itself is journaled C-side, never seen here).
                    _refresh(addr >> line_shift)
                return 1 if hit else 0
            except BaseException as e:  # noqa: BLE001 - relayed across C
                exc.append(e)
                return -1

    params = np.asarray(
        [
            n,
            cfg.issue_width,
            cfg.commit_width,
            cfg.decode_width,
            cfg.fetch_width,
            cfg.ruu_size,
            cfg.lsq_size,
            cfg.ifq_size,
            cfg.mispredict_penalty,
            cfg.forward_latency,
            1 if cfg.enable_idle_skip else 0,
            l1.hit_latency,
            len(fu_limits),
            set_mask,
            line_shift,
            l1.line_words - 1,
            hard_limit,
            trivial_mode,
            prefix[0],
            prefix[1],
            prefix[2],
        ],
        dtype=np.int64,
    )
    fu_arr = np.asarray(fu_limits, dtype=np.int32)
    out_i = np.zeros(_OUT_I_LEN, dtype=np.int64)
    out_d = np.zeros(4, dtype=np.float64)

    load_cb = _LOAD_CB(_on_load)
    store_cb = _STORE_CB(_on_store)
    fn(
        params.ctypes.data,
        cols["slot"].ctypes.data,
        cols["is_load"].ctypes.data,
        cols["fwd"].ctypes.data,
        cols["addr"].ctypes.data,
        cols["value"].ctypes.data,
        cols["lat"].ctypes.data,
        cols["dep1"].ctypes.data,
        cols["dep2"].ctypes.data,
        cols["is_mem"].ctypes.data,
        cols["kind"].ctypes.data,
        mp_arr.ctypes.data,
        next_mp_arr.ctypes.data,
        cols["cons_start"].ctypes.data,
        cols["cons_flat"].ctypes.data,
        fu_arr.ctypes.data,
        mru_line.ctypes.data,
        mru_pa.ctypes.data,
        mru_vcp.ctypes.data,
        journal.ctypes.data,
        journal_n.ctypes.data,
        load_cb,
        store_cb,
        out_i.ctypes.data,
        out_d.ctypes.data,
    )
    _drain()

    err = int(out_i[_O_ERR])
    if err == 3:
        raise exc[0] if exc else TraceError("core callback failed")
    if err == 1:
        raise TraceError(
            f"core exceeded {hard_limit} cycles at instruction "
            f"{int(out_i[_O_ERR_B])}/{n}: probable deadlock"
        )
    if err == 2:
        raise TraceError(
            f"core deadlocked at cycle {int(out_i[_O_ERR_A])} "
            f"({int(out_i[_O_ERR_B])}/{n} committed)"
        )
    if err:
        return None  # allocation failure before any simulation step

    return (
        int(out_i[_O_NOW]),
        int(out_i[_O_COMMITTED]),
        int(out_i[_O_STORE_COUNT]),
        int(out_i[_O_N_LOADS]),
        int(out_i[_O_FWD_LOADS]),
        int(out_i[_O_N_MISPRED]),
        int(out_i[_O_FETCH_STALL]),
        int(out_i[_O_MISS_CYCLES]),
        int(out_i[_O_ALL_N]),
        int(out_i[_O_MISS_N]),
        int(out_i[_O_UNCOUNTED_STORES]),
        [int(c) for c in out_i[_O_SERVED0 : _O_SERVED0 + 8]],
        float(out_d[0]),
        float(out_d[1]),
        float(out_d[2]),
        float(out_d[3]),
    )
