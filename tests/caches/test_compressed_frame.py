"""Unit tests for the CPP physical frame (PA/AA/VCP flag machinery)."""

import pytest

from repro.caches.compressed_frame import CompressedFrame
from repro.errors import CacheProtocolError
from repro.utils.bitmask import mask_bits


def full(n=4, value=0):
    return [value] * n


def mask(bits):
    """Packed mask from a word-order string: char *i* = word *i*."""
    m = 0
    for i, b in enumerate(bits):
        if b == "1":
            m |= 1 << i
    return m


class TestInstall:
    def test_install_primary(self):
        f = CompressedFrame(4)
        f.install_primary(5, full(value=9), mask("1111"), mask("1010"))
        assert f.valid
        assert f.line_no == 5
        assert f.n_primary_words == 4
        assert not f.dirty
        assert not f.aa

    def test_partial_install(self):
        f = CompressedFrame(4)
        f.install_primary(5, full(), mask("1100"), mask("1100"))
        assert f.is_partial
        assert f.n_primary_words == 2

    def test_vcp_clamped_to_avail(self):
        f = CompressedFrame(4)
        f.install_primary(5, full(), mask("1100"), mask("1111"))
        assert f.vcp == mask("1100")

    def test_negative_line_rejected(self):
        f = CompressedFrame(4)
        with pytest.raises(CacheProtocolError):
            f.install_primary(-1, full(), mask("1111"), mask("0000"))

    def test_invalidate_clears_everything(self):
        f = CompressedFrame(4)
        f.install_primary(5, full(), mask("1111"), mask("1111"))
        f.aa |= 1
        f.dirty = True
        f.invalidate()
        assert not f.valid and not f.pa and not f.aa and not f.dirty


class TestSpaceRule:
    def test_slot_free_if_primary_absent(self):
        f = CompressedFrame(4)
        f.install_primary(5, full(), mask("1100"), mask("0000"))
        assert f.can_hold_affiliated(2)  # hole
        assert not f.can_hold_affiliated(0)  # uncompressed primary word

    def test_slot_free_if_primary_compressed(self):
        f = CompressedFrame(4)
        f.install_primary(5, full(), mask("1111"), mask("1010"))
        assert f.can_hold_affiliated(0)
        assert not f.can_hold_affiliated(1)

    def test_set_affiliated_words_enforces_rule(self):
        f = CompressedFrame(4)
        f.install_primary(5, full(), mask("1111"), mask("1010"))
        stored = f.set_affiliated_words(full(value=3), mask("1111"))
        assert stored == 2  # only the compressed-primary slots
        assert f.aa == mask("1010")
        assert mask_bits(f.aa) == [0, 2]
        assert f.avals[0] == 3

    def test_set_affiliated_words_replaces(self):
        f = CompressedFrame(4)
        f.install_primary(5, full(), mask("1111"), mask("1111"))
        f.set_affiliated_words(full(value=1), mask("1111"))
        stored = f.set_affiliated_words(full(value=2), mask("1000"))
        assert stored == 1
        assert f.aa == mask("1000")


class TestLegality:
    def test_legal_frame_passes(self):
        f = CompressedFrame(4)
        f.install_primary(5, full(), mask("1111"), mask("1111"))
        f.aa |= 1 << 1
        f.check_legal()

    def test_aa_over_uncompressed_primary_fails(self):
        f = CompressedFrame(4)
        f.install_primary(5, full(), mask("1111"), mask("0000"))
        f.aa |= 1
        with pytest.raises(CacheProtocolError):
            f.check_legal()

    def test_vcp_without_pa_fails(self):
        f = CompressedFrame(4)
        f.install_primary(5, full(), mask("1100"), mask("1100"))
        f.vcp |= 1 << 3
        with pytest.raises(CacheProtocolError):
            f.check_legal()

    def test_invalid_frame_with_state_fails(self):
        f = CompressedFrame(4)
        f.pa |= 1
        with pytest.raises(CacheProtocolError):
            f.check_legal()
