"""Figure 15 — average ready-queue length in miss cycles.

For the benchmarks with a significant importance reduction, the paper
compares the average number of ready-to-issue instructions during cycles
with at least one outstanding cache miss, CPP versus HAC, reporting
improvements of up to 78 %: under CPP, a miss leaves the pipeline with
more independent work.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.analysis.readyq import ReadyQueueComparison
from repro.errors import ExperimentError
from repro.experiments.common import GEOMEAN, ExperimentOutput, average, resolve_workloads
from repro.sim import fault as _fault

__all__ = ["run", "FIGURE", "TITLE"]

FIGURE = "fig15"
TITLE = "Average ready-queue length in outstanding-miss cycles (CPP vs HAC)"


def run(
    workloads: Sequence[str] | None = None,
    *,
    seed: int = 1,
    scale: float = 1.0,
    baseline_config: str = "HAC",
    test_config: str = "CPP",
) -> ExperimentOutput:
    """Regenerate this figure over *workloads* (default: all fourteen).

    Cells are fetched through :func:`repro.sim.fault.try_cell`: if either
    side of a workload's (baseline, test) pair failed, the row renders as
    an explicit hole instead of aborting the figure.
    """
    if baseline_config.upper() == test_config.upper():
        raise ExperimentError("baseline and test configurations must differ")
    names = resolve_workloads(workloads)
    rows: list[list[object]] = []
    uplift: dict[str, float] = {}
    for workload in names:
        base = _fault.try_cell(workload, baseline_config, seed=seed, scale=scale)
        test = _fault.try_cell(workload, test_config, seed=seed, scale=scale)
        if base is None or test is None:
            rows.append([workload, None, None, None])
            continue
        cmp_ = ReadyQueueComparison(
            workload=workload,
            baseline_config=baseline_config.upper(),
            test_config=test_config.upper(),
            baseline_length=base.ready_queue_in_miss_cycles,
            test_length=test.ready_queue_in_miss_cycles,
        )
        uplift[workload] = cmp_.uplift_percent
        rows.append(
            [
                workload,
                round(cmp_.baseline_length, 3),
                round(cmp_.test_length, 3),
                round(cmp_.uplift_percent, 1),
            ]
        )
    overall = average({k: v for k, v in uplift.items() if k != GEOMEAN})
    if overall is not None:
        uplift[GEOMEAN] = overall
    rows.append(
        ["average", "", "", None if overall is None else round(overall, 1)]
    )
    return ExperimentOutput(
        figure=FIGURE,
        title=TITLE,
        headers=[
            "workload",
            f"{baseline_config} ready-queue",
            f"{test_config} ready-queue",
            "uplift %",
        ],
        rows=rows,
        series={"ready-queue uplift %": uplift},
        unit="%",
        paper_reference=(
            "Figure 15: the ready-queue length during miss cycles improves "
            "by up to 78% under CPP relative to HAC."
        ),
    )
