"""The fourteen named workloads of the evaluation.

The paper evaluates "a spectrum of programs from Olden, SPEC2000, and
SPEC95" (fourteen bars per figure). We register one synthetic counterpart
per program family we could identify from the figures and text
(olden.health, spec95.130.li and spec2000.300.twolf are named explicitly;
the rest follow each suite's canonical members).
"""

from __future__ import annotations

from repro.errors import WorkloadError
from repro.workloads.base import Program, Workload
from repro.workloads.olden import (
    bisort,
    em3d,
    health,
    mst,
    perimeter,
    power,
    treeadd,
    tsp,
)
from repro.workloads.spec import (
    compress95,
    go95,
    gzip00,
    ijpeg95,
    li95,
    mcf00,
    parser00,
    twolf00,
    vortex95,
    vpr00,
)

__all__ = [
    "WORKLOADS",
    "WORKLOAD_NAMES",
    "EXTRA_WORKLOADS",
    "ALL_WORKLOADS",
    "get_workload",
    "generate",
    "GENERATOR_VERSION",
]


def _w(name: str, suite: str, module, description: str) -> Workload:
    return Workload(
        name=name, suite=suite, description=description, factory=module.build
    )


WORKLOADS: dict[str, Workload] = {
    w.name: w
    for w in (
        _w("olden.bisort", "olden", bisort, "bitonic sort over a value tree"),
        _w("olden.em3d", "olden", em3d, "E/H field relaxation on a bipartite graph"),
        _w("olden.health", "olden", health, "patient lists with malloc/free churn"),
        _w("olden.mst", "olden", mst, "Prim's MST over linked adjacency"),
        _w("olden.perimeter", "olden", perimeter, "quadtree region perimeter"),
        _w("olden.treeadd", "olden", treeadd, "recursive binary-tree sum"),
        _w("olden.tsp", "olden", tsp, "closest-point tour construction"),
        _w("spec95.099.go", "spec95", go95, "board scans + liberty flood fill"),
        _w("spec95.129.compress", "spec95", compress95, "LZW hash-table loop"),
        _w("spec95.130.li", "spec95", li95, "cons-cell eval + mark/sweep GC"),
        _w("spec95.132.ijpeg", "spec95", ijpeg95, "blocked integer DCT"),
        _w("spec2000.175.vpr", "spec2000", vpr00, "maze routing on a grid"),
        _w("spec2000.181.mcf", "spec2000", mcf00, "network-simplex arc pricing"),
        _w("spec2000.300.twolf", "spec2000", twolf00, "annealing cell placement"),
    )
}

WORKLOAD_NAMES: tuple[str, ...] = tuple(WORKLOADS)

#: Additional workloads beyond the paper's fourteen (library extensions;
#: not part of the regenerated figures, which must match the paper's set).
EXTRA_WORKLOADS: dict[str, Workload] = {
    w.name: w
    for w in (
        _w("olden.power", "olden", power, "power-tree up/down sweeps"),
        _w("spec95.147.vortex", "spec95", vortex95, "object-store transactions"),
        _w("spec2000.164.gzip", "spec2000", gzip00, "LZ77 hash-chain matching"),
        _w("spec2000.197.parser", "spec2000", parser00, "BST dictionary + churn"),
    )
}

ALL_WORKLOADS: dict[str, Workload] = {**WORKLOADS, **EXTRA_WORKLOADS}


def get_workload(name: str) -> Workload:
    """Look up a workload (evaluated or extra) by its registry name."""
    try:
        return ALL_WORKLOADS[name]
    except KeyError:
        raise WorkloadError(
            f"unknown workload {name!r}; available: {', '.join(ALL_WORKLOADS)}"
        ) from None


#: Version stamp of the workload generators as a whole. Any change that
#: alters the instruction stream a generator emits for a given
#: (workload, seed, scale) MUST bump this — it is part of the on-disk
#: program-cache key (see :func:`repro.isa.traceio.program_cache_path`),
#: so stale archives are simply never looked up again.
GENERATOR_VERSION = "1"


def generate(name: str, *, seed: int = 1, scale: float = 1.0) -> Program:
    """Generate a named workload's program."""
    return get_workload(name).generate(seed, scale)
