"""Tests for the lockstep differential runner (repro.check.diff).

The runner's job is to *notice* protocol bugs. These tests verify both
directions: the real models agree with the naive reference on seeded
random streams (no false positives), and a deliberately planted protocol
bug — a store that leaves a stale affiliated copy behind, violating the
primary-priority rule of §3.3 — is detected and minimized to a tiny
reproducer (no false negatives).
"""

import random

import pytest

from repro.caches.compression_cache import CompressionCache
from repro.caches.hierarchy import CONFIG_NAMES
from repro.check.diff import DifferentialRunner, Op, program_stream, random_stream
from repro.compression.scheme import PAPER_SCHEME

from tests.conftest import TINY_PARAMS

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[2] / "tools"))
from fuzz_cache import fuzz_regions, seeded_image_factory, tiny_params  # noqa: E402


def make_runner(config, seed=7):
    params = tiny_params(PAPER_SCHEME)
    factory = seeded_image_factory(seed, fuzz_regions(), PAPER_SCHEME)
    return DifferentialRunner(config, factory, params)


def stream(seed=7, n=150):
    rng = random.Random(seed)
    return random_stream(rng, n, fuzz_regions(), scheme=PAPER_SCHEME)


class TestOpAndStreams:
    def test_op_repr_and_equality(self):
        a = Op(True, 0x1000, 5)
        assert a == Op(True, 0x1000, 5)
        assert a != Op(False, 0x1000)
        assert "store" in repr(a) and "load" in repr(Op(False, 0x1000))

    def test_random_stream_is_deterministic(self):
        assert stream(3) == stream(3)
        assert stream(3) != stream(4)

    def test_random_stream_stays_in_regions(self):
        regions = fuzz_regions()
        lo = min(base for base, _ in regions)
        hi = max(base + 4 * n for base, n in regions)
        for op in stream(11, 300):
            assert lo <= op.addr < hi
            assert op.addr % 4 == 0

    def test_program_stream_covers_loads_and_stores(self):
        from repro.workloads.registry import generate

        program = generate("olden.mst", seed=1, scale=0.02)
        ops = program_stream(program)
        assert any(op.write for op in ops)
        assert any(not op.write for op in ops)


class TestAgreement:
    @pytest.mark.parametrize("config", CONFIG_NAMES)
    def test_real_matches_reference_on_random_streams(self, config):
        runner = make_runner(config)
        divergence = runner.run(stream(n=200))
        assert divergence is None, divergence.describe()

    def test_agreement_survives_the_audit_layer(self):
        runner = make_runner("CPP")
        assert runner.run(stream(n=80), audit=True) is None

    def test_minimize_rejects_a_clean_stream(self):
        runner = make_runner("CPP")
        with pytest.raises(ValueError):
            runner.minimize(stream(n=20))


def plant_stale_affiliated_bug(monkeypatch):
    """Reintroduce the §3.3 bug: a store that turns its word incompressible
    forgets to evict the affiliated word sharing the slot."""
    orig = CompressionCache._cpu_write

    def buggy(self, frame, widx, addr, value):
        before_aa = frame.aa
        before_drops = self.stats.dropped_affiliated_words
        orig(self, frame, widx, addr, value)
        frame.aa = before_aa  # resurrect the dropped word: stale AA copy
        self.stats.dropped_affiliated_words = before_drops

    monkeypatch.setattr(CompressionCache, "_cpu_write", buggy)


class TestDetection:
    def test_planted_stale_affiliated_copy_is_detected(self, monkeypatch):
        plant_stale_affiliated_bug(monkeypatch)
        runner = make_runner("CPP")
        divergence = runner.run(stream(n=200))
        assert divergence is not None
        assert divergence.config == "CPP"
        assert divergence.describe()

    def test_planted_bug_minimizes_to_a_tiny_reproducer(self, monkeypatch):
        plant_stale_affiliated_bug(monkeypatch)
        runner = make_runner("CPP")
        ops = stream(n=200)
        minimal, final = runner.minimize(ops)
        assert len(minimal) <= 5
        assert runner.run(minimal) is not None
        assert final.index < len(minimal) or final.op is None

    def test_audit_turns_the_planted_bug_into_an_invariant_violation(
        self, monkeypatch
    ):
        # The stale copy occupies a slot its (now incompressible) primary
        # word needs — the space-rule audit fires on the real side only,
        # surfacing as an exception divergence.
        plant_stale_affiliated_bug(monkeypatch)
        runner = make_runner("CPP")
        divergence = runner.run(stream(n=200), audit=True)
        assert divergence is not None
        assert divergence.where == "exception"
        assert "InvariantViolation" in repr(divergence.real)
        assert divergence.ref is None or divergence.ref == "None"

    def test_exception_on_either_side_is_a_divergence(self, monkeypatch):
        boom = RuntimeError("injected")

        def exploding(self, *args, **kwargs):
            raise boom

        monkeypatch.setattr(CompressionCache, "access", exploding)
        runner = make_runner("CPP")
        divergence = runner.run(stream(n=5))
        assert divergence is not None
        assert divergence.where == "exception"
        assert "injected" in repr(divergence.real)
