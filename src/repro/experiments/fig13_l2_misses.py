"""Figure 13 — comparison of L2 cache misses (normalized to BC).

CPP halves L2 demand misses on compressible workloads because every fill
brings the affiliated line's compressible words along for free.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.experiments._matrix import normalized_comparison
from repro.experiments.common import ExperimentOutput

__all__ = ["run", "FIGURE", "TITLE"]

FIGURE = "fig13"
TITLE = "L2 cache misses normalized to BC"


def run(
    workloads: Sequence[str] | None = None,
    *,
    seed: int = 1,
    scale: float = 1.0,
) -> ExperimentOutput:
    """Regenerate this figure over *workloads* (default: all fourteen)."""
    return normalized_comparison(
        figure=FIGURE,
        title=TITLE,
        metric=lambda r: float(r.l2.misses),
        workloads=workloads,
        seed=seed,
        scale=scale,
        paper_reference=(
            "Figure 13: prefetching reduces L2 misses vs BC; BCP sometimes "
            "beats CPP here thanks to its larger (32-entry) L2 buffer."
        ),
        notes=(
            "BCP's L2 *demand* misses approach zero in our runs: the L1 "
            "prefetcher's supplies intercept would-be demand fetches, and "
            "per the paper's rule buffer-satisfied accesses are not misses. "
            "The prefetch transfers still appear in full in Figure 10."
        ),
    )
