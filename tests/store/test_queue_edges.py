"""Concurrency edges of the campaign queue: races, reopen, claim bounds.

Satellites of the resilient-service PR: the behaviors the service's
supervisor and workers lean on hardest, pinned down in isolation —
single-winner reclaim under a real race, done-markers withdrawn after
quarantine, and the ``max_claims`` circuit breaker parking crash-looping
cells. The exactly-once proof runs racing drainers against one queue and
audits ``compute.log``.
"""

from __future__ import annotations

import os
import threading
import time

from repro.store.queue import CampaignQueue
from store_helpers import identity_store, sample_payload


def _queue(tmp_path, **kwargs) -> CampaignQueue:
    kwargs.setdefault("lease_ttl", 60.0)
    return CampaignQueue(tmp_path / "queue", "edges", **kwargs)


def _backdate(path, seconds: float) -> None:
    past = time.time() - seconds
    os.utime(path, (past, past))


def test_two_workers_race_one_expired_lease(tmp_path):
    """Exactly one of two simultaneous claimers wins an expired lease."""
    queue = _queue(tmp_path, lease_ttl=5.0)
    queue.enqueue(("cell", 1), ("task", 1))
    job = queue.claim("w-dead")
    assert job is not None
    _backdate(queue._lease_path(job.digest), 3600)

    barrier = threading.Barrier(2)
    wins: list = [None, None]

    def racer(i: int) -> None:
        barrier.wait()
        wins[i] = _queue(tmp_path, lease_ttl=5.0).claim(f"w-{i}")

    threads = [threading.Thread(target=racer, args=(i,)) for i in range(2)]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=30)
    winners = [w for w in wins if w is not None]
    assert len(winners) == 1, f"expected one winner, got {wins}"
    # attempt == 2 when the winner reclaimed the expired lease itself;
    # 1 when it slipped in right after the loser's reclaim-rename (the
    # dead worker's lease then reads as released, not expired). Either
    # way the single-winner rename kept the claim exclusive:
    assert winners[0].attempt in (1, 2)
    loser = 1 - wins.index(winners[0])
    assert wins[loser] is None
    # ... and the job stays unclaimable while the winner's lease lives.
    assert _queue(tmp_path, lease_ttl=5.0).claim("w-late") is None


def test_done_marker_withdrawn_after_quarantine(tmp_path):
    """reopen() makes a completed cell computable again, exactly once."""
    store = identity_store(tmp_path / "store")
    queue = CampaignQueue(store.root / "queue", "edges")
    key = ("cell", "q")
    queue.enqueue(key, ("task", "q"))
    job = queue.claim("w-1")
    store.put(key, sample_payload())
    queue.complete(job, worker="w-1")
    assert queue.drained()
    assert not queue.enqueue(key, ("task", "q"))  # done marker blocks it

    # The record rots on disk; verify-on-read quarantines it.
    path, _ = next(iter(store.records()))
    path.write_text(path.read_text().replace("cycles", "cycle$"))
    assert store.get(key) is None
    assert store.quarantined_count() == 1

    # The promise the marker made is now false: withdraw and recompute.
    assert queue.reopen(key)
    assert not queue.reopen(key)  # idempotent: only one marker to drop
    assert not queue.drained()
    # The job file never left the queue; dropping the marker alone makes
    # the cell claimable again (enqueue reports it as already present).
    assert not queue.enqueue(key, ("task", "q"))
    job = queue.claim("w-2")
    assert job is not None and job.attempt == 1
    store.put(key, sample_payload())
    queue.complete(job, worker="w-2")
    assert queue.drained()
    assert store.get(key) == sample_payload()


def test_crash_looping_cell_hits_claims_bound(tmp_path):
    """A cell that kills every claimer parks as failed, campaign drains."""
    queue = _queue(tmp_path, lease_ttl=5.0, max_claims=3)
    queue.enqueue(("cell", "loop"), ("task", "loop"))
    for n in range(1, 4):
        job = queue.claim(f"w-{n}")
        assert job is not None and job.attempt == n
        # The claimer "crashes": its lease goes stale, never released.
        _backdate(queue._lease_path(job.digest), 3600)
    # The next claim refuses the job and writes the failure marker.
    assert queue.claim("w-last") is None
    [record] = queue.failed_records()
    assert record["kind"] == "reclaim_limit"
    assert record["attempts"] == 3
    assert queue.drained()
    assert queue.snapshot()["failed"] == 1


def test_racing_drainers_compute_each_cell_exactly_once(tmp_path):
    """Two drain loops over one queue; compute.log shows no doubles."""
    store = identity_store(tmp_path / "store")
    queue_root = store.root / "queue"
    keys = [("cell", n) for n in range(12)]
    queue = CampaignQueue(queue_root, "edges")
    for n, key in enumerate(keys):
        queue.enqueue(key, ("task", n))

    def drain(worker: str) -> None:
        q = CampaignQueue(queue_root, "edges")
        while True:
            job = q.claim(worker)
            if job is None:
                if q.drained():
                    return
                time.sleep(0.005)
                continue
            if store.get(job.key) is None:
                if store.put(job.key, sample_payload(int(job.key[1]))):
                    store.log_compute(job.key, worker)
            q.complete(job, worker=worker)

    threads = [
        threading.Thread(target=drain, args=(f"w-{i}",)) for i in range(2)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=60)
    assert queue.drained()
    computed = [tuple(e["key"]) for e in store.compute_log()]
    assert sorted(computed) == sorted(keys)  # every cell once, none twice
    assert len(set(computed)) == len(computed)
    for key in keys:
        assert store.get(key) is not None


def test_max_claims_respects_service_retry_expire(tmp_path):
    """Worker-style expire() retries burn claims; the bound still holds."""
    queue = _queue(tmp_path, lease_ttl=5.0, max_claims=2)
    queue.enqueue(("cell", "retry"), ("task", "retry"))
    job = queue.claim("w-1")
    assert job.attempt == 1
    # The worker's retry path: expire its own lease instead of release,
    # so the claim count survives the handover.
    assert queue.expire(job.digest, worker="w-1")
    job = queue.claim("w-1")
    assert job.attempt == 2
    assert queue.expire(job.digest, worker="w-1")
    assert queue.claim("w-1") is None  # bound hit: parked as failed
    [record] = queue.failed_records()
    assert record["kind"] == "reclaim_limit"
