"""Three-C miss classification: compulsory / capacity / conflict.

The paper's analysis leans on *which* misses dominate: "if conflict
misses are dominant ... CPP performs better than BCP" (§4.3, naming
olden.health and spec2000.300.twolf). This module measures that claim
with the classic three-simulation method (Hill):

* **compulsory** — misses of an infinite cache (first touch of a line);
* **capacity** — additional misses of a *fully-associative* LRU cache of
  the same size;
* **conflict** — the remainder: additional misses of the real
  (set-associative/direct-mapped) organization.

The classification runs on the trace's memory-access stream directly —
it is a property of the reference stream and one cache geometry, not of
the surrounding hierarchy.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.isa.trace import Trace
from repro.utils.intmath import is_pow2, log2i

__all__ = ["MissBreakdown", "classify_misses"]


@dataclass(frozen=True)
class MissBreakdown:
    """Counts of the three miss classes for one (stream, geometry) pair."""

    accesses: int
    compulsory: int
    capacity: int
    conflict: int

    @property
    def total(self) -> int:
        return self.compulsory + self.capacity + self.conflict

    @property
    def miss_rate(self) -> float:
        return self.total / self.accesses if self.accesses else 0.0

    def fraction(self, kind: str) -> float:
        """Share of all misses in one class ('compulsory'...'conflict')."""
        value = getattr(self, kind)
        return value / self.total if self.total else 0.0

    @property
    def conflict_dominated(self) -> bool:
        """The §4.3 predicate: conflicts are the largest avoidable class."""
        return self.conflict > self.capacity and self.conflict > 0


def _simulate_fully_associative(line_nos: list[int], n_lines: int) -> int:
    """Miss count of a fully-associative LRU cache of *n_lines* lines."""
    lru: OrderedDict[int, None] = OrderedDict()
    misses = 0
    for line_no in line_nos:
        if line_no in lru:
            lru.move_to_end(line_no)
        else:
            misses += 1
            if len(lru) >= n_lines:
                lru.popitem(last=False)
            lru[line_no] = None
    return misses


def _simulate_set_associative(
    line_nos: list[int], n_sets: int, assoc: int
) -> int:
    """Miss count of a set-associative LRU cache."""
    sets: list[OrderedDict[int, None]] = [OrderedDict() for _ in range(n_sets)]
    mask = n_sets - 1
    misses = 0
    for line_no in line_nos:
        ways = sets[line_no & mask]
        if line_no in ways:
            ways.move_to_end(line_no)
        else:
            misses += 1
            if len(ways) >= assoc:
                ways.popitem(last=False)
            ways[line_no] = None
    return misses


def classify_misses(
    trace: Trace,
    *,
    size_bytes: int = 8 * 1024,
    assoc: int = 1,
    line_bytes: int = 64,
) -> MissBreakdown:
    """Classify the data-cache misses of *trace* for one cache geometry."""
    if not (is_pow2(size_bytes) and is_pow2(line_bytes)) or assoc < 1:
        raise ConfigurationError("geometry must use power-of-two sizes")
    n_lines = size_bytes // line_bytes
    if n_lines < assoc or n_lines % assoc:
        raise ConfigurationError("size, line and associativity are inconsistent")
    shift = log2i(line_bytes)
    addrs = trace.addr[trace.mem_mask]
    line_nos = [int(a) >> shift for a in addrs]

    compulsory = len(set(line_nos))
    full_misses = _simulate_fully_associative(line_nos, n_lines)
    real_misses = _simulate_set_associative(line_nos, n_lines // assoc, assoc)

    capacity = max(0, full_misses - compulsory)
    conflict = max(0, real_misses - full_misses)
    return MissBreakdown(
        accesses=len(line_nos),
        compulsory=compulsory,
        capacity=capacity,
        conflict=conflict,
    )
