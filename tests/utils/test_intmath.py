"""Unit tests for integer-math helpers."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.utils.intmath import align_down, align_up, ceil_div, is_pow2, log2i


class TestIsPow2:
    @pytest.mark.parametrize("n", [1, 2, 4, 64, 4096, 1 << 30])
    def test_powers(self, n):
        assert is_pow2(n)

    @pytest.mark.parametrize("n", [0, -1, -4, 3, 6, 12, 100])
    def test_non_powers(self, n):
        assert not is_pow2(n)


class TestLog2i:
    @pytest.mark.parametrize("n,expected", [(1, 0), (2, 1), (64, 6), (4096, 12)])
    def test_exact(self, n, expected):
        assert log2i(n) == expected

    @pytest.mark.parametrize("n", [0, 3, 12, -8])
    def test_rejects_non_power(self, n):
        with pytest.raises(ValueError):
            log2i(n)


class TestAlign:
    def test_align_up(self):
        assert align_up(0, 8) == 0
        assert align_up(1, 8) == 8
        assert align_up(8, 8) == 8
        assert align_up(9, 8) == 16

    def test_align_down(self):
        assert align_down(7, 8) == 0
        assert align_down(8, 8) == 8
        assert align_down(15, 8) == 8

    def test_alignment_must_be_pow2(self):
        with pytest.raises(ValueError):
            align_up(4, 6)
        with pytest.raises(ValueError):
            align_down(4, 0)

    @given(st.integers(min_value=0, max_value=1 << 40),
           st.sampled_from([1, 2, 4, 8, 64, 4096]))
    def test_align_properties(self, value, alignment):
        up = align_up(value, alignment)
        down = align_down(value, alignment)
        assert up % alignment == 0
        assert down % alignment == 0
        assert down <= value <= up
        assert up - down in (0, alignment)


class TestCeilDiv:
    @pytest.mark.parametrize(
        "a,b,expected", [(0, 4, 0), (1, 4, 1), (4, 4, 1), (5, 4, 2), (31, 32, 1)]
    )
    def test_values(self, a, b, expected):
        assert ceil_div(a, b) == expected

    def test_rejects_bad_divisor(self):
        with pytest.raises(ValueError):
            ceil_div(4, 0)

    @given(st.integers(min_value=0, max_value=10**9),
           st.integers(min_value=1, max_value=10**6))
    def test_matches_float_ceil(self, a, b):
        assert ceil_div(a, b) == -(-a // b)
