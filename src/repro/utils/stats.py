"""Lightweight statistics primitives used across the simulator.

These are deliberately simple mutable accumulators: the simulator's inner
loops bump them millions of times, so they avoid per-event allocation.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

__all__ = ["Counter", "RunningMean", "Histogram"]


@dataclass
class Counter:
    """A named monotonically non-decreasing event counter."""

    name: str
    value: int = 0

    def inc(self, by: int = 1) -> None:
        """Increase the counter by *by* (non-negative)."""
        if by < 0:
            raise ValueError("Counter can only increase")
        self.value += by

    def reset(self) -> None:
        """Zero the counter."""
        self.value = 0

    def __int__(self) -> int:
        return self.value

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Counter({self.name}={self.value})"


@dataclass
class RunningMean:
    """Streaming mean / variance (Welford) without storing samples."""

    count: int = 0
    _mean: float = 0.0
    _m2: float = 0.0

    def add(self, x: float, weight: int = 1) -> None:
        """Add *x* to the stream *weight* times (weight must be >= 1)."""
        if weight < 1:
            raise ValueError("weight must be a positive integer")
        for _ in range(weight):
            self.count += 1
            delta = x - self._mean
            self._mean += delta / self.count
            self._m2 += delta * (x - self._mean)

    def add_bulk(self, x: float, weight: int) -> None:
        """Weighted add in O(1); used when many identical samples arrive.

        Equivalent to ``add(x, weight)`` but without the per-sample loop;
        exact for the mean, and uses the standard parallel-variance merge
        for the second moment.
        """
        if weight < 1:
            raise ValueError("weight must be a positive integer")
        n_a, n_b = self.count, weight
        delta = x - self._mean
        total = n_a + n_b
        self._mean += delta * n_b / total
        # Block of identical values has zero internal variance.
        self._m2 += delta * delta * n_a * n_b / total
        self.count = total

    @property
    def mean(self) -> float:
        return self._mean if self.count else 0.0

    @property
    def variance(self) -> float:
        return self._m2 / self.count if self.count else 0.0

    @property
    def stddev(self) -> float:
        return math.sqrt(self.variance)


@dataclass
class Histogram:
    """Integer-valued histogram with a dict backing store.

    Suited to small-domain quantities such as ready-queue lengths or
    per-line compressible-word counts.
    """

    counts: dict[int, int] = field(default_factory=dict)

    def add(self, value: int, weight: int = 1) -> None:
        """Add *weight* occurrences of *value*."""
        if weight < 0:
            raise ValueError("weight must be non-negative")
        if weight:
            self.counts[value] = self.counts.get(value, 0) + weight

    @property
    def total(self) -> int:
        return sum(self.counts.values())

    @property
    def mean(self) -> float:
        total = self.total
        if not total:
            return 0.0
        return sum(v * c for v, c in self.counts.items()) / total

    def percentile(self, p: float) -> int:
        """Smallest value v such that at least p% of mass is <= v."""
        if not 0 <= p <= 100:
            raise ValueError("percentile must be in [0, 100]")
        total = self.total
        if not total:
            raise ValueError("percentile of an empty histogram")
        threshold = total * p / 100.0
        seen = 0
        for value in sorted(self.counts):
            seen += self.counts[value]
            if seen >= threshold:
                return value
        return max(self.counts)

    def merge(self, other: "Histogram") -> None:
        """Fold the mass of *other* into this histogram."""
        for value, count in other.counts.items():
            self.add(value, count)
