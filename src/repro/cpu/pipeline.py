"""Cycle-level out-of-order core (reduced ``sim-outorder``).

Pipeline shape per cycle: *writeback → commit → issue → dispatch → fetch*,
with single-cycle stage visibility, so a latency-1 producer feeds a
dependent instruction on the next cycle, exactly one per cycle along a
dependence chain — the property that makes pointer-chasing loads serialize
and gives cache misses their "importance" (paper §4.4).

Modeling decisions (uniform across all cache configurations, so relative
comparisons are preserved):

* trace-driven, non-speculative execution: a mispredicted branch stalls
  fetch until it executes plus a fixed redirect penalty — the paper's
  Figure 14 methodology explicitly runs "without speculative execution";
* oracle memory disambiguation with store-to-load forwarding: a load
  whose address matches an older in-flight store takes the store's value
  at forwarding latency and does not touch the cache (a store-buffer hit);
* stores write the cache at commit through a non-blocking write buffer
  (commit does not stall on store misses, but all state/traffic effects
  of the write-allocate fill are applied);
* idle-cycle skipping: when no stage can make progress the clock jumps to
  the next completion event — a pure speedup with identical timing.
"""

from __future__ import annotations

import heapq
from collections import deque
from dataclasses import dataclass, field

from repro.caches.hierarchy import Hierarchy
from repro.cpu.branch import BimodPredictor
from repro.cpu.metrics import CoreMetrics
from repro.cpu.resources import FuCounts, FuPool
from repro.cpu.ruu import EntryState, RUUEntry
from repro.errors import ConfigurationError, TraceError
from repro.isa.opcodes import EXEC_LATENCY, OpClass
from repro.isa.trace import Trace
from repro.obs import metrics as _metrics
from repro.obs import tracer as _trace

__all__ = ["CoreConfig", "CoreResult", "OutOfOrderCore"]


@dataclass(frozen=True)
class CoreConfig:
    """Core parameters; defaults reproduce the paper's Figure 9 machine."""

    fetch_width: int = 4
    decode_width: int = 4
    issue_width: int = 4
    commit_width: int = 4
    ifq_size: int = 16
    ruu_size: int = 16
    lsq_size: int = 8
    fu: FuCounts = field(default_factory=FuCounts)
    bimod_entries: int = 2048
    mispredict_penalty: int = 3
    forward_latency: int = 1
    #: Jump the clock over provably idle cycles. Pure speedup: the cycle
    #: counts are identical either way (property-tested), so this exists
    #: only to make that claim checkable.
    enable_idle_skip: bool = True
    #: Model the instruction cache (paper Figure 9: 8 KB, 1-cycle hit,
    #: 10-cycle miss). Off by default: the synthetic kernels' static code
    #: fits any realistic I-cache, so the model verifiably changes nothing
    #: (see tests/cpu/test_icache.py) and only costs simulation time.
    icache_enabled: bool = False
    icache_size: int = 8 * 1024
    icache_line: int = 64
    icache_miss_latency: int = 10

    def __post_init__(self) -> None:
        for name in (
            "fetch_width",
            "decode_width",
            "issue_width",
            "commit_width",
            "ifq_size",
            "ruu_size",
            "lsq_size",
            "mispredict_penalty",
            "forward_latency",
        ):
            if getattr(self, name) < 1 and name != "mispredict_penalty":
                raise ConfigurationError(f"{name} must be positive")
        if self.mispredict_penalty < 0:
            raise ConfigurationError("mispredict_penalty must be non-negative")


@dataclass
class CoreResult:
    """Outcome of running one trace to completion."""

    cycles: int
    metrics: CoreMetrics
    branch_lookups: int
    branch_mispredicts: int

    @property
    def ipc(self) -> float:
        return self.metrics.ipc


class _VerifyError(TraceError):
    """A load returned a value different from the trace's recorded value."""


class OutOfOrderCore:
    """The 4-issue out-of-order core over a cache hierarchy."""

    def __init__(
        self,
        hierarchy: Hierarchy,
        config: CoreConfig | None = None,
        *,
        verify_loads: bool = False,
    ) -> None:
        self.hierarchy = hierarchy
        self.config = config if config is not None else CoreConfig()
        self.verify_loads = verify_loads
        self.predictor = BimodPredictor(self.config.bimod_entries)

    # The run loop reads trace columns directly (int conversions once per
    # instruction) instead of materializing Instruction objects: the loop
    # is the simulator's hot path.
    def run(self, trace: Trace) -> CoreResult:
        """Execute *trace* to completion; returns cycles and metrics."""
        cfg = self.config
        hier = self.hierarchy
        metrics = CoreMetrics()
        n = len(trace)
        if n == 0:
            return CoreResult(0, metrics, 0, 0)

        t_op = trace.op
        t_pc = trace.pc
        t_dest = trace.dest
        t_src1 = trace.src1
        t_src2 = trace.src2
        t_addr = trace.addr
        t_value = trace.value
        t_taken = trace.taken

        ifq: deque[tuple[int, bool]] = deque()  # (trace index, mispredicted)
        rob: deque[RUUEntry] = deque()
        reg_producer: dict[int, RUUEntry] = {}
        completions: list[tuple[int, int, RUUEntry]] = []  # (cycle, seq, entry)
        seq = 0
        fu = FuPool(cfg.fu)

        i_fetch = 0
        committed = 0
        now = 0
        lsq_used = 0
        outstanding_misses = 0
        fetch_blocked = False
        pending_resume: int | None = None
        icache = None
        if cfg.icache_enabled:
            from repro.cpu.icache import SimpleICache

            icache = SimpleICache(
                size_bytes=cfg.icache_size,
                line_bytes=cfg.icache_line,
                miss_latency=cfg.icache_miss_latency,
            )
        icache_stall_until = 0
        l1_hit_latency = getattr(hier.l1, "hit_latency", 1)
        if hasattr(hier.l1, "cache"):  # PrefetchingCache facade
            l1_hit_latency = hier.l1.cache.hit_latency

        mem_op_load = int(OpClass.LOAD)
        mem_op_store = int(OpClass.STORE)
        br_op = int(OpClass.BRANCH)
        hard_limit = 2_000 * n + 1_000_000

        while committed < n:
            if now > hard_limit:
                raise TraceError(
                    f"core exceeded {hard_limit} cycles at instruction "
                    f"{committed}/{n}: probable deadlock"
                )

            # ---- writeback: results arriving this cycle ------------------
            while completions and completions[0][0] <= now:
                _, _, entry = heapq.heappop(completions)
                entry.state = EntryState.DONE
                if entry.miss_in_flight:
                    outstanding_misses -= 1
                    entry.miss_in_flight = False
                for consumer in entry.consumers:
                    consumer.wake()
                entry.consumers.clear()
                if entry.mispredicted:
                    pending_resume = now + cfg.mispredict_penalty

            # ---- commit: in order, up to commit_width --------------------
            n_commit = 0
            while rob and n_commit < cfg.commit_width:
                head = rob[0]
                if head.state != EntryState.DONE:
                    break
                rob.popleft()
                n_commit += 1
                committed += 1
                if head.is_store:
                    hier.store(head.addr, head.value, now)
                    metrics.store_count += 1
                    lsq_used -= 1
                elif head.is_load:
                    lsq_used -= 1
                if head.dest >= 0 and reg_producer.get(head.dest) is head:
                    del reg_producer[head.dest]
            if committed >= n:
                break  # the last instruction committed this cycle

            # ---- issue: oldest-first among READY entries ------------------
            fu.new_cycle()
            ready_len = 0
            n_issued = 0
            for entry in rob:
                if entry.state != EntryState.READY:
                    continue
                ready_len += 1
                if n_issued >= cfg.issue_width or not fu.try_issue(entry.op):
                    continue
                n_issued += 1
                entry.state = EntryState.ISSUED
                latency = EXEC_LATENCY[entry.op]
                if entry.is_load:
                    latency = self._issue_load(entry, rob, metrics, now)
                    if latency > l1_hit_latency:
                        entry.miss_in_flight = True
                        outstanding_misses += 1
                seq += 1
                heapq.heappush(completions, (now + latency, seq, entry))

            # ---- metrics sample (state as of this cycle) -------------------
            metrics.sample_ready_queue(
                ready_len, miss_outstanding=outstanding_misses > 0
            )
            if fetch_blocked:
                metrics.fetch_stall_cycles += 1

            # ---- dispatch: IFQ -> RUU/LSQ ---------------------------------
            n_disp = 0
            while ifq and n_disp < cfg.decode_width and len(rob) < cfg.ruu_size:
                idx, mispred = ifq[0]
                op = int(t_op[idx])
                is_mem = op == mem_op_load or op == mem_op_store
                if is_mem and lsq_used >= cfg.lsq_size:
                    break
                ifq.popleft()
                n_disp += 1
                entry = RUUEntry(
                    idx,
                    OpClass(op),
                    int(t_dest[idx]),
                    int(t_addr[idx]),
                    int(t_value[idx]),
                    mispredicted=mispred,
                )
                s1 = int(t_src1[idx])
                s2 = int(t_src2[idx])
                if s1 >= 0:
                    entry.wire_source(reg_producer.get(s1))
                if s2 >= 0:
                    entry.wire_source(reg_producer.get(s2))
                entry.finish_rename()
                if entry.dest >= 0:
                    reg_producer[entry.dest] = entry
                if is_mem:
                    lsq_used += 1
                rob.append(entry)

            # ---- fetch: fill the IFQ unless redirecting --------------------
            if fetch_blocked and pending_resume is not None and now >= pending_resume:
                fetch_blocked = False
                pending_resume = None
            if not fetch_blocked and now >= icache_stall_until:
                n_fetched = 0
                while (
                    i_fetch < n
                    and n_fetched < cfg.fetch_width
                    and len(ifq) < cfg.ifq_size
                ):
                    if icache is not None:
                        penalty = icache.fetch_penalty(int(t_pc[i_fetch]))
                        if penalty:
                            # The line is being fetched; retry hits it.
                            icache_stall_until = now + penalty
                            break
                    mispred = False
                    if int(t_op[i_fetch]) == br_op:
                        pc = int(t_pc[i_fetch])
                        taken = bool(t_taken[i_fetch])
                        predicted = self.predictor.predict(pc)
                        self.predictor.update(pc, taken)
                        if predicted != taken:
                            mispred = True
                            metrics.mispredicts += 1
                            fetch_blocked = True
                    ifq.append((i_fetch, mispred))
                    i_fetch += 1
                    n_fetched += 1
                    if mispred:
                        break

            # ---- advance the clock, skipping provably idle cycles ----------
            next_now = now + 1
            if (
                cfg.enable_idle_skip
                and ready_len == 0
                and n_issued == 0
                and n_disp == 0
                and (not rob or rob[0].state != EntryState.DONE)
                and (
                    not ifq
                    or len(rob) >= cfg.ruu_size
                    or (
                        int(t_op[ifq[0][0]]) in (mem_op_load, mem_op_store)
                        and lsq_used >= cfg.lsq_size
                    )
                )
                and (
                    fetch_blocked
                    or now < icache_stall_until
                    or i_fetch >= n
                    or len(ifq) >= cfg.ifq_size
                )
            ):
                targets = []
                if completions:
                    targets.append(completions[0][0])
                if fetch_blocked and pending_resume is not None:
                    targets.append(pending_resume)
                if not fetch_blocked and now < icache_stall_until:
                    targets.append(icache_stall_until)
                if not targets:
                    raise TraceError(
                        f"core deadlocked at cycle {now} "
                        f"({committed}/{n} committed)"
                    )
                skip_to = max(next_now, min(targets))
                gap = skip_to - next_now
                if gap > 0:
                    metrics.sample_ready_queue(
                        0, miss_outstanding=outstanding_misses > 0, weight=gap
                    )
                    if fetch_blocked:
                        metrics.fetch_stall_cycles += gap
                next_now = skip_to
            now = next_now

        metrics.committed = committed
        metrics.cycles = now
        return CoreResult(
            cycles=now,
            metrics=metrics,
            branch_lookups=self.predictor.lookups,
            branch_mispredicts=self.predictor.mispredicts,
        )

    # ---- helpers ------------------------------------------------------------

    def _issue_load(
        self, entry: RUUEntry, rob: deque[RUUEntry], metrics: CoreMetrics, now: int
    ) -> int:
        """Execute a load: forward from an older in-flight store, or access
        the cache hierarchy. Returns the load-to-use latency."""
        forward_from: RUUEntry | None = None
        for other in rob:
            if other is entry:
                break
            if other.is_store and other.addr == entry.addr:
                forward_from = other
        if forward_from is not None:
            metrics.forwarded_loads += 1
            metrics.record_load("forward")
            if _trace.ACTIVE:
                # Forwarded loads never reach the caches, so the core is
                # the only place that can observe them.
                _trace.emit(
                    "cache_access",
                    level="core",
                    addr=entry.addr,
                    hit=True,
                    served_by="forward",
                    latency=self.config.forward_latency,
                )
                _metrics.REGISTRY.observe(
                    "core.load_latency",
                    self.config.forward_latency,
                    hierarchy=self.hierarchy.name,
                )
            if self.verify_loads and forward_from.value != entry.value:
                raise _VerifyError(
                    f"forwarded load at {entry.addr:#x} got "
                    f"{forward_from.value:#x}, trace says {entry.value:#x}"
                )
            return self.config.forward_latency
        result = self.hierarchy.load(entry.addr, now)
        metrics.record_load(result.served_by)
        if _trace.ACTIVE:
            _trace.emit(
                "cache_access",
                level="core",
                addr=entry.addr,
                hit=result.served_by.startswith("l1"),
                served_by=result.served_by,
                latency=result.latency,
            )
            _metrics.REGISTRY.observe(
                "core.load_latency", result.latency, hierarchy=self.hierarchy.name
            )
        if self.verify_loads and result.value is not None and (
            result.value != entry.value
        ):
            raise _VerifyError(
                f"load at {entry.addr:#x} returned {result.value:#x}, "
                f"trace says {entry.value:#x} (config {self.hierarchy.name})"
            )
        return max(1, result.latency)
