"""Trace persistence: save/load columnar traces as ``.npz`` archives.

Workload generation is deterministic but not free (a full-size trace
takes a fraction of a second to minutes); persisting traces lets
experiment campaigns and external tools share exactly the same inputs.
The format is a plain NumPy archive — one array per column plus a small
metadata record — so it is readable without this library.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from repro.errors import TraceError
from repro.isa.trace import Trace

__all__ = ["save_trace", "load_trace", "FORMAT_VERSION"]

FORMAT_VERSION = 1

_COLUMNS = ("pc", "op", "dest", "src1", "src2", "addr", "value", "taken")


def save_trace(trace: Trace, path: str | Path) -> Path:
    """Write *trace* to ``path`` (``.npz`` appended if missing).

    Returns the final path written.
    """
    path = Path(path)
    if path.suffix != ".npz":
        path = path.with_suffix(path.suffix + ".npz")
    meta = json.dumps({"version": FORMAT_VERSION, "name": trace.name})
    np.savez_compressed(
        path,
        meta=np.frombuffer(meta.encode("utf-8"), dtype=np.uint8),
        **{col: getattr(trace, col) for col in _COLUMNS},
    )
    return path


def load_trace(path: str | Path) -> Trace:
    """Read a trace previously written by :func:`save_trace`.

    The loaded trace is validated structurally before being returned.
    """
    path = Path(path)
    if not path.exists():
        raise TraceError(f"trace file {path} does not exist")
    with np.load(path) as archive:
        missing = [c for c in _COLUMNS if c not in archive]
        if "meta" not in archive or missing:
            raise TraceError(
                f"{path} is not a trace archive (missing {missing or ['meta']})"
            )
        meta = json.loads(bytes(archive["meta"]).decode("utf-8"))
        if meta.get("version") != FORMAT_VERSION:
            raise TraceError(
                f"{path}: unsupported trace format version {meta.get('version')}"
            )
        trace = Trace(
            pc=archive["pc"],
            op=archive["op"],
            dest=archive["dest"],
            src1=archive["src1"],
            src2=archive["src2"],
            addr=archive["addr"],
            value=archive["value"],
            taken=archive["taken"],
            name=str(meta.get("name", "")),
        )
    trace.validate()
    return trace
