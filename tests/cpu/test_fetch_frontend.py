"""Front-end behaviour tests: IFQ sizing and fetch-stall accounting."""

from repro.cpu.pipeline import CoreConfig, OutOfOrderCore
from repro.isa.opcodes import OpClass
from repro.isa.trace import TraceBuilder

from tests.conftest import make_tiny

BASE = 0x1000_0000


def mispredict_heavy_trace(n_pairs):
    """Alternating-taken branches: bimod mispredicts about half of them."""
    tb = TraceBuilder("mispredicts")
    for i in range(n_pairs):
        tb.append(0x400000, OpClass.IALU, dest=1)
        tb.append(0x400008, OpClass.BRANCH, src1=1, taken=i % 2 == 0)
    return tb.build()


def alu_block(n):
    tb = TraceBuilder("alu")
    for i in range(n):
        tb.append(0x400000 + 8 * (i % 8), OpClass.IALU, dest=i % 48)
    return tb.build()


class TestFetchStalls:
    def test_stall_cycles_counted_on_mispredicts(self):
        result = OutOfOrderCore(make_tiny("BC")).run(mispredict_heavy_trace(100))
        assert result.branch_mispredicts > 20
        assert result.metrics.fetch_stall_cycles > result.branch_mispredicts

    def test_no_stalls_without_branches(self):
        result = OutOfOrderCore(make_tiny("BC")).run(alu_block(200))
        assert result.metrics.fetch_stall_cycles == 0
        assert result.branch_mispredicts == 0

    def test_penalty_zero_still_stalls_until_resolve(self):
        """Even with no redirect penalty, fetch waits for the branch to
        execute — the unavoidable resolution delay."""
        trace = mispredict_heavy_trace(100)
        zero = OutOfOrderCore(
            make_tiny("BC"), CoreConfig(mispredict_penalty=0)
        ).run(trace)
        assert zero.metrics.fetch_stall_cycles > 0


class TestIfqSizing:
    def test_tiny_ifq_limits_fetch_ahead(self):
        """With a 1-entry IFQ the front end cannot run ahead, so a
        mispredict-free trace still loses throughput."""
        trace = alu_block(400)
        tiny = OutOfOrderCore(make_tiny("BC"), CoreConfig(ifq_size=1)).run(trace)
        wide = OutOfOrderCore(make_tiny("BC"), CoreConfig(ifq_size=16)).run(trace)
        assert tiny.cycles > wide.cycles

    def test_huge_ifq_no_worse(self):
        trace = alu_block(400)
        wide = OutOfOrderCore(make_tiny("BC"), CoreConfig(ifq_size=16)).run(trace)
        huge = OutOfOrderCore(make_tiny("BC"), CoreConfig(ifq_size=64)).run(trace)
        assert huge.cycles <= wide.cycles


class TestCommitWidth:
    def test_commit_width_bounds_throughput(self):
        trace = alu_block(400)
        narrow = OutOfOrderCore(
            make_tiny("BC"), CoreConfig(commit_width=1)
        ).run(trace)
        wide = OutOfOrderCore(make_tiny("BC"), CoreConfig(commit_width=4)).run(trace)
        assert narrow.cycles >= 400  # at most 1 IPC
        assert wide.cycles < narrow.cycles
