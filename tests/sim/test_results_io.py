"""Tests for result serialization."""

import math

import pytest

from repro.errors import ExperimentError
from repro.sim.results_io import (
    dump_jsonl,
    load_jsonl,
    load_results_json,
    result_from_dict,
    result_to_dict,
    result_to_full_dict,
    results_to_csv,
    results_to_json,
)
from repro.sim.runner import clear_caches, run_matrix, run_workload


@pytest.fixture(scope="module")
def some_results():
    clear_caches()
    return run_matrix(["olden.mst"], ["BC", "CPP"], scale=0.1)


class TestDictForm:
    def test_nested_structure(self, some_results):
        d = result_to_dict(some_results[("olden.mst", "BC")])
        assert d["workload"] == "olden.mst"
        assert d["bus"]["total_words"] > 0
        assert d["l1"]["accesses"] > 0
        assert "ready_queue_in_miss_cycles" in d["core"]

    def test_json_roundtrip(self, some_results, tmp_path):
        path = results_to_json(some_results, tmp_path / "out.json")
        loaded = load_results_json(path)
        assert len(loaded) == 2
        assert {r["config"] for r in loaded} == {"BC", "CPP"}
        original = result_to_dict(some_results[("olden.mst", "BC")])
        match = next(r for r in loaded if r["config"] == "BC")
        assert match["cycles"] == original["cycles"]

    def test_accepts_list(self, some_results, tmp_path):
        path = results_to_json(list(some_results.values()), tmp_path / "l.json")
        assert len(load_results_json(path)) == 2


class TestHeadlineBusBreakdown:
    def test_as_dict_carries_the_bus_traffic_split(self, some_results):
        # Regression: as_dict() used to drop the fill/prefetch/writeback
        # word breakdown, leaving only the total.
        d = some_results[("olden.mst", "CPP")].as_dict()
        for key in (
            "bus_fill_words",
            "bus_prefetch_words",
            "bus_writeback_words",
            "bus_prefetch_share",
        ):
            assert key in d
        assert (
            d["bus_fill_words"] + d["bus_prefetch_words"] + d["bus_writeback_words"]
            == d["bus_words"]
        )

    def test_prefetch_share_is_a_fraction_of_total(self, some_results):
        r = some_results[("olden.mst", "CPP")]
        assert 0.0 <= r.bus_prefetch_share <= 1.0
        assert r.bus_prefetch_share == pytest.approx(
            r.bus_prefetch_words / r.bus_words
        )

    def test_prefetch_share_zero_on_idle_bus(self):
        from repro.sim.results import SimResult
        from repro.caches.stats import CacheStats
        from repro.cpu.metrics import CoreMetrics

        idle = SimResult(
            workload="w", config="c", cycles=0, instructions=0,
            l1=CacheStats("L1"), l2=CacheStats("L2"),
            bus_words=0, bus_fill_words=0, bus_prefetch_words=0,
            bus_writeback_words=0, metrics=CoreMetrics(),
            branch_mispredicts=0,
        )
        assert idle.bus_prefetch_share == 0.0


class TestCsv:
    def test_writes_header_and_rows(self, some_results, tmp_path):
        path = results_to_csv(some_results, tmp_path / "out.csv")
        lines = path.read_text().strip().splitlines()
        assert lines[0].startswith("workload,config,cycles")
        assert len(lines) == 3

    def test_empty_rejected(self, tmp_path):
        with pytest.raises(ExperimentError):
            results_to_csv([], tmp_path / "x.csv")


class TestLosslessRoundTrip:
    def test_full_dict_round_trip_is_bit_identical(self, some_results):
        original = some_results[("olden.mst", "CPP")]
        rebuilt = result_from_dict(result_to_full_dict(original))
        # Dict equality covers every field, including the Welford
        # accumulator internals behind the ready-queue averages.
        assert result_to_full_dict(rebuilt) == result_to_full_dict(original)
        assert rebuilt.cycles == original.cycles
        assert (
            rebuilt.ready_queue_in_miss_cycles
            == original.ready_queue_in_miss_cycles
        )

    def test_json_round_trip_preserves_floats(self, some_results, tmp_path):
        original = some_results[("olden.mst", "BC")]
        path = tmp_path / "cell.jsonl"
        dump_jsonl([result_to_full_dict(original)], path)
        (loaded,) = load_jsonl(path)
        rebuilt = result_from_dict(loaded)
        assert result_to_full_dict(rebuilt) == result_to_full_dict(original)

    def test_malformed_dict_rejected(self):
        with pytest.raises(ExperimentError):
            result_from_dict({"workload": "w"})


class TestJsonl:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "r.jsonl"
        records = [{"a": 1}, {"b": [1, 2.5]}]
        dump_jsonl(records, path)
        assert load_jsonl(path) == records

    def test_lenient_load_skips_garbage(self, tmp_path):
        path = tmp_path / "r.jsonl"
        path.write_text('{"ok": 1}\n{broken\n{"ok": 2}\n')
        assert load_jsonl(path) == [{"ok": 1}, {"ok": 2}]

    def test_strict_load_raises(self, tmp_path):
        path = tmp_path / "r.jsonl"
        path.write_text('{"ok": 1}\n{broken\n')
        with pytest.raises(ExperimentError):
            load_jsonl(path, strict=True)


class TestAtomicWrites:
    def test_no_temp_file_left_behind(self, some_results, tmp_path):
        results_to_json(some_results, tmp_path / "out.json")
        results_to_csv(some_results, tmp_path / "out.csv")
        dump_jsonl([{"a": 1}], tmp_path / "out.jsonl")
        leftovers = list(tmp_path.glob("*.tmp"))
        assert leftovers == []

    def test_parent_directories_created(self, some_results, tmp_path):
        path = results_to_json(
            some_results, tmp_path / "deep" / "nested" / "out.json"
        )
        assert path.exists()

    def test_failed_write_leaves_existing_file_intact(self, tmp_path):
        from repro.utils.atomic import atomic_write_text

        path = tmp_path / "kept.txt"
        atomic_write_text(path, "original")
        with pytest.raises(TypeError):
            atomic_write_text(path, object())  # not a str: write() fails
        assert path.read_text() == "original"
        assert list(tmp_path.glob("*.tmp")) == []


class TestErrors:
    def test_missing_file(self, tmp_path):
        with pytest.raises(ExperimentError):
            load_results_json(tmp_path / "missing.json")

    def test_wrong_shape(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"not": "a list"}')
        with pytest.raises(ExperimentError):
            load_results_json(path)


class TestNonFiniteFloats:
    """Checkpoint round-trips must survive NaN and ±Infinity.

    A degenerate cell (zero cycles, an empty ready queue, a crashed
    run's sentinel metrics) can legitimately put non-finite floats into
    ``params``, ``CacheStats.extra`` or a running mean; Python's JSON
    emits ``NaN``/``Infinity`` literals and reads them back, and the
    serializers must not mangle them into nulls or strings. NaN compares
    unequal to itself, so these tests compare identity-aware.
    """

    @staticmethod
    def nan_aware_equal(a, b):
        if isinstance(a, float) and isinstance(b, float):
            return (math.isnan(a) and math.isnan(b)) or a == b
        if isinstance(a, dict) and isinstance(b, dict):
            return a.keys() == b.keys() and all(
                TestNonFiniteFloats.nan_aware_equal(a[k], b[k]) for k in a
            )
        if isinstance(a, list) and isinstance(b, list):
            return len(a) == len(b) and all(
                TestNonFiniteFloats.nan_aware_equal(x, y) for x, y in zip(a, b)
            )
        return a == b

    def poisoned(self, some_results):
        original = some_results[("olden.mst", "CPP")]
        data = result_to_full_dict(original)
        data["params"] = dict(
            data["params"],
            nan_knob=float("nan"),
            inf_knob=float("inf"),
            ninf_knob=float("-inf"),
        )
        data["l1"] = dict(data["l1"])
        data["l1"]["extra"] = dict(
            data["l1"]["extra"], degenerate_rate=float("nan")
        )
        return result_from_dict(data)

    def test_full_dict_round_trip_preserves_non_finite(self, some_results):
        poisoned = self.poisoned(some_results)
        rebuilt = result_from_dict(result_to_full_dict(poisoned))
        assert self.nan_aware_equal(
            result_to_full_dict(rebuilt), result_to_full_dict(poisoned)
        )
        assert math.isnan(rebuilt.params["nan_knob"])
        assert rebuilt.params["inf_knob"] == float("inf")
        assert rebuilt.params["ninf_knob"] == float("-inf")
        assert math.isnan(rebuilt.l1.extra["degenerate_rate"])

    def test_jsonl_checkpoint_round_trip_preserves_non_finite(
        self, some_results, tmp_path
    ):
        poisoned = self.poisoned(some_results)
        path = tmp_path / "cell.jsonl"
        dump_jsonl([result_to_full_dict(poisoned)], path)
        (loaded,) = load_jsonl(path)
        rebuilt = result_from_dict(loaded)
        assert self.nan_aware_equal(
            result_to_full_dict(rebuilt), result_to_full_dict(poisoned)
        )
        assert rebuilt.params["inf_knob"] == float("inf")
        assert math.isnan(rebuilt.l1.extra["degenerate_rate"])

    def test_json_export_keeps_non_finite_readable(self, some_results, tmp_path):
        poisoned = self.poisoned(some_results)
        path = results_to_json([poisoned], tmp_path / "out.json")
        (loaded,) = load_results_json(path)
        assert math.isnan(loaded["params"]["nan_knob"])
        assert loaded["params"]["inf_knob"] == float("inf")
