"""Small integer-math helpers used by cache geometry and allocators."""

from __future__ import annotations

__all__ = ["is_pow2", "log2i", "align_up", "align_down", "ceil_div"]


def is_pow2(n: int) -> bool:
    """True iff *n* is a positive power of two."""
    return n > 0 and (n & (n - 1)) == 0


def log2i(n: int) -> int:
    """Exact integer log2 of a power of two; raises otherwise.

    Cache index/offset widths must be exact, so this refuses to round.
    """
    if not is_pow2(n):
        raise ValueError(f"{n} is not a positive power of two")
    return n.bit_length() - 1


def align_up(value: int, alignment: int) -> int:
    """Round *value* up to the nearest multiple of *alignment* (a power of 2)."""
    if not is_pow2(alignment):
        raise ValueError(f"alignment {alignment} is not a power of two")
    return (value + alignment - 1) & ~(alignment - 1)


def align_down(value: int, alignment: int) -> int:
    """Round *value* down to the nearest multiple of *alignment* (power of 2)."""
    if not is_pow2(alignment):
        raise ValueError(f"alignment {alignment} is not a power of two")
    return value & ~(alignment - 1)


def ceil_div(a: int, b: int) -> int:
    """Ceiling division for non-negative ints without floating point."""
    if b <= 0:
        raise ValueError("ceil_div divisor must be positive")
    return -(-a // b)
