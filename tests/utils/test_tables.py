"""Unit tests for ASCII table / bar-chart rendering."""

import pytest

from repro.utils.tables import format_bar_chart, format_table


class TestFormatTable:
    def test_basic_shape(self):
        out = format_table(["a", "bb"], [[1, 2.5], [30, 4]], title="T")
        lines = out.splitlines()
        assert lines[0] == "T"
        assert lines[1].startswith("+")
        assert "| a " in lines[2]
        assert "2.500" in out

    def test_column_count_checked(self):
        with pytest.raises(ValueError):
            format_table(["a"], [[1, 2]])

    def test_ndigits(self):
        out = format_table(["x"], [[1.23456]], ndigits=1)
        assert "1.2" in out and "1.23" not in out

    def test_alignment(self):
        out = format_table(["name", "v"], [["long-name", 1], ["s", 22]])
        rows = [l for l in out.splitlines() if l.startswith("| ")]
        assert len({len(r) for r in rows}) == 1  # all rows equal width


class TestFormatBarChart:
    def test_scales_to_max(self):
        out = format_bar_chart({"a": 10.0, "b": 5.0}, width=20)
        a_line, b_line = out.splitlines()
        assert a_line.count("#") == 20
        assert b_line.count("#") == 10

    def test_baseline_marker(self):
        out = format_bar_chart({"a": 50.0, "b": 100.0}, width=20, baseline=100.0)
        assert "|" in out.splitlines()[0]  # marker visible where bar is short

    def test_empty(self):
        assert "(empty)" in format_bar_chart({}, title="t")

    def test_width_checked(self):
        with pytest.raises(ValueError):
            format_bar_chart({"a": 1.0}, width=5)

    def test_unit_suffix(self):
        out = format_bar_chart({"a": 1.0}, unit="%")
        assert out.strip().endswith("1.000%")
