"""A single dynamic instruction record."""

from __future__ import annotations

from dataclasses import dataclass

from repro.isa.opcodes import OpClass, is_branch, is_mem

__all__ = ["Instruction", "NO_REG"]

NO_REG = -1
"""Sentinel register id meaning "no register operand"."""


@dataclass(frozen=True, slots=True)
class Instruction:
    """One executed instruction with resolved operands.

    Attributes
    ----------
    pc:
        Static instruction address (drives the branch predictor's indexing
        and groups dynamic instances of the same static instruction).
    op:
        Operation class.
    dest:
        Destination register id, or :data:`NO_REG`.
    src1, src2:
        Source register ids, or :data:`NO_REG`. For loads ``src1`` is the
        address base; for stores ``src1`` is the address base and ``src2``
        the data being stored.
    addr:
        Effective byte address (loads/stores only, word aligned).
    value:
        The 32-bit data value observed at generation time: the value
        written (stores) or read (loads). Used for value-compressibility
        analysis and for store data during simulation.
    taken:
        Branch outcome (branches only).
    """

    pc: int
    op: OpClass
    dest: int = NO_REG
    src1: int = NO_REG
    src2: int = NO_REG
    addr: int = 0
    value: int = 0
    taken: bool = False

    @property
    def is_mem(self) -> bool:
        return is_mem(self.op)

    @property
    def is_branch(self) -> bool:
        return is_branch(self.op)

    @property
    def is_load(self) -> bool:
        return self.op == OpClass.LOAD

    @property
    def is_store(self) -> bool:
        return self.op == OpClass.STORE
