"""Figure 15 — average ready-queue length in miss cycles.

For the benchmarks with a significant importance reduction, the paper
compares the average number of ready-to-issue instructions during cycles
with at least one outstanding cache miss, CPP versus HAC, reporting
improvements of up to 78 %: under CPP, a miss leaves the pipeline with
more independent work.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.analysis.readyq import ready_queue_uplift
from repro.experiments.common import GEOMEAN, ExperimentOutput, average, resolve_workloads

__all__ = ["run", "FIGURE", "TITLE"]

FIGURE = "fig15"
TITLE = "Average ready-queue length in outstanding-miss cycles (CPP vs HAC)"


def run(
    workloads: Sequence[str] | None = None,
    *,
    seed: int = 1,
    scale: float = 1.0,
    baseline_config: str = "HAC",
    test_config: str = "CPP",
) -> ExperimentOutput:
    """Regenerate this figure over *workloads* (default: all fourteen)."""
    names = resolve_workloads(workloads)
    rows: list[list[object]] = []
    base_series: dict[str, float] = {}
    test_series: dict[str, float] = {}
    uplift: dict[str, float] = {}
    for workload in names:
        cmp_ = ready_queue_uplift(
            workload,
            baseline_config=baseline_config,
            test_config=test_config,
            seed=seed,
            scale=scale,
        )
        base_series[workload] = cmp_.baseline_length
        test_series[workload] = cmp_.test_length
        uplift[workload] = cmp_.uplift_percent
        rows.append(
            [
                workload,
                round(cmp_.baseline_length, 3),
                round(cmp_.test_length, 3),
                round(cmp_.uplift_percent, 1),
            ]
        )
    uplift[GEOMEAN] = average({k: v for k, v in uplift.items() if k != GEOMEAN})
    rows.append(["average", "", "", round(uplift[GEOMEAN], 1)])
    return ExperimentOutput(
        figure=FIGURE,
        title=TITLE,
        headers=[
            "workload",
            f"{baseline_config} ready-queue",
            f"{test_config} ready-queue",
            "uplift %",
        ],
        rows=rows,
        series={"ready-queue uplift %": uplift},
        unit="%",
        paper_reference=(
            "Figure 15: the ready-queue length during miss cycles improves "
            "by up to 78% under CPP relative to HAC."
        ),
    )
