"""Additional CPP cache coverage: introspection, flush, associativity."""

import numpy as np

from repro.caches.compression_cache import CompressionCache
from repro.caches.interface import MemoryPort
from repro.memory.image import MemoryImage
from repro.memory.main_memory import MainMemory

BASE = 0x1000_0000
SMALL = 7


def make_cpp(mem=None, *, size=512, assoc=1):
    mem = mem or MainMemory(MemoryImage(), latency=100)
    cache = CompressionCache(
        "C",
        size_bytes=size,
        assoc=assoc,
        line_bytes=64,
        hit_latency=1,
        downstream=MemoryPort(mem, writeback_compressed=True),
    )
    return cache, mem


def seed_small(mem, addr, n_words):
    for i in range(n_words):
        mem.poke_word(addr + 4 * i, SMALL + i)


class TestIntrospection:
    def test_contents_reports_pairs(self):
        cache, mem = make_cpp()
        seed_small(mem, BASE, 32)
        cache.access(BASE, write=False)
        entries = cache.contents()
        assert len(entries) == 1
        line_no, n_primary, n_affil, dirty = entries[0]
        assert line_no == cache.line_no(BASE)
        assert n_primary == 16
        assert n_affil == 16  # fully compressible pair rode along
        assert not dirty

    def test_probe_word_states(self):
        cache, mem = make_cpp()
        seed_small(mem, BASE, 32)
        assert cache.probe_word(BASE) is None
        cache.access(BASE, write=False)
        assert cache.probe_word(BASE) == "primary"
        assert cache.probe_word(BASE + 64) == "affiliated"
        assert cache.probe_word(BASE + 128) is None


class TestFlush:
    def test_flush_drops_affiliated_silently(self):
        cache, mem = make_cpp()
        seed_small(mem, BASE, 32)
        cache.access(BASE, write=False)
        writebacks_before = mem.bus.writeback_words
        cache.flush()
        # Clean primary + clean affiliated: nothing travels.
        assert mem.bus.writeback_words == writebacks_before
        assert cache.contents() == []

    def test_flush_writes_dirty_words_only(self):
        cache, mem = make_cpp()
        seed_small(mem, BASE, 32)
        cache.access(BASE, write=True, value=12345)
        cache.flush()
        assert mem.peek_word(BASE) == 12345
        assert cache.contents() == []
        cache.check_invariants()


class TestAssociativeCPP:
    def test_two_way_holds_conflicting_pairs(self):
        """CPP composes with associativity: a 2-way CPP set holds two
        primary lines, each potentially with affiliated content."""
        cache, mem = make_cpp(size=1024, assoc=2)  # 8 sets
        n_sets = cache.n_sets
        seed_small(mem, BASE, 32)
        conflict = BASE + n_sets * 64
        seed_small(mem, conflict, 32)
        cache.access(BASE, write=False)
        cache.access(conflict, write=False)  # same set, second way
        assert cache.access(BASE, write=False).served_by == "l1"
        assert cache.access(conflict, write=False).served_by == "l1"
        # Both pairs prefetched:
        assert cache.probe_word(BASE + 64) == "affiliated"
        assert cache.probe_word(conflict + 64) == "affiliated"
        cache.check_invariants()

    def test_lru_within_cpp_set(self):
        cache, mem = make_cpp(size=1024, assoc=2)
        n_sets = cache.n_sets
        a, b, c = BASE, BASE + n_sets * 64, BASE + 2 * n_sets * 64
        for addr in (a, b, c):
            seed_small(mem, addr, 16)
        cache.access(a, write=False)
        cache.access(b, write=False)
        cache.access(a, write=False)  # a MRU
        cache.access(c, write=False)  # evicts b
        assert cache.access(a, write=False).served_by == "l1"
        assert cache.access(b, write=False).served_by == "memory"
        cache.check_invariants()
