"""Extension bench: CPP against the stronger related-work baselines.

The paper compares CPP only against next-line prefetching (BCP) and
higher associativity (HAC). Its related-work section points at two
stronger mechanisms we also implement:

* **BSP** — Baer-Chen-style stride prefetching [2];
* **BVC** — Jouppi victim caches [3] (conflict-miss relief without
  prefetching, the role CPP's stash plays internally).

This bench answers the natural reviewer question: does CPP's win survive
them? Expected shape: BSP approaches/B beats CPP on regular array codes,
BVC approaches HAC on conflict codes, while CPP remains the only design
that cuts *traffic* while prefetching.
"""

from conftest import BENCH_SEED, run_once

from repro.sim.config import SimConfig
from repro.sim.runner import get_program, run_program

WORKLOADS = [
    "olden.treeadd",       # pointer chase: CPP's home turf
    "spec95.132.ijpeg",    # regular arrays: stride prefetching's home turf
    "spec2000.300.twolf",  # conflict-dominated: victim caching's home turf
]
CONFIGS = ["BC", "BCP", "BSP", "BVC", "CPP"]
SCALE = 0.35


def run_alternatives():
    out = {}
    for config in CONFIGS:
        cycles = traffic = 0
        per_workload = {}
        for name in WORKLOADS:
            result = run_program(
                get_program(name, seed=BENCH_SEED, scale=SCALE),
                SimConfig(cache_config=config),
            )
            per_workload[name] = result.cycles
            cycles += result.cycles
            traffic += result.bus_words
        out[config] = {"cycles": cycles, "traffic": traffic, "per": per_workload}
    return out


def test_extension_alternative_baselines(benchmark):
    results = run_once(benchmark, run_alternatives)
    bc = results["BC"]
    for config in CONFIGS[1:]:
        r = results[config]
        benchmark.extra_info[f"{config.lower()}_cycles_pct"] = round(
            100 * r["cycles"] / bc["cycles"], 1
        )
        benchmark.extra_info[f"{config.lower()}_traffic_pct"] = round(
            100 * r["traffic"] / bc["traffic"], 1
        )
    # Every alternative helps over plain BC on this mix:
    for config in ("BCP", "BSP", "BVC", "CPP"):
        assert results[config]["cycles"] < bc["cycles"], config
    # CPP is the only prefetcher below baseline traffic:
    assert results["CPP"]["traffic"] < bc["traffic"]
    assert results["BCP"]["traffic"] > bc["traffic"]
    assert results["BSP"]["traffic"] > bc["traffic"]
    # The stride prefetcher generalizes next-line: no worse overall here.
    assert results["BSP"]["cycles"] <= results["BCP"]["cycles"] * 1.03
    # CPP keeps its signature win on the conflict-dominated workload:
    per = {c: results[c]["per"]["spec2000.300.twolf"] for c in CONFIGS}
    assert per["CPP"] < per["BCP"]
