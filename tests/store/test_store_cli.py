"""``python -m repro.store`` CLI: fsck, migrate, stats."""

from __future__ import annotations

import json

from repro.sim.fault import Checkpoint
from repro.sim.runner import run_workload
from repro.store.__main__ import main
from repro.store.cas import ResultStore

from store_helpers import identity_store, sample_payload

KEY = ("olden.treeadd", 1, 0.05, "BC", 1.0)


def _summary(capsys, tag: str) -> dict:
    line = next(
        line
        for line in capsys.readouterr().out.splitlines()
        if line.startswith(tag)
    )
    return json.loads(line[len(tag) :])


def test_fsck_clean_store_exits_zero(tmp_path, capsys):
    store = identity_store(tmp_path / "store")
    store.put(KEY, sample_payload())
    assert main(["fsck", "--store", str(store.root)]) == 0
    summary = _summary(capsys, "FSCK-SUMMARY ")
    assert summary["clean"] is True
    assert summary["scanned"] == summary["verified"] == 1


def test_fsck_report_file_is_written(tmp_path, capsys):
    store = identity_store(tmp_path / "store")
    store.put(KEY, sample_payload())
    report_path = tmp_path / "fsck.json"
    assert (
        main(["fsck", "--store", str(store.root), "--report", str(report_path)])
        == 0
    )
    report = json.loads(report_path.read_text("utf-8"))
    assert report["clean"] is True
    assert report["store"] == str(store.root)


def test_fsck_repairs_corruption_and_strict_flags_it(tmp_path, capsys):
    store = identity_store(tmp_path / "store")
    store.put(KEY, sample_payload())
    store.object_path(store.digest_of(KEY)).write_bytes(b"rot")
    # Repairing pass: quarantines, reports, but exits 0 (store verifies).
    assert main(["fsck", "--store", str(store.root)]) == 0
    summary = _summary(capsys, "FSCK-SUMMARY ")
    assert summary["quarantined"] == 1
    # Same damage under --strict is a failure.
    store.put(KEY, sample_payload())
    store.object_path(store.digest_of(KEY)).write_bytes(b"rot")
    assert main(["fsck", "--store", str(store.root), "--strict"]) == 1


def test_fsck_no_repair_reports_problems_nonzero(tmp_path, capsys):
    store = identity_store(tmp_path / "store")
    store.put(KEY, sample_payload())
    store.object_path(store.digest_of(KEY)).write_bytes(b"rot")
    assert main(["fsck", "--store", str(store.root), "--no-repair"]) == 1
    summary = _summary(capsys, "FSCK-SUMMARY ")
    assert summary["problems"]


def test_migrate_imports_legacy_checkpoint(tmp_path, capsys):
    result = run_workload("olden.treeadd", "BC", seed=1, scale=0.05)
    checkpoint_path = tmp_path / "matrix.jsonl"
    checkpoint = Checkpoint(checkpoint_path)
    checkpoint.add(KEY, result)
    # A malformed line mid-file must be counted, not fatal.
    with checkpoint_path.open("a", encoding="utf-8") as fh:
        fh.write("{torn\n")

    store_dir = tmp_path / "store"
    assert main(["migrate", str(checkpoint_path), "--store", str(store_dir)]) == 0
    summary = _summary(capsys, "MIGRATE-SUMMARY ")
    assert summary["imported"] == 1
    assert summary["malformed"] == 1
    assert ResultStore(store_dir).get(KEY) == result

    # Re-migrating is idempotent.
    assert main(["migrate", str(checkpoint_path), "--store", str(store_dir)]) == 0
    summary = _summary(capsys, "MIGRATE-SUMMARY ")
    assert summary["imported"] == 0
    assert summary["skipped"] == 1


def test_migrate_empty_checkpoint_fails(tmp_path):
    checkpoint_path = tmp_path / "empty.jsonl"
    checkpoint_path.write_text("", encoding="utf-8")
    assert (
        main(["migrate", str(checkpoint_path), "--store", str(tmp_path / "s")])
        == 1
    )


def test_stats_includes_campaign_snapshots(tmp_path, capsys):
    from repro.store.queue import CampaignQueue

    store = identity_store(tmp_path / "store")
    store.put(KEY, sample_payload())
    queue = CampaignQueue(store.root / "queue", "matrix-seed1-scale0.05")
    queue.enqueue(KEY, ("olden.treeadd", "BC", 1.0, 1, 0.05))
    assert main(["stats", "--store", str(store.root)]) == 0
    stats = json.loads(capsys.readouterr().out)
    assert stats["objects"] == 1
    assert stats["campaigns"]["matrix-seed1-scale0.05"]["jobs"] == 1
