"""Figure 3 — values encountered in memory accesses.

Classifies every dynamically accessed word of each benchmark under the
paper's compression scheme. The paper reports "on average, 59% of dynamic
accessed values are compressible".
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.compression.vectorized import compression_summary
from repro.experiments.common import GEOMEAN, ExperimentOutput, average, resolve_workloads
from repro.sim.runner import get_program

__all__ = ["run", "FIGURE", "TITLE"]

FIGURE = "fig3"
TITLE = "Values encountered in memory accesses (% compressible)"


def run(
    workloads: Sequence[str] | None = None,
    *,
    seed: int = 1,
    scale: float = 1.0,
) -> ExperimentOutput:
    """Regenerate this figure over *workloads* (default: all fourteen)."""
    names = resolve_workloads(workloads)
    rows: list[list[object]] = []
    compressible: dict[str, float] = {}
    small: dict[str, float] = {}
    pointer: dict[str, float] = {}
    for name in names:
        program = get_program(name, seed=seed, scale=scale)
        summary = compression_summary(*program.trace.accessed_values())
        compressible[name] = 100.0 * summary.fraction_compressible
        small[name] = 100.0 * summary.fraction_small
        pointer[name] = 100.0 * summary.fraction_pointer
        rows.append(
            [
                name,
                summary.n_words,
                round(small[name], 1),
                round(pointer[name], 1),
                round(compressible[name], 1),
            ]
        )
    for series in (compressible, small, pointer):
        series[GEOMEAN] = average({k: v for k, v in series.items() if k != GEOMEAN})
    rows.append(
        [
            GEOMEAN,
            "",
            round(small[GEOMEAN], 1),
            round(pointer[GEOMEAN], 1),
            round(compressible[GEOMEAN], 1),
        ]
    )
    return ExperimentOutput(
        figure=FIGURE,
        title=TITLE,
        headers=["workload", "accessed words", "small %", "pointer %", "compressible %"],
        rows=rows,
        series={"compressible %": compressible},
        unit="%",
        paper_reference=(
            "Figure 3: on average 59% of dynamically accessed values are "
            "compressible (18 high bits uniform, or 17-bit prefix shared "
            "with the address)."
        ),
    )
