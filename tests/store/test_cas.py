"""ResultStore unit tests: round trips, idempotence, verify-on-read,
quarantine bookkeeping and fsck."""

from __future__ import annotations

import json

import pytest

from repro.errors import StoreCorruptionError, StoreError
from repro.obs.metrics import REGISTRY
from repro.store.cas import LEDGER_FILENAME, ResultStore
from repro.store.integrity import cell_digest, payload_checksum

from store_helpers import identity_store, sample_payload

KEY = ("olden.treeadd", 1, 0.05, "BC", 1.0)


def test_put_get_round_trip(store):
    payload = sample_payload()
    assert store.put(KEY, payload) is True
    assert store.get(KEY) == payload


def test_get_miss_returns_none(store):
    assert store.get(KEY) is None


def test_put_is_idempotent(store):
    assert store.put(KEY, sample_payload()) is True
    assert store.put(KEY, sample_payload()) is False
    assert store.object_count() == 1


def test_tuple_and_list_keys_address_the_same_record(store):
    store.put(KEY, sample_payload())
    assert store.get(list(KEY)) == sample_payload()


def test_code_version_changes_every_address(tmp_path):
    old = identity_store(tmp_path / "s", code_version="v1")
    new = identity_store(tmp_path / "s", code_version="v2")
    old.put(KEY, sample_payload())
    assert new.get(KEY) is None  # stale-code records are never served
    assert old.get(KEY) == sample_payload()


def test_digest_is_canonical_over_key_form():
    assert cell_digest(KEY, code_version="x") == cell_digest(
        list(KEY), code_version="x"
    )
    assert cell_digest(KEY, code_version="x") != cell_digest(
        KEY, code_version="y"
    )


def test_unserializable_payload_is_a_typed_error(store):
    with pytest.raises(StoreError):
        store.put(KEY, {"bad": object()})


@pytest.mark.parametrize(
    "damage",
    ["truncate", "bitflip", "garbage", "empty", "tamper", "wrong_key"],
)
def test_corrupt_record_is_quarantined_not_served(store, damage):
    store.put(KEY, sample_payload())
    path = store.object_path(store.digest_of(KEY))
    raw = path.read_bytes()
    if damage == "truncate":
        path.write_bytes(raw[: len(raw) // 2])
    elif damage == "bitflip":
        data = bytearray(raw)
        data[len(data) // 2] ^= 0x40
        path.write_bytes(bytes(data))
    elif damage == "garbage":
        path.write_bytes(b"\x00\xffnot a record")
    elif damage == "empty":
        path.write_bytes(b"")
    elif damage == "tamper":
        record = json.loads(raw)
        record["payload"]["cycles"] += 1  # checksum must catch this
        path.write_text(json.dumps(record), encoding="utf-8")
    elif damage == "wrong_key":
        record = json.loads(raw)
        record["key"][1] = 999  # no longer hashes to its address
        record["checksum"] = payload_checksum(record["payload"])
        path.write_text(json.dumps(record), encoding="utf-8")

    before = REGISTRY.counter("store.quarantined").value
    assert store.get(KEY) is None
    assert not path.exists(), "corrupt record left in the object tree"
    assert store.quarantined_count() == 1
    assert REGISTRY.counter("store.quarantined").value == before + 1
    entries = store.ledger_entries()
    assert len(entries) == 1
    assert entries[0]["error"] == "StoreCorruptionError"
    assert entries[0]["digest"] == store.digest_of(KEY)
    # The cell is recomputable: a fresh put is treated as new and served.
    assert store.put(KEY, sample_payload()) is True
    assert store.get(KEY) == sample_payload()


def test_strict_get_raises_typed_corruption_error(store):
    store.put(KEY, sample_payload())
    path = store.object_path(store.digest_of(KEY))
    path.write_bytes(b"junk")
    with pytest.raises(StoreCorruptionError):
        store.get(KEY, strict=True)
    assert store.quarantined_count() == 1


def test_quarantine_name_collisions_are_preserved(store):
    for n in (0, 1, 2):
        store.put(KEY, sample_payload(n))
        store.object_path(store.digest_of(KEY)).write_bytes(b"junk%d" % n)
        assert store.get(KEY) is None
    assert store.quarantined_count() == 3  # all three kept as evidence
    assert len(store.ledger_entries()) == 3


def test_ledger_survives_partial_corruption(store):
    store.put(KEY, sample_payload())
    store.object_path(store.digest_of(KEY)).write_bytes(b"junk")
    store.get(KEY)
    ledger = store.root / LEDGER_FILENAME
    ledger.write_text(ledger.read_text() + "not json\n", encoding="utf-8")
    assert len(store.ledger_entries()) == 1  # bad line skipped, not fatal


def test_fsck_clean_on_healthy_store(store):
    for n in range(3):
        store.put((*KEY[:1], n, *KEY[2:]), sample_payload(n))
    report = store.fsck()
    assert report.clean
    assert report.scanned == report.verified == 3
    assert not report.problems


def test_fsck_no_repair_reports_without_touching(store):
    store.put(KEY, sample_payload())
    path = store.object_path(store.digest_of(KEY))
    path.write_bytes(b"junk")
    report = store.fsck(repair=False)
    assert not report.clean
    assert report.problems
    assert path.exists(), "--no-repair must not move anything"


def test_fsck_repairs_then_second_pass_is_clean(store):
    for n in range(3):
        store.put((*KEY[:1], n, *KEY[2:]), sample_payload(n))
    victim = store.object_path(store.digest_of((*KEY[:1], 1, *KEY[2:])))
    victim.write_bytes(b"junk")
    first = store.fsck()
    assert first.repaired
    assert first.quarantined == 1
    assert first.verified == 2
    second = store.fsck()
    assert second.clean
    assert second.quarantine_total == 1  # evidence still there


def test_recover_replays_staged_journal_entry(store):
    # Simulate a crash after the WAL write but before publish: stage the
    # record by hand and never write the object.
    from repro.store.cas import RECORD_FORMAT
    from repro.store.integrity import canonical_json

    payload = sample_payload()
    digest = store.digest_of(KEY)
    record = {
        "format": RECORD_FORMAT,
        "digest": digest,
        "key": list(KEY),
        "code_version": store.code_version,
        "checksum": payload_checksum(payload),
        "payload": payload,
    }
    store.journal.stage(digest, canonical_json(record))
    assert store.get(KEY) is None  # not published yet

    report = store.recover()
    assert report.replayed == 1
    assert store.get(KEY) == payload
    assert store.journal.pending() == []


def test_recover_clears_stale_journal_entry(store):
    store.put(KEY, sample_payload())
    # Crash between publish and clear: the WAL survives next to a good
    # object. Recovery must drop the WAL without touching the object.
    store.journal.stage(
        store.digest_of(KEY),
        store.object_path(store.digest_of(KEY)).read_text("utf-8"),
    )
    report = store.recover()
    assert report.cleared == 1
    assert store.get(KEY) == sample_payload()


def test_recover_quarantines_torn_journal_entry(store):
    digest = store.digest_of(KEY)
    store.journal.stage(digest, '{"torn": ')
    report = store.recover()
    assert report.quarantined == 1
    assert store.journal.pending() == []
    assert store.quarantined_count() == 1


def test_fsck_sweeps_tmp_litter(store):
    store.put(KEY, sample_payload())
    litter = store.objects_dir / "ab" / "half-written.json.1234.0.tmp"
    litter.parent.mkdir(parents=True, exist_ok=True)
    litter.write_bytes(b"partial")
    report = store.fsck()
    assert report.swept_tmp == 1
    assert not litter.exists()


def test_stats_shape(store):
    store.put(KEY, sample_payload())
    stats = store.stats()
    assert stats["objects"] == 1
    assert stats["journal_pending"] == 0
    assert stats["quarantined"] == 0


def test_compute_log_round_trip(store):
    store.log_compute(KEY, "worker-1")
    entries = store.compute_log()
    assert len(entries) == 1
    assert entries[0]["worker"] == "worker-1"
    assert entries[0]["digest"] == store.digest_of(KEY)


def test_real_simresult_round_trip_is_bit_identical(tmp_path):
    """The default codec serves back an equal SimResult."""
    from repro.sim.runner import run_workload

    result = run_workload("olden.treeadd", "BC", seed=1, scale=0.05)
    real_store = ResultStore(tmp_path / "real")
    key = ("olden.treeadd", 1, 0.05, "BC", 1.0)
    assert real_store.put(key, result) is True
    served = ResultStore(tmp_path / "real").get(key)
    assert served == result
