"""Campaign assembly, reproducibility, checkpoint resume and the CLI."""

from __future__ import annotations

import json

import pytest

from repro.errors import UsageError
from repro.inject.__main__ import main
from repro.inject.campaign import (
    build_cells,
    format_report,
    run_cell,
    run_campaign,
    summarize,
)

# One cheap, deterministic cell reused across tests (module-scope cache).
_CELL_KW = dict(
    config="CPP", protects=("none",), seed=3, seeds=1, n_ops=120
)


class TestBuildCells:
    def test_key_shape_and_count(self):
        cells = build_cells(
            config="CPP", protects=("none", "secded"), seed=0, seeds=3
        )
        assert len(cells) == 6
        keys = {c["key"] for c in cells}
        assert len(keys) == 6
        for cell in cells:
            config, protect, recover, master, fid = cell["key"]
            assert config == "CPP" and recover == "refetch"
            assert protect in ("none", "secded")

    def test_unknown_config_is_usage_error(self):
        with pytest.raises(UsageError) as err:
            build_cells(config="ZPP")
        assert "ZPP" in str(err.value)
        assert "CPP" in str(err.value)  # valid choices are listed

    def test_unknown_protect_is_usage_error(self):
        with pytest.raises(UsageError) as err:
            build_cells(protects=("chipkill",))
        assert "secded" in str(err.value)

    def test_unknown_recover_is_usage_error(self):
        with pytest.raises(UsageError) as err:
            build_cells(recover="reboot")
        assert "refetch" in str(err.value)


class TestRunCell:
    def test_deterministic_record(self):
        (cell,) = build_cells(**_CELL_KW)
        first = run_cell(dict(cell))
        second = run_cell(dict(cell))
        assert first == second
        assert first["outcome"] in (
            "masked",
            "detected_recovered",
            "detected_uncorrectable",
            "sdc",
            "not_fired",
        )

    def test_protection_changes_only_the_armed_model(self):
        (cell,) = build_cells(**_CELL_KW)
        protected = dict(cell, protect="secded")
        record = run_cell(protected)
        assert record["protect"] == "secded"
        assert record["outcome"] != "sdc"


class TestRunCampaign:
    def test_checkpoint_resume_is_lossless(self, tmp_path):
        cells = build_cells(
            config="CPP", protects=("none", "secded"), seed=1, seeds=2,
            n_ops=120,
        )
        path = tmp_path / "inject.ckpt"
        first = run_campaign(cells, timeout=120, checkpoint_path=path)
        assert not first.failures
        assert len(first.results) == len(cells)
        # Every cell is checkpointed; the rerun replays from disk and
        # reproduces the identical classification for every key.
        resumed = run_campaign(cells, timeout=120, checkpoint_path=path)
        assert resumed.results == first.results

    def test_rerun_reproduces_classifications(self):
        cells = build_cells(**_CELL_KW)
        a = run_campaign(cells, timeout=120)
        b = run_campaign(cells, timeout=120)
        assert a.results == b.results


class TestReporting:
    def _results(self):
        cells = build_cells(
            config="CPP", protects=("none", "secded"), seed=5, seeds=2,
            n_ops=120,
        )
        return {tuple(c["key"]): run_cell(dict(c)) for c in cells}

    def test_summarize_histograms(self):
        results = self._results()
        summary = summarize(results)
        assert summary["cells"] == 4
        assert set(summary["by_protect"]) == {"none", "secded"}
        for hist in summary["by_protect"].values():
            assert sum(hist.values()) == 2

    def test_report_tail_line_is_machine_readable(self):
        summary = summarize(self._results())
        report = format_report(summary)
        tail = [
            line for line in report.splitlines()
            if line.startswith("INJECT-SUMMARY ")
        ]
        assert len(tail) == 1
        payload = json.loads(tail[0].split(" ", 1)[1])
        assert payload["cells"] == 4
        assert payload["by_protect"] == summary["by_protect"]


class TestCli:
    def test_usage_errors_exit_one_without_traceback(self, capsys):
        assert main(["--seeds", "0"]) == 1
        assert main(["--seed", "-1"]) == 1
        assert main(["--retries", "-2"]) == 1
        assert main(["--timeout", "0"]) == 1
        assert main(["--config", "ZPP"]) == 1
        assert main(["--protect", "chipkill"]) == 1
        assert main(["--recover", "reboot"]) == 1
        assert main(["--assert-no-sdc", "chipkill"]) == 1
        err = capsys.readouterr().err
        assert "error:" in err
        assert "Traceback" not in err

    def test_small_campaign_end_to_end(self, tmp_path, capsys):
        out = tmp_path / "records.json"
        status = main(
            [
                "--seeds", "2", "--ops", "120", "--protect", "secded",
                "--assert-no-sdc", "secded", "--json", str(out),
            ]
        )
        assert status == 0
        captured = capsys.readouterr()
        assert "INJECT-SUMMARY" in captured.out
        payload = json.loads(out.read_text())
        assert payload["summary"]["cells"] == 2
        assert payload["summary"]["by_protect"]["secded"]["sdc"] == 0

    def test_assert_no_sdc_gate_fails_on_unran_model(self, capsys):
        status = main(
            [
                "--seeds", "1", "--ops", "120", "--protect", "none",
                "--assert-no-sdc", "secded",
            ]
        )
        assert status == 1
        assert "no cells ran" in capsys.readouterr().err
