"""Multi-seed statistics: how robust are the comparisons to input noise?

The paper reports single runs per benchmark (reference inputs). Our
workloads are parameterized by an RNG seed, so the reproduction can do
better: run each (workload, configuration) across several seeds and
report the mean, spread and per-seed win/loss record of any metric —
turning "CPP is 7 % faster" into "CPP is 7 +/- 1 % faster on every seed".
"""

from __future__ import annotations

import math
from collections.abc import Callable, Sequence
from dataclasses import dataclass, field

from repro.errors import ExperimentError
from repro.sim.results import SimResult
from repro.sim.runner import run_workload

__all__ = ["SeedStats", "sweep_seeds", "compare_over_seeds", "SweepComparison"]


@dataclass(frozen=True)
class SeedStats:
    """Summary statistics of one metric across seeds."""

    workload: str
    config: str
    metric: str
    values: tuple[float, ...]

    @property
    def n(self) -> int:
        return len(self.values)

    @property
    def mean(self) -> float:
        return sum(self.values) / self.n

    @property
    def stddev(self) -> float:
        if self.n < 2:
            return 0.0
        m = self.mean
        return math.sqrt(sum((v - m) ** 2 for v in self.values) / (self.n - 1))

    @property
    def minimum(self) -> float:
        return min(self.values)

    @property
    def maximum(self) -> float:
        return max(self.values)


def sweep_seeds(
    workload: str,
    config: str,
    metric: Callable[[SimResult], float],
    *,
    seeds: Sequence[int] = (1, 2, 3),
    scale: float = 1.0,
    metric_name: str = "metric",
) -> SeedStats:
    """Measure *metric* for (workload, config) across *seeds*."""
    if not seeds:
        raise ExperimentError("at least one seed is required")
    values = tuple(
        float(metric(run_workload(workload, config, seed=seed, scale=scale)))
        for seed in seeds
    )
    return SeedStats(
        workload=workload, config=config, metric=metric_name, values=values
    )


@dataclass(frozen=True)
class SweepComparison:
    """Per-seed paired comparison of a metric between two configurations."""

    workload: str
    baseline: SeedStats
    test: SeedStats
    ratios: tuple[float, ...] = field(default=())

    @property
    def mean_ratio(self) -> float:
        return sum(self.ratios) / len(self.ratios)

    @property
    def wins(self) -> int:
        """Seeds where the test config's metric is strictly lower."""
        return sum(1 for r in self.ratios if r < 1.0)

    @property
    def always_wins(self) -> bool:
        return self.wins == len(self.ratios)


def compare_over_seeds(
    workload: str,
    *,
    baseline_config: str = "BC",
    test_config: str = "CPP",
    metric: Callable[[SimResult], float] = lambda r: float(r.cycles),
    seeds: Sequence[int] = (1, 2, 3),
    scale: float = 1.0,
    metric_name: str = "cycles",
) -> SweepComparison:
    """Paired per-seed comparison (same seed, both configs)."""
    base = sweep_seeds(
        workload, baseline_config, metric,
        seeds=seeds, scale=scale, metric_name=metric_name,
    )
    test = sweep_seeds(
        workload, test_config, metric,
        seeds=seeds, scale=scale, metric_name=metric_name,
    )
    ratios = tuple(
        t / b if b else 1.0 for t, b in zip(test.values, base.values)
    )
    return SweepComparison(
        workload=workload, baseline=base, test=test, ratios=ratios
    )
