"""Checkpoint loader corruption accounting (the silent-skip fix).

A malformed JSONL line in a matrix checkpoint must degrade to "this cell
re-simulates" — counted, warned about once with a line number, and
published as the ``checkpoint.malformed_lines`` metric — never a silent
skip and never a failed resume.
"""

from __future__ import annotations

import json

from repro.obs.metrics import REGISTRY
from repro.sim.fault import Checkpoint
from repro.sim.runner import run_workload

KEY = ("olden.treeadd", 1, 0.05, "BC", 1.0)


def _seed_checkpoint(path):
    checkpoint = Checkpoint(path)
    result = run_workload("olden.treeadd", "BC", seed=1, scale=0.05)
    checkpoint.add(KEY, result)
    return result


def test_clean_checkpoint_reports_zero_malformed(tmp_path):
    path = tmp_path / "matrix.jsonl"
    _seed_checkpoint(path)
    reloaded = Checkpoint(path)
    assert reloaded.malformed_lines == 0
    assert len(reloaded) == 1


def test_malformed_lines_are_counted_and_published(tmp_path):
    path = tmp_path / "matrix.jsonl"
    result = _seed_checkpoint(path)
    with path.open("a", encoding="utf-8") as fh:
        fh.write("{torn json\n")  # undecodable
        fh.write(json.dumps({"key": "not-a-list"}) + "\n")  # wrong shape
        fh.write(json.dumps({"no": "key"}) + "\n")  # wrong shape

    before = REGISTRY.counter("checkpoint.malformed_lines").value
    reloaded = Checkpoint(path)

    assert reloaded.malformed_lines == 3
    assert REGISTRY.counter("checkpoint.malformed_lines").value == before + 3
    # The intact cell still resumes, bit-identical.
    assert KEY in reloaded
    assert reloaded.get(KEY) == result


def test_malformed_warning_names_first_bad_line(tmp_path):
    from repro.obs import progress

    path = tmp_path / "matrix.jsonl"
    _seed_checkpoint(path)
    with path.open("a", encoding="utf-8") as fh:
        fh.write("{torn\n")

    messages: list[str] = []
    progress.set_sink(messages.append)
    try:
        Checkpoint(path)
    finally:
        progress.set_sink(None)
    out = "\n".join(messages)
    assert "skipped 1 malformed record(s)" in out
    assert "line 2" in out
