"""Naive reference models of every evaluated cache configuration.

These classes answer one question: *what should the optimized models in*
:mod:`repro.caches` *have done?* They re-implement the same protocols —
the paper's CPP design (§3) and the conventional BC/BCC/HAC/BCP levels —
with none of the hot-path machinery:

* frame content is plain dicts (``{word_index: value}``), not packed
  ``PA``/``VCP``/``AA`` bitmask ints;
* compressibility is recomputed from ``scheme.is_compressible`` on every
  use — there is no memo to go stale, which is exactly what makes the
  reference a check *of* the real model's ``VCP`` memo;
* bus packing is re-derived word by word from the scheme, independently
  of :func:`repro.compression.fastscalar.packed_bus_words_masked`.

What the reference deliberately shares with the real models is the
*protocol*, because the differential runner
(:class:`repro.check.diff.DifferentialRunner`) asserts per-access
equality of latency, serving level, loaded values, statistics and bus
traffic. That means replacement decisions (MRU-first LRU lists with the
same touch points), latency formulas (an L1 miss costs the downstream
response latency; an L2 fetch miss costs L2 hit latency plus the fill)
and counter discipline are mirrored statement for statement — naivety
lives in the data representation and in re-deriving every classification
and packing decision, not in making different protocol choices.

``build_reference_hierarchy`` assembles a full two-level reference
system for any of the five evaluated configurations, reusing the real
:class:`~repro.caches.hierarchy.Hierarchy` facade so the runner can
drive both sides through one interface.
"""

from __future__ import annotations

from repro.caches.interface import AccessResult, FetchResponse
from repro.caches.stats import CacheStats
from repro.errors import (
    CacheProtocolError,
    ConfigurationError,
    UnmappedAddressError,
)
from repro.memory.bus import TrafficKind
from repro.memory.image import WORD_BYTES
from repro.memory.main_memory import MainMemory
from repro.utils.bitmask import as_mask, as_words
from repro.utils.bitops import MASK32
from repro.utils.intmath import log2i

__all__ = [
    "ReferenceCache",
    "ReferenceClassicCache",
    "ReferenceMemoryPort",
    "ReferencePrefetchingCache",
    "build_reference_hierarchy",
]


def _mask_bits(mask: int):
    """Word indices selected by a packed mask, lowest first."""
    i = 0
    while mask:
        if mask & 1:
            yield i
        mask >>= 1
        i += 1


# ---- memory port ----------------------------------------------------------


class ReferenceMemoryPort:
    """Naive mirror of :class:`repro.caches.interface.MemoryPort`.

    Bus packing is recomputed per word from ``scheme.is_compressible``
    and the §2.1 format arithmetic (payload + one VC flag bit per word,
    rounded up to whole bus words) — independently of the fastscalar
    helper the real port uses.
    """

    def __init__(
        self,
        memory: MainMemory,
        *,
        fetch_compressed: bool = False,
        writeback_compressed: bool = False,
        scheme=None,
    ) -> None:
        if scheme is None:
            from repro.compression.scheme import PAPER_SCHEME

            scheme = PAPER_SCHEME
        self.memory = memory
        self.fetch_compressed = fetch_compressed
        self.writeback_compressed = writeback_compressed
        self.scheme = scheme

    def _packed_words(self, addr: int, values: list[int], mask: int) -> int:
        compressed_bits = int(getattr(self.scheme, "compressed_bits", 16))
        n = 0
        bits = 0
        for i in _mask_bits(mask):
            n += 1
            if self.scheme.is_compressible(values[i] & MASK32, (addr + (i << 2)) & MASK32):
                bits += compressed_bits
            else:
                bits += 32
        if n == 0:
            return 0
        bits += n  # one VC flag bit travels with every word
        return -(-bits // 32)

    def fetch(
        self,
        addr: int,
        n_words: int,
        need_word: int,
        *,
        kind: TrafficKind = TrafficKind.FILL,
        now: int = 0,
        pair_addr: int | None = None,
    ) -> FetchResponse:
        """Mirror of ``MemoryPort.fetch``; packing re-derived per word."""
        if addr % (n_words * WORD_BYTES):
            raise CacheProtocolError(f"unaligned line fetch at {addr:#x}")
        full = (1 << n_words) - 1
        values = self.memory.image.read_words_list(addr, n_words)
        bus_words = (
            self._packed_words(addr, values, full)
            if self.fetch_compressed
            else n_words
        )
        self.memory.bus.record(kind, bus_words)
        self.memory.n_reads += 1
        return FetchResponse(
            values=values,
            avail=full,
            latency=self.memory.latency,
            served_by="memory",
        )

    def fetch_pair(
        self,
        addr: int,
        n_words: int,
        affil_addr: int,
        *,
        kind: TrafficKind = TrafficKind.FILL,
    ) -> tuple[list[int], list[int] | None]:
        """Mirror of ``MemoryPort.fetch_pair`` (missing partner -> ``None``)."""
        line_bytes = n_words * WORD_BYTES
        if addr % line_bytes or affil_addr % line_bytes:
            raise CacheProtocolError("unaligned pair fetch")
        values = self.memory.image.read_words_list(addr, n_words)
        try:
            affil_values = self.memory.image.read_words_list(affil_addr, n_words)
        except UnmappedAddressError:
            affil_values = None
        self.memory.bus.record(kind, n_words)
        self.memory.n_reads += 1
        return values, affil_values

    def supply_prefetch(
        self, addr: int, n_words: int, now: int = 0
    ) -> tuple[list[int], int]:
        """Mirror of ``MemoryPort.supply_prefetch`` (prefetch traffic, no install)."""
        if addr % (n_words * WORD_BYTES):
            raise CacheProtocolError(f"unaligned prefetch at {addr:#x}")
        values = self.memory.image.read_words_list(addr, n_words)
        bus_words = (
            self._packed_words(addr, values, (1 << n_words) - 1)
            if self.fetch_compressed
            else n_words
        )
        self.memory.bus.record(TrafficKind.PREFETCH, bus_words)
        self.memory.n_reads += 1
        return values, self.memory.latency

    def write_back(self, addr: int, values, mask, comp: int | None = None) -> None:
        """Mirror of ``MemoryPort.write_back``; packed size re-derived naively."""
        values = as_words(values)
        mask = as_mask(mask)
        if self.writeback_compressed:
            packed = self._packed_words(addr, values, mask)
            self.memory.write_line(addr, values, mask=mask, bus_words=packed)
        else:
            self.memory.write_line(addr, values, mask=mask)


# ---- conventional reference ------------------------------------------------


class _RefLine:
    """One classic line: always full when present."""

    def __init__(self) -> None:
        self.line_no: int | None = None
        self.dirty = False
        self.data: list[int] = []

    @property
    def valid(self) -> bool:
        return self.line_no is not None

    def invalidate(self) -> None:
        self.line_no = None
        self.dirty = False
        self.data = []


class ReferenceClassicCache:
    """Naive mirror of :class:`repro.caches.base.Cache` (BC/BCC/HAC)."""

    def __init__(
        self,
        name: str,
        *,
        size_bytes: int,
        assoc: int,
        line_bytes: int,
        hit_latency: int,
        downstream,
        stats: CacheStats | None = None,
    ) -> None:
        self.name = name
        self.assoc = assoc
        self.line_bytes = line_bytes
        self.line_words = line_bytes // WORD_BYTES
        self.n_sets = size_bytes // (line_bytes * assoc)
        self.line_shift = log2i(line_bytes)
        self.set_mask = self.n_sets - 1
        self.hit_latency = hit_latency
        self.downstream = downstream
        self.full_mask = (1 << self.line_words) - 1
        self.stats = stats if stats is not None else CacheStats(name=name)
        # MRU-first, like the real model's replacement lists.
        self._sets: list[list[_RefLine]] = [
            [_RefLine() for _ in range(assoc)] for _ in range(self.n_sets)
        ]

    # -- geometry --

    def line_no(self, addr: int) -> int:
        """Line number of *addr*."""
        return addr >> self.line_shift

    def line_addr(self, line_no: int) -> int:
        """Base byte address of line *line_no*."""
        return line_no << self.line_shift

    def word_index(self, addr: int) -> int:
        """Word offset of *addr* inside its line."""
        return (addr >> 2) & (self.line_words - 1)

    # -- lookup / replacement --

    def _find(self, line_no: int) -> _RefLine | None:
        ways = self._sets[line_no & self.set_mask]
        for i, line in enumerate(ways):
            if line.valid and line.line_no == line_no:
                if i:
                    ways.insert(0, ways.pop(i))
                return line
        return None

    def probe(self, addr: int) -> bool:
        """Presence check without LRU or stats side effects."""
        line_no = addr >> self.line_shift
        return any(
            line.valid and line.line_no == line_no
            for line in self._sets[line_no & self.set_mask]
        )

    def peek_line(self, line_no: int) -> list[int] | None:
        """Resident line data without LRU or stats side effects."""
        for line in self._sets[line_no & self.set_mask]:
            if line.valid and line.line_no == line_no:
                return line.data
        return None

    def supply_prefetch(
        self, addr: int, n_words: int, now: int = 0
    ) -> tuple[list[int], int]:
        """Mirror of ``Cache.supply_prefetch``: peek, else forward down."""
        line_no = self.line_no(addr)
        offset = (addr >> 2) & (self.line_words - 1)
        data = self.peek_line(line_no)
        if data is not None:
            return data[offset : offset + n_words], self.hit_latency
        values, below = self.downstream.supply_prefetch(addr, n_words, now)
        return values, self.hit_latency + below

    def _evict_victim(self, set_idx: int) -> _RefLine:
        ways = self._sets[set_idx]
        victim = ways[-1]
        if victim.valid and victim.dirty:
            self.stats.writebacks += 1
            self.downstream.write_back(
                self.line_addr(victim.line_no), victim.data, self.full_mask
            )
        victim.invalidate()
        return victim

    def install_line(self, line_no: int, values) -> _RefLine:
        """Place a full line, evicting the LRU way; returns the line (MRU)."""
        set_idx = line_no & self.set_mask
        victim = self._evict_victim(set_idx)
        victim.line_no = line_no
        victim.dirty = False
        victim.data = [int(v) & MASK32 for v in values]
        ways = self._sets[set_idx]
        ways.insert(0, ways.pop(ways.index(victim)))
        return victim

    # -- CPU-facing role --

    def access(
        self, addr: int, write: bool = False, value: int | None = None, now: int = 0
    ) -> AccessResult:
        """Mirror of ``Cache.access``: one word-sized CPU access."""
        line_no = addr >> self.line_shift
        widx = (addr >> 2) & (self.line_words - 1)
        line = self._find(line_no)
        if line is not None:
            self.stats.record_access(hit=True)
            if write:
                self._write_word(line, widx, value)
            return AccessResult(
                self.hit_latency, "l1", None if write else line.data[widx]
            )
        self.stats.record_access(hit=False)
        resp = self.downstream.fetch(
            self.line_addr(line_no), self.line_words, widx, now=now
        )
        if resp.avail != self.full_mask:
            raise CacheProtocolError(
                f"{self.name}: classic cache received a partial fill"
            )
        line = self.install_line(line_no, resp.values)
        if write:
            self._write_word(line, widx, value)
        return AccessResult(
            latency=resp.latency,
            served_by=resp.served_by,
            value=None if write else line.data[widx],
        )

    def _write_word(self, line: _RefLine, widx: int, value: int | None) -> None:
        if value is None:
            raise CacheProtocolError("store access requires a value")
        line.data[widx] = value & MASK32
        line.dirty = True

    # -- LineSource role --

    def fetch(
        self,
        addr: int,
        n_words: int,
        need_word: int,
        *,
        kind: TrafficKind = TrafficKind.FILL,
        record: bool = True,
        now: int = 0,
        pair_addr: int | None = None,
    ) -> FetchResponse:
        """Mirror of ``Cache.fetch``: serve a sub-line request from above."""
        if n_words > self.line_words or self.line_words % n_words:
            raise CacheProtocolError(
                f"{self.name}: cannot serve {n_words}-word fetch from "
                f"{self.line_words}-word lines"
            )
        if addr % (n_words * WORD_BYTES):
            raise CacheProtocolError(f"unaligned fetch at {addr:#x}")
        line_no = self.line_no(addr)
        offset = (addr >> 2) & (self.line_words - 1)
        line = self._find(line_no)
        if line is not None:
            if record:
                self.stats.record_access(hit=True)
            latency = self.hit_latency
            served = "l2"
        else:
            if record:
                self.stats.record_access(hit=False)
            resp = self.downstream.fetch(
                self.line_addr(line_no),
                self.line_words,
                offset + need_word,
                kind=kind,
                now=now,
            )
            line = self.install_line(line_no, resp.values)
            latency = self.hit_latency + resp.latency
            served = resp.served_by
        return FetchResponse(
            values=line.data[offset : offset + n_words],
            avail=(1 << n_words) - 1,
            latency=latency,
            served_by=served,
        )

    def write_back(self, addr: int, values, mask, comp: int | None = None) -> None:
        """Mirror of ``Cache.write_back`` (write-allocate merge)."""
        values = as_words(values)
        mask = as_mask(mask)
        n_words = len(values)
        if addr % (n_words * WORD_BYTES):
            raise CacheProtocolError(f"unaligned writeback at {addr:#x}")
        line_no = self.line_no(addr)
        offset = (addr >> 2) & (self.line_words - 1)
        line = self._find(line_no)
        if line is None:
            resp = self.downstream.fetch(
                self.line_addr(line_no), self.line_words, offset
            )
            line = self.install_line(line_no, resp.values)
        for i in _mask_bits(mask):
            line.data[offset + i] = values[i] & MASK32
        line.dirty = True

    # -- introspection --

    def contents(self) -> list[tuple[int, bool]]:
        """(line_no, dirty) of every valid line."""
        return [
            (line.line_no, line.dirty)
            for ways in self._sets
            for line in ways
            if line.valid
        ]

    def flush(self) -> None:
        """Write back all dirty lines and invalidate everything."""
        for ways in self._sets:
            for line in ways:
                if line.valid and line.dirty:
                    self.stats.writebacks += 1
                    self.downstream.write_back(
                        self.line_addr(line.line_no), line.data, self.full_mask
                    )
                line.invalidate()


# ---- next-line prefetch reference (BCP) ------------------------------------


class _RefBuffer:
    """Naive fully-associative LRU prefetch buffer: a plain list,
    oldest entry first, each entry ``[line_no, data, ready_cycle]``."""

    def __init__(self, n_entries: int) -> None:
        self.n_entries = n_entries
        self.entries: list[list] = []

    def __contains__(self, line_no: int) -> bool:
        return any(e[0] == line_no for e in self.entries)

    def insert(self, line_no: int, data, ready_cycle: int) -> None:
        for i, e in enumerate(self.entries):
            if e[0] == line_no:
                del self.entries[i]
                break
        else:
            if len(self.entries) >= self.n_entries:
                del self.entries[0]
        self.entries.append([line_no, [int(v) for v in data], ready_cycle])

    def pop(self, line_no: int):
        for i, e in enumerate(self.entries):
            if e[0] == line_no:
                del self.entries[i]
                return e
        return None

    def peek(self, line_no: int):
        for e in self.entries:
            if e[0] == line_no:
                return e
        return None

    def clear(self) -> None:
        self.entries = []


class ReferencePrefetchingCache:
    """Naive mirror of :class:`repro.caches.next_line.PrefetchingCache`."""

    def __init__(self, cache: ReferenceClassicCache, buffer_entries: int) -> None:
        self.cache = cache
        self.buffer = _RefBuffer(buffer_entries)
        self.stats = cache.stats

    @property
    def name(self) -> str:
        return self.cache.name

    @property
    def line_words(self) -> int:
        return self.cache.line_words

    @property
    def hit_latency(self) -> int:
        return self.cache.hit_latency

    def _issue_prefetch(self, missed_line_no: int, now: int) -> None:
        target = missed_line_no + 1
        target_addr = self.cache.line_addr(target)
        if self.cache.probe(target_addr) or target in self.buffer:
            return
        values, latency = self.cache.downstream.supply_prefetch(
            target_addr, self.cache.line_words, now
        )
        self.buffer.insert(target, values, now + latency)
        self.stats.prefetches_issued += 1

    def access(
        self, addr: int, write: bool = False, value: int | None = None, now: int = 0
    ) -> AccessResult:
        """Mirror of ``PrefetchingCache.access``: cache, buffer, then demand fetch."""
        line_no = self.cache.line_no(addr)
        if self.cache.probe(addr):
            return self.cache.access(addr, write=write, value=value, now=now)
        entry = self.buffer.pop(line_no)
        if entry is not None:
            _, data, ready_cycle = entry
            self.cache.install_line(line_no, data)
            result = self.cache.access(addr, write=write, value=value, now=now)
            self._issue_prefetch(line_no, now)
            if now >= ready_cycle:
                self.stats.buffer_hits += 1
                self.stats.prefetches_useful += 1
                return AccessResult(
                    latency=result.latency, served_by="l1-buffer", value=result.value
                )
            self.stats.hits -= 1  # reclassify the cache.access hit as a miss
            self.stats.misses += 1
            self.stats.extra["late_prefetch_hits"] = (
                self.stats.extra.get("late_prefetch_hits", 0) + 1
            )
            return AccessResult(
                latency=ready_cycle - now,
                served_by="l1-buffer-late",
                value=result.value,
            )
        result = self.cache.access(addr, write=write, value=value, now=now)
        self._issue_prefetch(line_no, now)
        return result

    def fetch(
        self,
        addr: int,
        n_words: int,
        need_word: int,
        *,
        kind: TrafficKind = TrafficKind.FILL,
        now: int = 0,
        pair_addr: int | None = None,
    ) -> FetchResponse:
        """Mirror of ``PrefetchingCache.fetch``: cache, buffer, then below."""
        line_no = self.cache.line_no(addr)
        if self.cache.probe(addr):
            return self.cache.fetch(addr, n_words, need_word, kind=kind, now=now)
        entry = self.buffer.pop(line_no)
        if entry is not None:
            _, data, ready_cycle = entry
            self.cache.install_line(line_no, data)
            resp = self.cache.fetch(
                addr, n_words, need_word, kind=kind, record=False, now=now
            )
            self._issue_prefetch(line_no, now)
            if now >= ready_cycle:
                self.stats.record_access(hit=True)
                self.stats.buffer_hits += 1
                self.stats.prefetches_useful += 1
                return FetchResponse(
                    values=resp.values,
                    avail=resp.avail,
                    latency=resp.latency,
                    served_by="l2-buffer",
                )
            self.stats.record_access(hit=False)
            self.stats.extra["late_prefetch_hits"] = (
                self.stats.extra.get("late_prefetch_hits", 0) + 1
            )
            return FetchResponse(
                values=resp.values,
                avail=resp.avail,
                latency=max(resp.latency, ready_cycle - now),
                served_by="l2-buffer-late",
            )
        resp = self.cache.fetch(addr, n_words, need_word, kind=kind, now=now)
        self._issue_prefetch(line_no, now)
        return resp

    def supply_prefetch(self, addr: int, n_words: int, now: int = 0):
        """Mirror of ``PrefetchingCache.supply_prefetch`` (never installs)."""
        line_no = self.cache.line_no(addr)
        offset = (addr >> 2) & (self.cache.line_words - 1)
        data = self.cache.peek_line(line_no)
        if data is not None:
            return data[offset : offset + n_words], self.cache.hit_latency
        entry = self.buffer.peek(line_no)
        if entry is not None:
            _, buffered, ready_cycle = entry
            latency = max(self.cache.hit_latency, ready_cycle - now)
            return buffered[offset : offset + n_words], latency
        values, below = self.cache.downstream.supply_prefetch(addr, n_words, now)
        return values, self.cache.hit_latency + below

    def write_back(self, addr: int, values, mask, comp: int | None = None) -> None:
        """Mirror of ``PrefetchingCache.write_back`` (merge buffered copy first)."""
        line_no = self.cache.line_no(addr)
        if not self.cache.probe(addr):
            entry = self.buffer.pop(line_no)
            if entry is not None:
                self.cache.install_line(line_no, entry[1])
        self.cache.write_back(addr, values, mask, comp)

    def flush(self) -> None:
        """Flush the wrapped cache and drop the clean buffer contents."""
        self.cache.flush()
        self.buffer.clear()


# ---- CPP reference ----------------------------------------------------------


class _RefFrame:
    """One CPP frame, naive form: two dicts instead of three bitmasks."""

    def __init__(self) -> None:
        self.line_no: int | None = None
        self.dirty = False
        self.primary: dict[int, int] = {}
        self.affiliated: dict[int, int] = {}

    @property
    def valid(self) -> bool:
        return self.line_no is not None

    def invalidate(self) -> None:
        self.line_no = None
        self.dirty = False
        self.primary = {}
        self.affiliated = {}


class ReferenceCache:
    """Naive mirror of :class:`repro.caches.compression_cache.CompressionCache`.

    Differences from the real model, all representational:

    * per-frame state is ``{word_index: value}`` dicts (primary and
      affiliated) — no ``PA``/``VCP``/``AA`` packed ints;
    * compressibility is recomputed from ``scheme.is_compressible`` at
      every decision point (space rule, stash, ride-along, slot
      reclamation) — the real model's ``VCP`` memo has no counterpart
      here, so a stale memo shows up as a divergence;
    * no fast paths: every lookup is a linear scan of the set.

    Protocol decisions (replacement touches, promote/stash/fill
    sequencing, latency formulas, stats) mirror the real model exactly.
    """

    def __init__(
        self,
        name: str,
        *,
        size_bytes: int,
        assoc: int,
        line_bytes: int,
        hit_latency: int,
        downstream,
        scheme=None,
        policy=None,
        stats: CacheStats | None = None,
    ) -> None:
        if scheme is None:
            from repro.compression.scheme import PAPER_SCHEME

            scheme = PAPER_SCHEME
        if policy is None:
            from repro.caches.compression_cache import CPPPolicy

            policy = CPPPolicy()
        self.name = name
        self.assoc = assoc
        self.line_bytes = line_bytes
        self.line_words = line_bytes // WORD_BYTES
        self.n_sets = size_bytes // (line_bytes * assoc)
        self.line_shift = log2i(line_bytes)
        self.set_mask = self.n_sets - 1
        self.hit_latency = hit_latency
        self.downstream = downstream
        self.scheme = scheme
        self.policy = policy
        self.full_mask = (1 << self.line_words) - 1
        self.stats = stats if stats is not None else CacheStats(name=name)
        self._sets: list[list[_RefFrame]] = [
            [_RefFrame() for _ in range(assoc)] for _ in range(self.n_sets)
        ]

    # -- geometry --

    def line_no(self, addr: int) -> int:
        """Line number of *addr*."""
        return addr >> self.line_shift

    def line_addr(self, line_no: int) -> int:
        """Base byte address of line *line_no*."""
        return line_no << self.line_shift

    def word_index(self, addr: int) -> int:
        """Word offset of *addr* inside its line."""
        return (addr >> 2) & (self.line_words - 1)

    def affiliated_line(self, line_no: int) -> int:
        """``line_no XOR mask`` — the paper's pairing function."""
        return line_no ^ self.policy.mask

    # -- naive classification (recomputed every time) --

    def _word_addr(self, line_no: int, i: int) -> int:
        return (line_no << self.line_shift) + (i << 2)

    def _compressible(self, value: int, addr: int) -> bool:
        return bool(self.scheme.is_compressible(value & MASK32, addr & MASK32))

    def _pair_fits(self) -> bool:
        """Can two compressed words share one 32-bit slot?"""
        return 2 * int(getattr(self.scheme, "compressed_bits", 16)) <= 32

    def _slot_free(self, frame: _RefFrame, i: int) -> bool:
        """Space rule, re-derived from values: slot *i* can hold an
        affiliated word iff the primary word there is absent, or is
        itself compressible *and* the scheme is narrow enough to pair."""
        if i not in frame.primary:
            return True
        if not self._pair_fits():
            return False
        return self._compressible(
            frame.primary[i], self._word_addr(frame.line_no, i)
        )

    # -- lookup --

    def _find_primary(self, line_no: int, *, touch: bool = True) -> _RefFrame | None:
        ways = self._sets[line_no & self.set_mask]
        for i, frame in enumerate(ways):
            if frame.valid and frame.line_no == line_no:
                if touch and i:
                    ways.insert(0, ways.pop(i))
                return frame
        return None

    def _find_affiliated(self, line_no: int, *, touch: bool = True) -> _RefFrame | None:
        holder_no = line_no ^ self.policy.mask
        ways = self._sets[holder_no & self.set_mask]
        for i, frame in enumerate(ways):
            if frame.valid and frame.line_no == holder_no and frame.affiliated:
                if touch and i:
                    ways.insert(0, ways.pop(i))
                return frame
        return None

    def probe_word(self, addr: int) -> str | None:
        """Where is this word right now? 'primary' / 'affiliated' / None."""
        ln = self.line_no(addr)
        widx = self.word_index(addr)
        f = self._find_primary(ln, touch=False)
        if f is not None and widx in f.primary:
            return "primary"
        g = self._find_affiliated(ln, touch=False)
        if g is not None and widx in g.affiliated:
            return "affiliated"
        return None

    # -- eviction / stash --

    def _full_values(self, words: dict[int, int]) -> tuple[list[int], int]:
        """A dict rendered as (full-width list, packed presence mask)."""
        values = [words.get(i, 0) for i in range(self.line_words)]
        mask = 0
        for i in words:
            mask |= 1 << i
        return values, mask

    def _evict_lru(self, set_idx: int) -> _RefFrame:
        ways = self._sets[set_idx]
        victim = ways[-1]
        if victim.valid:
            if victim.dirty:
                self.stats.writebacks += 1
                values, mask = self._full_values(victim.primary)
                self.downstream.write_back(
                    self.line_addr(victim.line_no), values, mask, None
                )
            self._stash(victim)
        victim.invalidate()
        return victim

    def _stash(self, victim: _RefFrame) -> None:
        if not self.policy.stash_victims:
            return
        target = self._find_primary(
            self.affiliated_line(victim.line_no), touch=False
        )
        if target is None:
            return
        stored = {
            i: v
            for i, v in victim.primary.items()
            if self._compressible(v, self._word_addr(victim.line_no, i))
            and self._slot_free(target, i)
        }
        # Replacement semantics, like set_affiliated_words: the target's
        # previous affiliated content (empty by single-copy) is dropped.
        target.affiliated = stored
        if stored:
            self.stats.stashes += 1

    # -- fill --

    def _fill(self, line_no: int, need_widx: int, kind, now: int = 0):
        addr = self.line_addr(line_no)
        if isinstance(self.downstream, ReferenceMemoryPort):
            values, affil_values = self.downstream.fetch_pair(
                addr,
                self.line_words,
                self.line_addr(self.affiliated_line(line_no)),
                kind=kind,
            )
            resp = FetchResponse(
                values=values,
                avail=self.full_mask,
                latency=self.downstream.memory.latency,
                served_by="memory",
                affil_values=affil_values,
                affil_avail=None if affil_values is None else self.full_mask,
            )
        else:
            resp = self.downstream.fetch(
                addr,
                self.line_words,
                need_widx,
                kind=kind,
                now=now,
                pair_addr=self.line_addr(self.affiliated_line(line_no)),
            )
            resp.validate(self.line_words, need_widx)
        frame = self._install_fill(line_no, resp)
        return frame, resp.latency, resp.served_by

    def _install_fill(self, line_no: int, resp: FetchResponse) -> _RefFrame:
        frame = self._find_primary(line_no)
        if frame is not None:
            # Fill only the holes; resident words may be dirty and newer.
            for i in _mask_bits(resp.avail):
                if i not in frame.primary:
                    frame.primary[i] = resp.values[i] & MASK32
            self._drop_illegal_affiliated(frame)
        else:
            set_idx = line_no & self.set_mask
            victim = self._evict_lru(set_idx)
            victim.line_no = line_no
            victim.dirty = False
            victim.primary = {
                i: resp.values[i] & MASK32 for i in _mask_bits(resp.avail)
            }
            victim.affiliated = {}
            ways = self._sets[set_idx]
            ways.insert(0, ways.pop(ways.index(victim)))
            frame = victim
        if resp.avail != self.full_mask:
            self.stats.partial_fills += 1

        # Single-copy: merge a resident affiliated copy of this line into
        # the fresh primary, then clear it.
        holder = self._find_primary(self.affiliated_line(line_no), touch=False)
        if holder is not None and holder is not frame and holder.affiliated:
            for i, v in holder.affiliated.items():
                if i not in frame.primary:
                    frame.primary[i] = v
            holder.affiliated = {}

        # Install the piggy-backed partial prefetch, unless the affiliated
        # line is already resident as a primary line.
        aff_no = self.affiliated_line(line_no)
        if (
            resp.affil_values is not None
            and self._find_primary(aff_no, touch=False) is None
        ):
            installed = 0
            for i in _mask_bits(resp.affil_avail):
                if i in frame.affiliated:
                    continue
                if not self._slot_free(frame, i):
                    continue
                v = resp.affil_values[i] & MASK32
                if not self._compressible(v, self._word_addr(aff_no, i)):
                    continue
                frame.affiliated[i] = v
                installed += 1
            if installed:
                self.stats.prefetched_words += installed
        return frame

    def _drop_illegal_affiliated(self, frame: _RefFrame) -> None:
        """Re-apply the space rule after primary content changed."""
        drop = [i for i in frame.affiliated if not self._slot_free(frame, i)]
        for i in drop:
            del frame.affiliated[i]
        self.stats.dropped_affiliated_words += len(drop)

    # -- promotion --

    def _promote(self, line_no: int, holder: _RefFrame) -> _RefFrame:
        if self._find_primary(line_no, touch=False) is not None:
            raise CacheProtocolError(
                f"{self.name}: promoting {line_no:#x} which is already primary"
            )
        self.stats.promotions += 1
        values = dict(holder.affiliated)
        holder.affiliated = {}
        set_idx = line_no & self.set_mask
        victim = self._evict_lru(set_idx)
        victim.line_no = line_no
        victim.dirty = False
        victim.primary = values
        victim.affiliated = {}
        ways = self._sets[set_idx]
        ways.insert(0, ways.pop(ways.index(victim)))
        return victim

    # -- CPU-facing role --

    def access(
        self, addr: int, write: bool = False, value: int | None = None, now: int = 0
    ) -> AccessResult:
        """Mirror of ``CompressionCache.access``: one word-sized CPU access."""
        ln = addr >> self.line_shift
        widx = (addr >> 2) & (self.line_words - 1)
        frame = self._find_primary(ln)
        if frame is not None and widx in frame.primary:
            self.stats.record_access(hit=True)
            if write:
                self._cpu_write(frame, widx, addr, value)
            return AccessResult(
                self.hit_latency, "l1", None if write else frame.primary[widx]
            )

        holder = self._find_affiliated(ln)
        if holder is not None and widx in holder.affiliated:
            self.stats.record_access(hit=True)
            self.stats.affiliated_hits += 1
            loaded = None if write else holder.affiliated[widx]
            if write:
                promoted = self._promote(ln, holder)
                self._cpu_write(promoted, widx, addr, value)
            return AccessResult(
                latency=self.hit_latency + self.policy.affiliated_extra_latency,
                served_by="l1-affiliated",
                value=loaded,
            )

        hole = frame is not None or holder is not None
        if hole:
            self.stats.hole_misses += 1
        self.stats.record_access(hit=False)
        frame, latency, served = self._fill(ln, widx, TrafficKind.FILL, now)
        if widx not in frame.primary:
            raise CacheProtocolError(f"{self.name}: fill did not deliver the word")
        if write:
            self._cpu_write(frame, widx, addr, value)
        return AccessResult(
            latency=latency,
            served_by=served,
            value=None if write else frame.primary[widx],
        )

    def _cpu_write(
        self, frame: _RefFrame, widx: int, addr: int, value: int | None
    ) -> None:
        if value is None:
            raise CacheProtocolError("store access requires a value")
        if widx not in frame.primary:
            raise CacheProtocolError("write to an absent primary word")
        value &= MASK32
        frame.primary[widx] = value
        keeps_slot = self._pair_fits() and self._compressible(value, addr)
        if not keeps_slot and widx in frame.affiliated:
            del frame.affiliated[widx]
            self.stats.dropped_affiliated_words += 1
        frame.dirty = True

    # -- LineSource role --

    def fetch(
        self,
        addr: int,
        n_words: int,
        need_word: int,
        *,
        kind: TrafficKind = TrafficKind.FILL,
        now: int = 0,
        pair_addr: int | None = None,
    ) -> FetchResponse:
        """Mirror of ``CompressionCache.fetch``: word-based sub-line request."""
        if addr % (n_words * WORD_BYTES):
            raise CacheProtocolError(f"unaligned fetch at {addr:#x}")
        if self.line_words % n_words:
            raise CacheProtocolError(
                f"{self.name}: cannot serve {n_words}-word fetch from "
                f"{self.line_words}-word lines"
            )
        ln = self.line_no(addr)
        offset = (addr >> 2) & (self.line_words - 1)
        need_idx = offset + need_word

        def has_all(words: dict[int, int]) -> bool:
            if self.policy.serve_partial:
                return need_idx in words
            return all((offset + j) in words for j in range(n_words))

        src: dict[int, int] | None = None
        tag = ""
        extra = 0
        frame = self._find_primary(ln)
        if frame is not None and has_all(frame.primary):
            src, tag = frame.primary, "l2"
        else:
            holder = self._find_affiliated(ln)
            if holder is not None and has_all(holder.affiliated):
                src, tag = holder.affiliated, "l2-affiliated"
                extra = self.policy.affiliated_extra_latency

        if src is not None:
            self.stats.record_access(hit=True)
            if tag == "l2-affiliated":
                self.stats.affiliated_hits += 1
            latency = self.hit_latency + extra
        else:
            if (
                self._find_primary(ln, touch=False) is not None
                or self._find_affiliated(ln, touch=False) is not None
            ):
                self.stats.hole_misses += 1
            self.stats.record_access(hit=False)
            filled, fill_latency, _ = self._fill(ln, need_idx, kind, now)
            src = filled.primary
            latency = self.hit_latency + fill_latency
            tag = "memory"

        def word_comp(i: int) -> bool:
            # Affiliated words are compressible by invariant (and the
            # real model serves its AA mask as the comp mask); primary
            # words are re-classified from their value and address.
            if tag == "l2-affiliated":
                return True
            return self._compressible(src[i], self._word_addr(ln, i))

        out_values = [src.get(offset + j, 0) for j in range(n_words)]
        out_avail = 0
        for j in range(n_words):
            if (offset + j) in src:
                out_avail |= 1 << j

        affil_values = affil_avail = None
        if pair_addr is not None and pair_addr >> self.line_shift == ln:
            pair_off = (pair_addr >> 2) & (self.line_words - 1)
            affil_values = [src.get(pair_off + j, 0) for j in range(n_words)]
            ride = 0
            for j in range(n_words):
                pw = pair_off + j
                if pw not in src or not word_comp(pw):
                    continue
                req = offset + j
                slot_ok = req not in src or (
                    self._pair_fits() and word_comp(req)
                )
                if slot_ok:
                    ride |= 1 << j
            affil_avail = ride
        # comp masks stay None: a naive receiver always classifies itself.
        return FetchResponse(
            values=out_values,
            avail=out_avail,
            latency=latency,
            served_by=tag,
            affil_values=affil_values,
            affil_avail=affil_avail,
        )

    def write_back(self, addr: int, values, mask, comp: int | None = None) -> None:
        """Mirror of ``CompressionCache.write_back`` (promote/fill, merge, drop)."""
        values = as_words(values)
        mask = as_mask(mask)
        n_words = len(values)
        if addr % (n_words * WORD_BYTES):
            raise CacheProtocolError(f"unaligned writeback at {addr:#x}")
        ln = self.line_no(addr)
        offset = (addr >> 2) & (self.line_words - 1)
        frame = self._find_primary(ln)
        if frame is None:
            holder = self._find_affiliated(ln)
            if holder is not None:
                frame = self._promote(ln, holder)
            else:
                frame, _, _ = self._fill(ln, offset, TrafficKind.FILL)
        for i in _mask_bits(mask):
            frame.primary[offset + i] = values[i] & MASK32
        self._drop_illegal_affiliated(frame)
        frame.dirty = True

    # -- maintenance --

    def flush(self) -> None:
        """Write back every dirty primary line and invalidate all frames."""
        for ways in self._sets:
            for frame in ways:
                if frame.valid and frame.dirty:
                    self.stats.writebacks += 1
                    values, mask = self._full_values(frame.primary)
                    self.downstream.write_back(
                        self.line_addr(frame.line_no), values, mask, None
                    )
                frame.invalidate()

    def contents(self) -> list[tuple[int, int, int, bool]]:
        """(line_no, n_primary, n_affiliated, dirty) per valid frame."""
        return [
            (f.line_no, len(f.primary), len(f.affiliated), f.dirty)
            for ways in self._sets
            for f in ways
            if f.valid
        ]

    def check_invariants(self) -> None:
        """Self-audit of the naive model (cheap; dicts can't go stale)."""
        primaries: set[int] = set()
        residents: set[int] = set()
        for set_idx, ways in enumerate(self._sets):
            for frame in ways:
                if not frame.valid:
                    if frame.primary or frame.affiliated or frame.dirty:
                        raise CacheProtocolError(
                            f"{self.name}: invalid reference frame carries state"
                        )
                    continue
                if frame.line_no & self.set_mask != set_idx:
                    raise CacheProtocolError(
                        f"{self.name}: line {frame.line_no:#x} in foreign set"
                    )
                if frame.line_no in primaries:
                    raise CacheProtocolError(
                        f"{self.name}: duplicate primary {frame.line_no:#x}"
                    )
                primaries.add(frame.line_no)
                aff_no = self.affiliated_line(frame.line_no)
                for i, v in frame.affiliated.items():
                    if not self._slot_free(frame, i):
                        raise CacheProtocolError(
                            f"{self.name}: affiliated word {i} in an illegal slot"
                        )
                    if not self._compressible(v, self._word_addr(aff_no, i)):
                        raise CacheProtocolError(
                            f"{self.name}: incompressible affiliated word {i}"
                        )
                if frame.affiliated:
                    residents.add(aff_no)
        both = primaries & residents
        if both:
            raise CacheProtocolError(
                f"{self.name}: lines both primary and affiliated: "
                f"{sorted(hex(b) for b in both)}"
            )


# ---- hierarchy assembly -----------------------------------------------------


def _ref_classic_levels(
    memory: MainMemory,
    p,
    *,
    assoc_multiplier: int = 1,
    compressed_bus: bool = False,
) -> tuple[ReferenceClassicCache, ReferenceClassicCache]:
    port = ReferenceMemoryPort(
        memory,
        fetch_compressed=compressed_bus,
        writeback_compressed=compressed_bus,
        scheme=p.scheme,
    )
    l2 = ReferenceClassicCache(
        "L2",
        size_bytes=p.l2_size,
        assoc=p.l2_assoc * assoc_multiplier,
        line_bytes=p.l2_line,
        hit_latency=p.l2_latency,
        downstream=port,
    )
    l1 = ReferenceClassicCache(
        "L1",
        size_bytes=p.l1_size,
        assoc=p.l1_assoc * assoc_multiplier,
        line_bytes=p.l1_line,
        hit_latency=p.l1_latency,
        downstream=l2,
    )
    return l1, l2


def build_reference_hierarchy(name: str, memory: MainMemory, params=None):
    """Reference twin of :func:`repro.caches.hierarchy.build_hierarchy`.

    Supports the paper's five evaluated configurations; reuses the real
    :class:`~repro.caches.hierarchy.Hierarchy` facade so the runner can
    drive the reference exactly as it drives the system under test.
    """
    from repro.caches.hierarchy import Hierarchy, HierarchyParams

    p = params or HierarchyParams()
    key = name.upper()
    if key in ("BC", "BCC", "HAC"):
        l1, l2 = _ref_classic_levels(
            memory,
            p,
            assoc_multiplier=2 if key == "HAC" else 1,
            compressed_bus=key == "BCC",
        )
    elif key == "BCP":
        l1_cache, l2_cache = _ref_classic_levels(memory, p)
        l2 = ReferencePrefetchingCache(l2_cache, p.l2_buffer_entries)
        l1_cache.downstream = l2
        l1 = ReferencePrefetchingCache(l1_cache, p.l1_buffer_entries)
    elif key == "CPP":
        port = ReferenceMemoryPort(
            memory,
            fetch_compressed=False,
            writeback_compressed=True,
            scheme=p.scheme,
        )
        l2 = ReferenceCache(
            "L2",
            size_bytes=p.l2_size,
            assoc=p.l2_assoc,
            line_bytes=p.l2_line,
            hit_latency=p.l2_latency,
            downstream=port,
            scheme=p.scheme,
            policy=p.cpp_policy,
        )
        l1 = ReferenceCache(
            "L1",
            size_bytes=p.l1_size,
            assoc=p.l1_assoc,
            line_bytes=p.l1_line,
            hit_latency=p.l1_latency,
            downstream=l2,
            scheme=p.scheme,
            policy=p.cpp_policy,
        )
    else:
        raise ConfigurationError(
            f"no reference model for configuration {name!r}"
        )
    return Hierarchy(key, l1, l2, memory, p)
