"""Machine-level tests: full trace execution per configuration."""

import pytest

from repro.sim.config import CONFIG_NAMES, SimConfig
from repro.sim.machine import Machine
from repro.workloads.registry import generate


@pytest.fixture(scope="module")
def small_program():
    return generate("olden.treeadd", seed=1, scale=0.08)


class TestMachine:
    @pytest.mark.parametrize("config", CONFIG_NAMES)
    def test_runs_and_verifies_all_configs(self, small_program, config):
        """Every configuration must return bit-correct data for every load
        of a real workload trace — the strongest single check on the cache
        models."""
        result = Machine(config, verify_loads=True).run(small_program)
        assert result.instructions == len(small_program.trace)
        assert result.cycles > 0
        assert result.config == config

    def test_accepts_config_object(self, small_program):
        result = Machine(SimConfig(cache_config="BC")).run(small_program)
        assert result.config == "BC"

    def test_runs_are_independent(self, small_program):
        """Two runs on the same Machine object must not share state."""
        machine = Machine("CPP")
        a = machine.run(small_program)
        b = machine.run(small_program)
        assert a.cycles == b.cycles
        assert a.bus_words == b.bus_words
        assert a.l1.misses == b.l1.misses

    def test_bcc_matches_bc_timing_but_not_traffic(self, small_program):
        bc = Machine("BC").run(small_program)
        bcc = Machine("BCC").run(small_program)
        assert bcc.cycles == bc.cycles
        assert bcc.l1.misses == bc.l1.misses
        assert bcc.l2.misses == bc.l2.misses
        assert bcc.bus_words < bc.bus_words

    def test_miss_scale_speeds_up(self):
        # Needs a working set beyond the 8 KB L1 so loads actually miss
        # (at tiny scales the whole tree fits and misses vanish).
        program = generate("olden.treeadd", seed=1, scale=0.4)
        normal = Machine(SimConfig(cache_config="BC")).run(program)
        half = Machine(
            SimConfig(cache_config="BC", miss_scale=0.5)
        ).run(program)
        assert half.cycles < normal.cycles

    def test_result_as_dict(self, small_program):
        d = Machine("BC").run(small_program).as_dict()
        assert d["workload"] == "olden.treeadd"
        assert d["instructions"] > 0
        assert 0 <= d["l1_miss_rate"] <= 1
