"""Render run manifests: per-run summaries and cross-run tables.

Usage::

    # run one workload with full observability and render its manifest
    python -m repro.obs.report run --workload olden.mst --config CPP --scale 0.3

    # render manifests already on disk
    python -m repro.obs.report show results/manifests
    python -m repro.obs.report compare results/manifests

    # render a telemetry run directory (--telemetry campaigns): the
    # cross-process timeline, aggregated phase flamegraph and merged
    # metrics (histograms with p50/p95/p99)
    python -m repro.obs.report telemetry results/telem
"""

from __future__ import annotations

import argparse
import sys
import tempfile
from pathlib import Path

from repro.errors import ExperimentError
from repro.obs.manifest import RunManifest, load_manifests
from repro.obs.telemetry import TelemetryStore, load_store
from repro.utils.tables import format_table

__all__ = [
    "render_manifest",
    "render_comparison",
    "render_telemetry",
    "main",
]

#: The event-count table rows: (label, headline/events key).
_EVENT_ROWS = (
    ("L1 affiliated hits", ("events", "l1", "affiliated_hits")),
    ("L2 affiliated hits", ("events", "l2", "affiliated_hits")),
    ("L1 partial fills", ("events", "l1", "partial_fills")),
    ("L2 partial fills", ("events", "l2", "partial_fills")),
    ("L1 promotions", ("events", "l1", "promotions")),
    ("L2 promotions", ("events", "l2", "promotions")),
    ("L1 stashes", ("events", "l1", "stashes")),
    ("L2 stashes", ("events", "l2", "stashes")),
    ("L1 prefetches issued", ("events", "l1", "prefetches_issued")),
    ("L2 prefetches issued", ("events", "l2", "prefetches_issued")),
    ("bus fill words", ("events", "bus", "fill_words")),
    ("bus prefetch words", ("events", "bus", "prefetch_words")),
    ("bus writeback words", ("events", "bus", "writeback_words")),
)


def _dig(manifest: RunManifest, path: tuple[str, ...]) -> object:
    node: object = manifest.as_dict()
    for part in path:
        if not isinstance(node, dict) or part not in node:
            return "-"
        node = node[part]
    return node


def render_manifest(manifest: RunManifest) -> str:
    """One run, fully rendered: identity, timings, memoization, events."""
    head = manifest.headline
    blocks = [
        f"run manifest: {manifest.workload} on {manifest.config} "
        f"(seed={manifest.seed}, scale={manifest.scale}, "
        f"miss_scale={manifest.miss_scale})",
        f"  git {manifest.git_rev} · repro {manifest.environment.get('repro', '?')}"
        f" · python {manifest.environment.get('python', '?')}"
        f" · numpy {manifest.environment.get('numpy', '?')}"
        f" · {manifest.created}",
    ]

    if manifest.timings:
        rows = [
            (name, f"{seconds:.3f}")
            for name, seconds in sorted(manifest.timings.items())
        ]
        blocks.append(format_table(["phase", "seconds"], rows, title="phase timings"))

    memo = manifest.memoization
    if memo:
        rows = []
        for kind in ("program", "result"):
            hits = memo.get(f"{kind}_hits", 0)
            misses = memo.get(f"{kind}_misses", 0)
            total = hits + misses
            rate = f"{hits / total:.2%}" if total else "-"
            rows.append((kind, hits, misses, rate))
        blocks.append(
            format_table(
                ["cache", "hits", "misses", "hit rate"],
                rows,
                title="runner memoization",
            )
        )

    if head:
        rows = [
            ("cycles", head.get("cycles", "-")),
            ("instructions", head.get("instructions", "-")),
            ("ipc", head.get("ipc", "-")),
            ("L1 miss rate", head.get("l1_miss_rate", "-")),
            ("L2 miss rate", head.get("l2_miss_rate", "-")),
            ("bus words", head.get("bus_words", "-")),
            ("prefetch traffic share", head.get("bus_prefetch_share", "-")),
        ]
        blocks.append(format_table(["metric", "value"], rows, title="headline"))

    rows = [(label, _dig(manifest, path)) for label, path in _EVENT_ROWS]
    blocks.append(format_table(["event", "count"], rows, title="event counts"))

    if manifest.trace_events:
        rows = sorted(manifest.trace_events.items())
        blocks.append(
            format_table(["traced event type", "count"], rows, title="trace")
        )
    return "\n\n".join(blocks)


def render_comparison(manifests: list[RunManifest]) -> str:
    """Cross-run table: one row per manifest, headline columns."""
    rows = []
    for m in manifests:
        head = m.headline
        rows.append(
            (
                m.workload,
                m.config,
                head.get("cycles", "-"),
                head.get("ipc", "-"),
                head.get("l1_miss_rate", "-"),
                head.get("l2_miss_rate", "-"),
                head.get("bus_words", "-"),
                f"{sum(m.timings.values()):.2f}" if m.timings else "-",
            )
        )
    return format_table(
        [
            "workload",
            "config",
            "cycles",
            "ipc",
            "l1 miss",
            "l2 miss",
            "bus words",
            "wall s",
        ],
        rows,
        title=f"cross-run summary ({len(manifests)} runs)",
        ndigits=4,
    )


_TIMELINE_WIDTH = 48  #: columns of the ASCII span timeline


def _span_track(span: dict) -> tuple[int, str]:
    """(sort key, label) of the timeline track a span renders on."""
    worker = span.get("attrs", {}).get("worker")
    if isinstance(worker, int) and worker >= 0:
        return (worker + 1, f"worker {worker}")
    return (0, "supervisor")


def _timeline(spans: list[dict]) -> list[str]:
    """Cross-process timeline: one bar per span, one block per track."""
    timed = [s for s in spans if s.get("end", 0.0) > s.get("start", 0.0)]
    if not timed:
        return ["(no finished spans)"]
    base = min(s["start"] for s in timed)
    total = max(s["end"] for s in timed) - base
    scale = _TIMELINE_WIDTH / total if total > 0 else 0.0
    lines = [f"timeline ({total:.3f}s across {len(timed)} spans)"]
    by_track: dict[tuple[int, str], list[dict]] = {}
    for span in timed:
        by_track.setdefault(_span_track(span), []).append(span)
    width = max(
        len(_span_label(s)) for track in by_track.values() for s in track
    )
    for (_, track_name) in sorted(by_track):
        lines.append(f"  {track_name}:")
        for span in sorted(by_track[(_, track_name)], key=lambda s: s["start"]):
            left = int((span["start"] - base) * scale)
            right = max(left + 1, int((span["end"] - base) * scale))
            bar = (
                " " * left
                + "█" * (right - left)
                + " " * (_TIMELINE_WIDTH - right)
            )
            lines.append(
                f"    {_span_label(span):<{width}} |{bar}| "
                f"{span['end'] - span['start']:.3f}s"
                + (" !" if span.get("status", "ok") != "ok" else "")
            )
    return lines


def _span_label(span: dict) -> str:
    attrs = span.get("attrs", {})
    name = span["name"]
    if "workload" in attrs and "config" in attrs:
        name = f"{name} {attrs['workload']}/{attrs['config']}"
    if "attempt" in attrs and attrs.get("attempt", 1) != 1:
        name = f"{name} (a{attrs['attempt']})"
    return name


def _flamegraph(phases: dict[str, dict]) -> list[str]:
    """Aggregated phase tree as an indented bar chart (a flat flamegraph)."""
    if not phases:
        return ["(no phase data)"]
    peak = max(stat["seconds"] for stat in phases.values()) or 1.0
    lines = ["aggregated phases (all processes)"]
    for path in sorted(phases):
        stat = phases[path]
        depth = path.count("/")
        name = path.rsplit("/", 1)[-1]
        bar = "▇" * max(1, int(stat["seconds"] / peak * 30))
        lines.append(
            f"  {'  ' * depth}{name:<{28 - 2 * depth}} "
            f"{stat['seconds']:>8.3f}s x{stat['calls']:<5} {bar}"
        )
    return lines


def _metrics_table(metrics: dict[str, dict]) -> str:
    """The merged metrics, histograms with their percentile estimates."""
    rows = []
    for key in sorted(metrics):
        entry = metrics[key]
        if entry["type"] == "histogram":
            data = entry["data"]
            rows.append(
                (
                    key,
                    "histogram",
                    data["count"],
                    f"{data['mean']:.4g}",
                    f"{data.get('p50', 0.0):.4g}",
                    f"{data.get('p95', 0.0):.4g}",
                    f"{data.get('p99', 0.0):.4g}",
                )
            )
        else:
            rows.append(
                (key, entry["type"], entry["value"], "-", "-", "-", "-")
            )
    return format_table(
        ["metric", "type", "value", "mean", "p50", "p95", "p99"],
        rows,
        title="merged metrics",
    )


def render_telemetry(store: TelemetryStore) -> str:
    """One telemetry run: identity, timeline, flamegraph, metrics."""
    merged = store.merged()
    blocks = [
        f"telemetry run {store.trace_id or '?'}: "
        f"{merged['n_cells']} cell(s), {merged['n_attempts']} attempt(s), "
        f"{len(merged['partials'])} partial(s)",
        "\n".join(_timeline(store.spans())),
        "\n".join(_flamegraph(merged["phases"])),
        _metrics_table(merged["metrics"]),
    ]
    if merged["partials"]:
        lines = ["partial telemetry (child died before spooling):"]
        lines.extend(
            f"  {cell} attempt {attempt}" for cell, attempt in merged["partials"]
        )
        blocks.append("\n".join(lines))
    return "\n\n".join(blocks)


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.report",
        description="Render simulator run manifests.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    show = sub.add_parser("show", help="render manifests on disk")
    show.add_argument("paths", nargs="+", help="manifest files or directories")

    compare = sub.add_parser("compare", help="cross-run summary table")
    compare.add_argument("paths", nargs="+", help="manifest files or directories")

    run = sub.add_parser(
        "run", help="execute one workload with observability on and render it"
    )
    run.add_argument("--workload", default="olden.mst")
    run.add_argument("--config", default="CPP")
    run.add_argument("--seed", type=int, default=1)
    run.add_argument("--scale", type=float, default=0.3)
    run.add_argument(
        "--out", default=None, help="manifest directory (default: temporary)"
    )
    run.add_argument(
        "--trace-out", default=None, help="also export the event stream as JSONL"
    )

    telem = sub.add_parser(
        "telemetry",
        help="render a telemetry run directory (timeline, flamegraph, metrics)",
    )
    telem.add_argument("dir", help="run directory passed to --telemetry")
    return parser


def _collect(paths: list[str]) -> list[RunManifest]:
    manifests: list[RunManifest] = []
    for path in paths:
        manifests.extend(load_manifests(path))
    return manifests


def _cmd_run(args) -> int:
    import repro.obs as obs
    from repro.sim.runner import run_workload

    out_dir = args.out or tempfile.mkdtemp(prefix="repro-manifests-")
    obs.enable(manifest_dir=out_dir)
    try:
        run_workload(
            args.workload,
            args.config,
            seed=args.seed,
            scale=args.scale,
            use_cache=False,
        )
        tracer = obs.get_tracer()
        if args.trace_out and tracer is not None:
            tracer.write_jsonl(args.trace_out)
            print(f"[event stream -> {args.trace_out}]", file=sys.stderr)
    finally:
        obs.disable()
    manifests = load_manifests(out_dir)
    print(render_manifest(manifests[-1]))
    print(f"\n[manifest directory: {out_dir}]", file=sys.stderr)
    return 0


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = _build_parser().parse_args(argv)
    try:
        if args.command == "run":
            return _cmd_run(args)
        if args.command == "telemetry":
            print(render_telemetry(load_store(args.dir)))
            return 0
        manifests = _collect(args.paths)
        if args.command == "show":
            print("\n\n".join(render_manifest(m) for m in manifests))
        else:
            print(render_comparison(manifests))
        return 0
    except ExperimentError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover - CLI shim
    sys.exit(main())
