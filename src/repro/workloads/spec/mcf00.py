"""spec2000.181.mcf — network-simplex style arc scans over a flow network.

Models mcf's dominant loop (``price_out_impl``/``primal_bea_mpp``): scan
the arc array; for each arc load its tail and head node records through
pointers and compute the reduced cost from the node potentials; collect
violating arcs and push flow along a short cycle for the best one.

Node: ``{potential, orientation, first_out, mark}``;
arc: ``{tail, head, cost, flow}``. Node pointers compress; potentials
and costs are large values — the mixed profile that kept mcf
memory-bound on real hardware.
"""

from __future__ import annotations

from repro.workloads.base import Program, ProgramBuilder, scaled

__all__ = ["build", "DEFAULT_NODES", "DEFAULT_ARCS_PER_NODE", "DEFAULT_ROUNDS"]

DEFAULT_NODES = 1200
DEFAULT_ARCS_PER_NODE = 4
DEFAULT_ROUNDS = 4

_N_POT = 0
_N_ORIENT = 4
_N_FIRST = 8
_N_MARK = 12
_N_BYTES = 16

_A_TAIL = 0
_A_HEAD = 4
_A_COST = 8
_A_FLOW = 12
_A_BYTES = 16


def build(seed: int = 1, scale: float = 1.0) -> Program:
    """Generate the mcf program; *scale* adjusts pricing rounds."""
    n_nodes = DEFAULT_NODES
    n_arcs = n_nodes * DEFAULT_ARCS_PER_NODE
    rounds = scaled(DEFAULT_ROUNDS, scale, minimum=1)

    pb = ProgramBuilder("spec2000.181.mcf", seed)
    pb.op("g", (), label="mcf.entry")

    nodes: list[int] = []
    potential: dict[int, int] = {}
    for _ in pb.for_range("mcf.mknodes", n_nodes, cond_srcs=("g",)):
        a = pb.malloc(_N_BYTES)
        nodes.append(a)
        pot = pb.rand_large()
        potential[a] = pot
        pb.store(a + _N_POT, pot, base="g", label="mcf.init.pot")
        pb.store(a + _N_ORIENT, int(pb.rng.integers(0, 2)), base="g",
                 label="mcf.init.or")
        pb.store(a + _N_FIRST, 0, base="g", label="mcf.init.first")
        pb.store(a + _N_MARK, 0, base="g", label="mcf.init.mark")

    arcs: list[int] = []
    arc_ends: dict[int, tuple[int, int]] = {}
    arc_cost: dict[int, int] = {}
    flow: dict[int, int] = {}
    for _ in pb.for_range("mcf.mkarcs", n_arcs, cond_srcs=("g",)):
        a = pb.malloc(_A_BYTES)
        arcs.append(a)
        t = nodes[int(pb.rng.integers(0, n_nodes))]
        h = nodes[int(pb.rng.integers(0, n_nodes))]
        cost = pb.rand_large()
        arc_ends[a] = (t, h)
        arc_cost[a] = cost
        flow[a] = 0
        pb.store(a + _A_TAIL, t, base="g", label="mcf.init.tail")
        pb.store(a + _A_HEAD, h, base="g", label="mcf.init.head")
        pb.store(a + _A_COST, cost, base="g", label="mcf.init.cost")
        pb.store(a + _A_FLOW, 0, base="g", label="mcf.init.flow")

    pushed = 0
    for _r in pb.for_range("mcf.rounds", rounds, cond_srcs=("g",)):
        best_arc, best_viol = None, 0
        pb.op("ap", (), label="mcf.scan.base")
        for a in arcs:
            pb.branch("mcf.scan.loop", taken=True, srcs=("ap",))
            t = pb.load(a + _A_TAIL, "t", base="ap", label="mcf.scan.ldt")
            h = pb.load(a + _A_HEAD, "h", base="ap", label="mcf.scan.ldh")
            cost = pb.load(a + _A_COST, "c", base="ap", label="mcf.scan.ldc")
            tp = pb.load(t + _N_POT, "tp", base="t", label="mcf.scan.ldtp")
            hp = pb.load(h + _N_POT, "hp", base="h", label="mcf.scan.ldhp")
            pb.op("red", ("c", "tp"), label="mcf.scan.sub1")
            pb.op("red", ("red", "hp"), label="mcf.scan.sub2")
            viol = (cost - tp + hp) & 0xFFFF_FFFF
            signed = viol - (1 << 32) if viol & 0x8000_0000 else viol
            if pb.if_("mcf.scan.viol", signed < best_viol, srcs=("red",)):
                pb.op("besta", ("red",), label="mcf.scan.take")
                best_arc, best_viol = a, signed
        pb.branch("mcf.scan.loop", taken=False, srcs=("ap",))

        if pb.if_("mcf.pivot.found", best_arc is not None, srcs=("besta",)):
            a = best_arc
            f = pb.load(a + _A_FLOW, "f", base="besta", label="mcf.pivot.ldf")
            pb.op("f", ("f",), label="mcf.pivot.inc")
            flow[a] = f + 1
            pb.store(a + _A_FLOW, f + 1, base="besta", src="f", label="mcf.pivot.stf")
            t, h = arc_ends[a]
            # Update the endpoint potentials (dual step).
            for node in (t, h):
                p = pb.load(node + _N_POT, "p", base="besta", label="mcf.pivot.ldp")
                newp = (p + 64) & 0xFFFF_FFFF
                potential[node] = newp
                pb.op("p", ("p",), label="mcf.pivot.adj")
                pb.store(node + _N_POT, newp, base="besta", src="p",
                         label="mcf.pivot.stp")
                m = pb.load(node + _N_MARK, "m", base="besta", label="mcf.pivot.ldm")
                pb.store(node + _N_MARK, (m + 1) & 0x3FFF, base="besta", src="m",
                         label="mcf.pivot.stm")
            pushed += 1

    out = pb.static_array(1)
    pb.store(out, pushed, src="f", label="mcf.result")
    return pb.build(
        description="arc-array pricing scans with pointer-loaded potentials",
        params={"nodes": n_nodes, "arcs": n_arcs, "rounds": rounds, "pivots": pushed},
    )
