"""Victim caching — the other half of Jouppi's proposal (related work [3]).

The paper's reference [3] ("Improving Direct-mapped Cache Performance by
the Addition of a Small Fully-associative Cache and Prefetch Buffers")
pairs prefetch buffers with a small fully-associative *victim cache* that
catches conflict evictions. CPP's victim **stash** (§3.3) plays the same
role inside the affiliated locations; this extension provides the real
thing, so the repository can separate CPP's conflict-miss relief from its
prefetching (config "BVC" = BC + victim caches at both levels).

A victim cache holds full evicted lines, dirty ones included — unlike a
prefetch buffer its contents may be modified state, and dirty victims
write back only when they age out, delaying write-back traffic exactly
as the real mechanism does. A demand miss that hits the victim cache
swaps the line back at hit latency and counts as a hit, mirroring the
paper's accounting for buffer hits.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

from repro.caches.base import Cache
from repro.caches.interface import AccessResult, FetchResponse, LineSource
from repro.caches.line import CacheLine
from repro.caches.stats import CacheStats
from repro.errors import ConfigurationError
from repro.inject import hooks as _inject
from repro.memory.bus import TrafficKind

__all__ = ["VictimBuffer", "VictimAwareCache", "VictimCache"]


@dataclass
class _Victim:
    data: list[int]
    dirty: bool


class VictimBuffer:
    """Small fully-associative LRU store of evicted lines."""

    def __init__(self, n_entries: int, line_words: int) -> None:
        if n_entries < 1:
            raise ConfigurationError("victim buffer needs at least one entry")
        self.n_entries = n_entries
        self.line_words = line_words
        self._entries: OrderedDict[int, _Victim] = OrderedDict()
        self.inserts = 0
        self.dirty_spills = 0

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, line_no: int) -> bool:
        return line_no in self._entries

    def insert(
        self, line_no: int, data, dirty: bool
    ) -> tuple[int, _Victim] | None:
        """Add a victim; returns an aged-out dirty entry needing a
        write-back downstream, or None."""
        if len(data) != self.line_words:
            raise ConfigurationError("line data has the wrong width")
        spilled = None
        if line_no in self._entries:
            self._entries.move_to_end(line_no)
        elif len(self._entries) >= self.n_entries:
            old_no, old = self._entries.popitem(last=False)
            if old.dirty:
                self.dirty_spills += 1
                spilled = (old_no, old)
        self._entries[line_no] = _Victim([int(v) for v in data], dirty)
        self.inserts += 1
        return spilled

    def pop(self, line_no: int) -> _Victim | None:
        """Remove and return a victim (a recovery consumes the entry)."""
        return self._entries.pop(line_no, None)

    def drain(self) -> list[tuple[int, _Victim]]:
        """Remove everything; returns the dirty entries for write-back."""
        dirty = [(no, v) for no, v in self._entries.items() if v.dirty]
        self._entries.clear()
        return dirty


class VictimAwareCache(Cache):
    """A conventional cache whose evictions land in a victim buffer."""

    def __init__(
        self,
        name: str,
        *,
        size_bytes: int,
        assoc: int,
        line_bytes: int,
        hit_latency: int,
        downstream: LineSource,
        victim_entries: int,
        stats: CacheStats | None = None,
    ) -> None:
        super().__init__(
            name,
            size_bytes=size_bytes,
            assoc=assoc,
            line_bytes=line_bytes,
            hit_latency=hit_latency,
            downstream=downstream,
            stats=stats,
        )
        self.victim_buffer = VictimBuffer(victim_entries, self.line_words)

    def _evict_victim(self, set_idx: int) -> CacheLine:
        """Divert the LRU way into the victim buffer instead of dropping
        it; only buffer age-outs reach the next level."""
        ways = self._sets[set_idx]
        victim = ways[-1]
        if victim.valid:
            if _inject.ACTIVE:
                # Scrub the victim before it enters the buffer: buffered
                # lines bypass the set-probe detection points.
                _inject.SESSION.before_evict(self, victim)
        if victim.valid:
            spilled = self.victim_buffer.insert(
                victim.line_no, victim.data, victim.dirty
            )
            if spilled is not None:
                old_no, old = spilled
                self.stats.writebacks += 1
                self.downstream.write_back(
                    self.line_addr(old_no),
                    old.data,
                    self.full_mask,
                )
            victim.invalidate()
        return super()._evict_victim(set_idx)

    def recover_victim(self, line_no: int) -> bool:
        """Swap a buffered victim back in; True if it was there."""
        victim = self.victim_buffer.pop(line_no)
        if victim is None:
            return False
        line = self.install_line(line_no, victim.data)
        line.dirty = victim.dirty
        self.stats.extra["victim_hits"] = (
            self.stats.extra.get("victim_hits", 0) + 1
        )
        return True

    def flush(self) -> None:
        """Flush the cache proper, then drain dirty buffered victims."""
        super().flush()
        for line_no, victim in self.victim_buffer.drain():
            self.stats.writebacks += 1
            self.downstream.write_back(
                self.line_addr(line_no),
                victim.data,
                self.full_mask,
            )


class VictimCache:
    """Hierarchy-facing facade: victim-buffer lookups around the cache."""

    def __init__(self, cache: VictimAwareCache) -> None:
        self.cache = cache
        self.stats = cache.stats

    @property
    def name(self) -> str:
        return self.cache.name

    @property
    def hit_latency(self) -> int:
        return self.cache.hit_latency

    @property
    def line_words(self) -> int:
        return self.cache.line_words

    # ---- CPU-facing role ---------------------------------------------------

    def access(
        self, addr: int, write: bool = False, value: int | None = None, now: int = 0
    ) -> AccessResult:
        """CPU access: recover from the victim buffer before re-fetching."""
        line_no = self.cache.line_no(addr)
        if not self.cache.probe(addr) and self.cache.recover_victim(line_no):
            result = self.cache.access(addr, write=write, value=value, now=now)
            return AccessResult(
                latency=result.latency, served_by="l1-victim", value=result.value
            )
        return self.cache.access(addr, write=write, value=value, now=now)

    # ---- LineSource role ------------------------------------------------------

    def fetch(
        self,
        addr: int,
        n_words: int,
        need_word: int,
        *,
        kind: TrafficKind = TrafficKind.FILL,
        now: int = 0,
        pair_addr: int | None = None,
    ) -> FetchResponse:
        """Serve the level above, recovering buffered victims on the way."""
        line_no = self.cache.line_no(addr)
        if not self.cache.probe(addr) and self.cache.recover_victim(line_no):
            resp = self.cache.fetch(
                addr, n_words, need_word, kind=kind, record=False, now=now
            )
            self.stats.record_access(hit=True)
            return FetchResponse(
                values=resp.values,
                avail=resp.avail,
                latency=resp.latency,
                served_by="l2-victim",
            )
        return self.cache.fetch(addr, n_words, need_word, kind=kind, now=now)

    def supply_prefetch(self, addr: int, n_words: int, now: int = 0):
        """Pass prefetch supplies through (victims are demand state)."""
        return self.cache.supply_prefetch(addr, n_words, now)

    def write_back(self, addr: int, values, mask, comp: int | None = None) -> None:
        """Accept an upper-level eviction, recovering a buffered copy."""
        line_no = self.cache.line_no(addr)
        if not self.cache.probe(addr) and line_no in self.cache.victim_buffer:
            self.cache.recover_victim(line_no)
            self.stats.extra["victim_hits"] -= 1  # coherence move, not a hit
        self.cache.write_back(addr, values, mask, comp)

    def flush(self) -> None:
        """Drain all dirty state (cache lines and buffered victims)."""
        self.cache.flush()
