"""The level-to-level protocol of the hierarchy.

The paper's key interface change (§3.1) is that requests between cache
levels are **word-based** and a hit may return a **partial line**. The
protocol here encodes that directly:

* an upper level calls :meth:`LineSource.fetch` naming the line *and* the
  word it actually needs (``need_word``); the response carries per-word
  availability and, for compression caches, a piggy-backed partial
  *affiliated* line that rode along in the freed bus slots;
* dirty evictions flow down through :meth:`LineSource.write_back` with a
  per-word validity mask, because CPP lines can be dirty while having
  holes.

Classic caches are a degenerate case: availability is all-ones and no
affiliated payload exists.

Wire format: word values travel as plain lists of Python ints and the
per-word availability masks as packed ints (bit *i* = word *i*) — the
allocation-free representation every level stores internally, so a fetch
response is two list slices and two int shifts, never a NumPy round trip.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol

from repro.compression.fastscalar import (
    compressibility_fn,
    packed_bus_words_from_comp,
    packed_bus_words_masked,
)
from repro.compression.scheme import CompressionScheme, PAPER_SCHEME
from repro.errors import CacheProtocolError, UnmappedAddressError
from repro.inject import hooks as _inject
from repro.memory.bus import TrafficKind
from repro.memory.image import WORD_BYTES
from repro.memory.main_memory import MainMemory
from repro.utils.bitmask import as_mask, as_words

__all__ = [
    "AccessResult",
    "CODE_OF_SERVED",
    "FetchResponse",
    "LineSource",
    "MemoryPort",
    "SERVED_BY_CODES",
]

#: Packed word-op result codes -> ``served_by`` labels. The fast
#: backend's L1 word-ops (``load_word``/``store_word``) return
#: ``latency << 3 | code`` instead of allocating an
#: :class:`AccessResult`; code 0 is the *uncounted* inline MRU hit (the
#: caller batches the stats), the remaining codes come from the regular
#: ``access()`` path and are already counted.
SERVED_BY_CODES = (
    "l1",
    "l1",
    "l1-affiliated",
    "l1-buffer",
    "l2",
    "l2-affiliated",
    "l2-buffer",
    "memory",
)

#: ``served_by`` label -> packed word-op code (codes 1..7).
CODE_OF_SERVED = {name: i for i, name in enumerate(SERVED_BY_CODES) if i}


class AccessResult:
    """Outcome of one CPU-level data access.

    ``served_by`` identifies where the word was found:
    ``"l1" | "l1-affiliated" | "l1-buffer" | "l2" | "l2-affiliated" |
    "l2-buffer" | "memory"``. ``value`` is the loaded word (loads only);
    the Machine's verify mode checks it against the trace.

    A plain ``__slots__`` class: one is created per CPU access, so the
    constructor must stay as close to free as Python allows (a frozen
    dataclass pays an ``object.__setattr__`` per field).
    """

    __slots__ = ("latency", "served_by", "value")

    def __init__(
        self, latency: int, served_by: str, value: int | None = None
    ) -> None:
        self.latency = latency
        self.served_by = served_by
        self.value = value

    @property
    def l1_hit(self) -> bool:
        return self.served_by.startswith("l1")

    def __repr__(self) -> str:  # pragma: no cover - debug cosmetic
        return (
            f"AccessResult(latency={self.latency}, "
            f"served_by={self.served_by!r}, value={self.value!r})"
        )


@dataclass
class FetchResponse:
    """A (possibly partial) line returned by a lower level.

    Attributes
    ----------
    values:
        Uncompressed word values of the requested line (garbage where
        ``avail`` is clear).
    avail:
        Packed per-word availability mask (bit *i* = word *i*); the
        requested ``need_word`` bit is always set.
    latency:
        Cycles until the data is usable by the requester.
    served_by:
        Label of the level that supplied the data (for stats/debug).
    affil_values / affil_avail:
        The piggy-backed partial affiliated line (line XOR mask), or
        ``None`` when the source does not prefetch.
    comp / affil_comp:
        Optional per-word compressibility masks for the available words
        (``comp`` bit *i* = ``values[i]`` is compressible at its own
        address under the **source's** scheme). A compressing source
        copies these from its VCP/AA memos; a requester whose scheme
        matches the source's reuses them instead of re-classifying.
        ``None`` means "not supplied, classify yourself".
    """

    values: list[int]
    avail: int
    latency: int
    served_by: str
    affil_values: list[int] | None = None
    affil_avail: int | None = None
    comp: int | None = None
    affil_comp: int | None = None

    def validate(self, n_words: int, need_word: int) -> None:
        """Check protocol invariants of the response; raises on violation."""
        full = (1 << n_words) - 1
        if len(self.values) != n_words or self.avail & ~full:
            raise CacheProtocolError("fetch response has wrong line width")
        if not (self.avail >> need_word) & 1:
            raise CacheProtocolError(
                f"fetch response missing the requested word {need_word}"
            )
        if (self.affil_values is None) != (self.affil_avail is None):
            raise CacheProtocolError("inconsistent affiliated payload")
        if self.affil_values is not None and (
            len(self.affil_values) != n_words or self.affil_avail & ~full
        ):
            raise CacheProtocolError("affiliated payload has wrong line width")
        if self.comp is not None and self.comp & ~self.avail:
            raise CacheProtocolError("comp mask covers unavailable words")
        if self.affil_comp is not None and (
            self.affil_avail is None or self.affil_comp & ~self.affil_avail
        ):
            raise CacheProtocolError("affil_comp mask covers unavailable words")


class LineSource(Protocol):
    """Anything an upper cache level can fetch lines from."""

    def fetch(
        self,
        addr: int,
        n_words: int,
        need_word: int,
        *,
        kind: TrafficKind = TrafficKind.FILL,
        now: int = 0,
        pair_addr: int | None = None,
    ) -> FetchResponse:
        """Request the *n_words* line at *addr* (aligned), needing word
        index *need_word* at cycle *now*.

        *pair_addr* names the requester's affiliated line: a compressing
        source piggy-backs that line's compressible words onto the
        response when it holds them. Must return at least the needed word.
        """
        ...

    def write_back(self, addr: int, values, mask, comp: int | None = None) -> None:
        """Accept a dirty (possibly partial) line evicted by the upper level.

        *comp*, when given, is the caller's compressibility mask for the
        written words **under the receiver's scheme** (callers pass it only
        when the schemes match); ``None`` means the receiver classifies.
        """
        ...


class MemoryPort:
    """Adapter presenting :class:`MainMemory` as a :class:`LineSource`.

    The port owns the *transfer format* policy at the off-chip interface:

    * ``fetch_compressed`` — line fills are transferred compressed and the
      bus is charged the packed size (the BCC configuration);
    * ``writeback_compressed`` — dirty evictions transfer compressed
      (BCC and CPP);
    * :meth:`fetch_pair` — the CPP fill: the demand line plus its
      affiliated line are compressed together into one line's worth of bus
      beats, so the prefetch is free (§3.3, "the memory bandwidth is still
      the same as before").
    """

    def __init__(
        self,
        memory: MainMemory,
        *,
        fetch_compressed: bool = False,
        writeback_compressed: bool = False,
        scheme: CompressionScheme = PAPER_SCHEME,
    ) -> None:
        self.memory = memory
        self.fetch_compressed = fetch_compressed
        self.writeback_compressed = writeback_compressed
        self.scheme = scheme
        self._is_comp = compressibility_fn(scheme)
        self._compressed_bits = int(getattr(scheme, "compressed_bits", 16))

    # ---- helpers ---------------------------------------------------------

    def _packed_words(self, addr: int, values: list[int], mask: int) -> int:
        return packed_bus_words_masked(
            values, addr, mask, self._is_comp, self._compressed_bits
        )

    def line_comp(self, addr: int, n_words: int) -> int | None:
        """Comp-table probe for the line at *addr* under this port's scheme.

        ``None`` (classify yourself) unless the backing memory carries a
        comp table built for exactly this scheme and no fault-injection
        session is live — injection hooks mutate values in flight, so
        table bits would not describe what travelled on the bus.
        """
        if _inject.ACTIVE:
            return None
        table = getattr(self.memory, "comp_table", None)
        if table is None or table.scheme is not self.scheme:
            return None
        return table.line_comp(addr, n_words)

    # ---- LineSource ---------------------------------------------------------

    def fetch(
        self,
        addr: int,
        n_words: int,
        need_word: int,
        *,
        kind: TrafficKind = TrafficKind.FILL,
        now: int = 0,
        pair_addr: int | None = None,
    ) -> FetchResponse:
        """Fetch an uncompressed line from memory (packed traffic if BCC)."""
        if addr % (n_words * WORD_BYTES):
            raise CacheProtocolError(f"unaligned line fetch at {addr:#x}")
        full = (1 << n_words) - 1
        if _inject.ACTIVE:
            _inject.SESSION.on_memory_read(addr, n_words)
        values = self.memory.image.read_words_list(addr, n_words)
        if _inject.ACTIVE:
            values = _inject.SESSION.on_bus_values(addr, values)
        if self.fetch_compressed:
            comp = self.line_comp(addr, n_words)
            bus_words = (
                self._packed_words(addr, values, full)
                if comp is None
                else packed_bus_words_from_comp(full, comp, self._compressed_bits)
            )
        else:
            bus_words = n_words
        self.memory.bus.record(kind, bus_words)
        self.memory.n_reads += 1
        return FetchResponse(
            values=values,
            avail=full,
            latency=self.memory.latency,
            served_by="memory",
        )

    def fetch_pair(
        self,
        addr: int,
        n_words: int,
        affil_addr: int,
        *,
        kind: TrafficKind = TrafficKind.FILL,
    ) -> tuple[list[int], list[int] | None]:
        """CPP fill: demand line + affiliated line for one line of traffic.

        Returns ``(values, affil_values)``; which affiliated words actually
        fit in the freed slots is the *cache's* packing decision — the bus
        cost is a full single-line transfer either way.

        ``affil_values`` is ``None`` when the affiliated line does not
        exist: its address falls outside the 32-bit space (a pairing mask
        pushing past the top line) or outside a strict memory image (the
        partner of a segment's boundary line). The demand fill must not
        fabricate a prefetch out of a nonexistent line.
        """
        line_bytes = n_words * WORD_BYTES
        if addr % line_bytes or affil_addr % line_bytes:
            raise CacheProtocolError("unaligned pair fetch")
        if _inject.ACTIVE:
            _inject.SESSION.on_memory_read(addr, n_words)
            _inject.SESSION.on_memory_read(affil_addr, n_words)
        values = self.memory.image.read_words_list(addr, n_words)
        try:
            affil_values = self.memory.image.read_words_list(affil_addr, n_words)
        except UnmappedAddressError:
            affil_values = None
        if _inject.ACTIVE:
            values = _inject.SESSION.on_bus_values(addr, values)
            if affil_values is not None:
                affil_values = _inject.SESSION.on_bus_values(
                    affil_addr, affil_values
                )
        self.memory.bus.record(kind, n_words)
        self.memory.n_reads += 1
        return values, affil_values

    def supply_prefetch(
        self, addr: int, n_words: int, now: int = 0
    ) -> tuple[list[int], int]:
        """Read a line for a prefetch buffer: traffic, no installation.

        Returns ``(values, latency)`` — the prefetch completes *latency*
        cycles after *now*.
        """
        if addr % (n_words * WORD_BYTES):
            raise CacheProtocolError(f"unaligned prefetch at {addr:#x}")
        if _inject.ACTIVE:
            _inject.SESSION.on_memory_read(addr, n_words)
        values = self.memory.image.read_words_list(addr, n_words)
        if _inject.ACTIVE:
            values = _inject.SESSION.on_bus_values(addr, values)
        if self.fetch_compressed:
            full = (1 << n_words) - 1
            comp = self.line_comp(addr, n_words)
            bus_words = (
                self._packed_words(addr, values, full)
                if comp is None
                else packed_bus_words_from_comp(full, comp, self._compressed_bits)
            )
        else:
            bus_words = n_words
        self.memory.bus.record(TrafficKind.PREFETCH, bus_words)
        self.memory.n_reads += 1
        return values, self.memory.latency

    def write_back(self, addr: int, values, mask, comp: int | None = None) -> None:
        """Write a (possibly partial) line to memory, packed if configured.

        *comp* carries the evicting cache's compressibility memo (its
        VCP bits). The memo is maintained against the written values, so
        when the caller shares this port's scheme the packed size is two
        popcounts instead of a per-word classification; a ``None`` memo
        (or an active injection session, whose hooks may rewrite the
        values below) re-derives packing from the values.
        """
        values = as_words(values)
        mask = as_mask(mask)
        if _inject.ACTIVE:
            values = _inject.SESSION.on_bus_values(addr, values, mask)
            comp = None
        if self.writeback_compressed:
            packed = (
                self._packed_words(addr, values, mask)
                if comp is None
                else packed_bus_words_from_comp(mask, comp, self._compressed_bits)
            )
            self.memory.write_line(
                addr, values, mask=mask, bus_words=packed, comp=comp
            )
        else:
            self.memory.write_line(addr, values, mask=mask, comp=comp)
