"""Cache models: the baseline hierarchy family and the paper's CPP design.

Five two-level configurations are reproduced (paper §4.1):

========  ============================================================
``BC``    baseline: 8 KB direct-mapped L1 (64 B lines), 64 KB 2-way L2
          (128 B lines), write-back / write-allocate.
``BCC``   BC plus compressors at the L2/memory interface: identical
          timing and hit behaviour, compressed bus traffic.
``HAC``   BC with doubled associativity (2-way L1, 4-way L2).
``BCP``   BC plus next-line prefetch-on-miss into fully-associative
          LRU prefetch buffers (8 entries at L1, 32 at L2).
``CPP``   the paper's compression-enabled partial-line prefetching
          cache: frames hold a primary line plus compressible words of
          its affiliated line (line XOR 0x1), word-based inter-level
          requests, partial-line fills, no prefetch buffers.
========  ============================================================
"""

from repro.caches.interface import (
    AccessResult,
    FetchResponse,
    LineSource,
    MemoryPort,
)
from repro.caches.stats import CacheStats
from repro.caches.line import CacheLine
from repro.caches.base import Cache
from repro.caches.prefetch_buffer import PrefetchBuffer
from repro.caches.next_line import PrefetchingCache
from repro.caches.compressed_frame import CompressedFrame
from repro.caches.compression_cache import CompressionCache, CPPPolicy
from repro.caches.hierarchy import (
    Hierarchy,
    build_hierarchy,
    HIERARCHY_BUILDERS,
)

__all__ = [
    "AccessResult",
    "FetchResponse",
    "LineSource",
    "MemoryPort",
    "CacheStats",
    "CacheLine",
    "Cache",
    "PrefetchBuffer",
    "PrefetchingCache",
    "CompressedFrame",
    "CompressionCache",
    "CPPPolicy",
    "Hierarchy",
    "build_hierarchy",
    "HIERARCHY_BUILDERS",
]
