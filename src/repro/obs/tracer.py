"""Structured event tracing: a ring-buffered, samplable event stream.

The compression design is debugged via per-event behaviour (which access
hit the affiliated place, which fill arrived partial), not aggregate
counters — so the simulator can emit typed events from its hot paths:

``cache_access`` · ``affiliated_hit`` · ``partial_fill`` · ``promotion``
· ``stash`` · ``bus_transfer`` · ``prefetch``

Tracing is **off by default** and must stay zero-cost when off: every
instrumented site guards its :func:`emit` call with the module-level
:data:`ACTIVE` flag (one attribute load and a branch, nothing else on
the disabled path — ``benchmarks/bench_obs_overhead.py`` keeps this
honest). Events carry only simulation-deterministic fields (no wall
clock), so cycle counts are bit-identical with tracing on or off.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.errors import ConfigurationError

__all__ = [
    "EVENT_TYPES",
    "EventTracer",
    "ACTIVE",
    "emit",
    "install",
    "uninstall",
    "get_tracer",
    "read_jsonl",
]

#: The typed event vocabulary. ``emit`` rejects anything else so typos
#: fail fast in tests instead of silently fragmenting the counts table.
EVENT_TYPES = frozenset(
    {
        "cache_access",
        "affiliated_hit",
        "partial_fill",
        "promotion",
        "stash",
        "bus_transfer",
        "prefetch",
    }
)

#: Fast-path flag checked by instrumented code (``if tracer.ACTIVE:``).
#: True exactly when a tracer is installed; mutated only by
#: :func:`install` / :func:`uninstall`.
ACTIVE = False

_TRACER: EventTracer | None = None


class EventTracer:
    """A fixed-capacity ring buffer of typed events.

    Always counts every emitted event per type (``counts``); retains the
    most recent ``capacity`` events, keeping one in ``sample_every`` when
    sampling is requested. Sequence numbers are global (pre-sampling), so
    sampled streams still expose event density.
    """

    __slots__ = ("capacity", "sample_every", "counts", "seq", "dropped", "_buf", "_write")

    def __init__(self, capacity: int = 65536, sample_every: int = 1) -> None:
        if capacity < 1:
            raise ConfigurationError("tracer capacity must be positive")
        if sample_every < 1:
            raise ConfigurationError("sample_every must be positive")
        self.capacity = capacity
        self.sample_every = sample_every
        self.counts: dict[str, int] = {}
        self.seq = 0  #: events emitted (before sampling)
        self.dropped = 0  #: retained-stream events overwritten by wraparound
        self._buf: list[dict] = []
        self._write = 0

    def emit(self, type_: str, fields: dict) -> None:
        """Record one event. *fields* must be JSON-safe scalars."""
        if type_ not in EVENT_TYPES:
            raise ConfigurationError(f"unknown event type {type_!r}")
        self.counts[type_] = self.counts.get(type_, 0) + 1
        seq = self.seq
        self.seq = seq + 1
        if seq % self.sample_every:
            return
        event = {"seq": seq, "type": type_}
        event.update(fields)
        buf = self._buf
        if len(buf) < self.capacity:
            buf.append(event)
        else:
            buf[self._write] = event
            self._write = (self._write + 1) % self.capacity
            self.dropped += 1

    def __len__(self) -> int:
        return len(self._buf)

    def events(self) -> list[dict]:
        """Retained events, oldest first (handles wraparound)."""
        if len(self._buf) < self.capacity:
            return list(self._buf)
        return self._buf[self._write :] + self._buf[: self._write]

    def count(self, type_: str) -> int:
        """Total emissions of one event type (sampling-independent)."""
        return self.counts.get(type_, 0)

    def clear(self) -> None:
        """Drop retained events and zero all counters."""
        self.counts = {}
        self.seq = 0
        self.dropped = 0
        self._buf = []
        self._write = 0

    def write_jsonl(self, path: str | Path) -> Path:
        """Export retained events as JSON Lines; returns the path."""
        path = Path(path)
        with path.open("w", encoding="utf-8") as fh:
            for event in self.events():
                fh.write(json.dumps(event, sort_keys=True) + "\n")
        return path


def read_jsonl(path: str | Path) -> list[dict]:
    """Load an event stream previously written by :meth:`write_jsonl`."""
    out: list[dict] = []
    with Path(path).open("r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if line:
                out.append(json.loads(line))
    return out


def install(tracer: EventTracer) -> EventTracer:
    """Make *tracer* the process-global event sink and arm :data:`ACTIVE`."""
    global _TRACER, ACTIVE
    _TRACER = tracer
    ACTIVE = True
    return tracer


def uninstall() -> EventTracer | None:
    """Disarm tracing; returns the tracer (events stay readable)."""
    global _TRACER, ACTIVE
    ACTIVE = False
    tracer, _TRACER = _TRACER, None
    return tracer


def get_tracer() -> EventTracer | None:
    """The installed tracer, or None when tracing is off."""
    return _TRACER


def emit(type_: str, **fields) -> None:
    """Emit one event to the installed tracer (no-op when off).

    Hot paths should guard the call (``if tracer.ACTIVE: tracer.emit(...)``)
    so the disabled path never pays for argument packing.
    """
    tracer = _TRACER
    if tracer is not None:
        tracer.emit(type_, fields)
