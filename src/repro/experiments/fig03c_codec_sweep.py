"""Figure 3c — codec zoo compressibility sweep (codecs × workloads).

A fig03-style analytical sweep comparing every registered codec on the
same data: the cache lines each benchmark actually touches (unique line
addresses from the dynamic trace, contents from the generator's final
memory image). For each (workload, codec) cell it reports:

* **ratio** — raw bits / compressed stream bits, aggregated over lines;
* **effective ratio** — the Touché-honest number: raw bits divided by
  stream bits *plus* the codec's cache-resident tag/metadata overhead;
* **compress / decompress cycles** — the codec's timing model, i.e. what
  a hit to a compressed line would pay on the critical path (the paper's
  scheme hides both; the zoo's other codecs do not).

This is deliberately *static* (image lines, not per-access dynamic
classification): it answers "how much smaller is this working set under
each codec", the comparison the ROADMAP's codec-zoo item asks for,
without simulating line-granular codecs the hierarchy cannot host.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.compression.codecs import CODEC_NAMES, get_codec
from repro.experiments.common import (
    GEOMEAN,
    ExperimentOutput,
    average,
    resolve_workloads,
)
from repro.sim.runner import get_program

__all__ = ["run", "FIGURE", "TITLE", "MAX_LINES"]

FIGURE = "fig3c"
TITLE = "Codec zoo: compression ratio and overhead-adjusted ratio per workload"

LINE_BYTES = 64
LINE_WORDS = LINE_BYTES // 4

#: Per-workload cap on sampled lines; sampling is uniform-stride over the
#: sorted unique line set and reported in the output notes — never silent.
MAX_LINES = 4096


def _touched_lines(program) -> list[int]:
    """Sorted unique 64-byte line base addresses the trace touched."""
    _values, addrs = program.trace.accessed_values()
    if len(addrs) == 0:
        return []
    bases = np.unique(addrs.astype(np.uint64) & ~np.uint64(LINE_BYTES - 1))
    return [int(b) for b in bases]


def _sample(bases: list[int]) -> tuple[list[int], bool]:
    if len(bases) <= MAX_LINES:
        return bases, False
    stride = len(bases) / MAX_LINES
    return [bases[int(i * stride)] for i in range(MAX_LINES)], True


def run(
    workloads: Sequence[str] | None = None,
    *,
    seed: int = 1,
    scale: float = 1.0,
) -> ExperimentOutput:
    """Sweep every codec over every workload's touched lines."""
    names = resolve_workloads(workloads)
    codecs = [get_codec(name) for name in CODEC_NAMES]
    rows: list[list[object]] = []
    ratio_series: dict[str, dict[str, float]] = {c.name: {} for c in codecs}
    eff_series: dict[str, dict[str, float]] = {
        f"{c.name} effective": {} for c in codecs
    }
    sampled_notes: list[str] = []

    for name in names:
        program = get_program(name, seed=seed, scale=scale)
        bases, sampled = _sample(_touched_lines(program))
        if sampled:
            sampled_notes.append(name)
        image = program.final_image
        lines = [image.read_words_list(base, LINE_WORDS) for base in bases]
        for codec in codecs:
            overhead = codec.tag_overhead()
            timing = codec.timing
            raw_bits = 0
            stream_bits = 0
            tag_bits = 0.0
            for pack in codec.pack_lines(lines, bases):
                raw_bits += pack.raw_bits
                stream_bits += pack.total_bits
                tag_bits += overhead.line_bits(pack.n_words)
            ratio = raw_bits / stream_bits if stream_bits else 1.0
            effective = (
                raw_bits / (stream_bits + tag_bits)
                if stream_bits + tag_bits
                else 1.0
            )
            ratio_series[codec.name][name] = ratio
            eff_series[f"{codec.name} effective"][name] = effective
            rows.append(
                [
                    name,
                    codec.name,
                    len(lines),
                    round(ratio, 3),
                    round(effective, 3),
                    timing.compress_cycles,
                    timing.decompress_cycles,
                ]
            )

    for codec in codecs:
        ratios = ratio_series[codec.name]
        effs = eff_series[f"{codec.name} effective"]
        ratios[GEOMEAN] = average(ratios)
        effs[GEOMEAN] = average({k: v for k, v in effs.items() if k != GEOMEAN})
        timing = codec.timing
        rows.append(
            [
                GEOMEAN,
                codec.name,
                "",
                round(ratios[GEOMEAN], 3) if ratios[GEOMEAN] is not None else None,
                round(effs[GEOMEAN], 3) if effs[GEOMEAN] is not None else None,
                timing.compress_cycles,
                timing.decompress_cycles,
            ]
        )

    notes = (
        "Static sweep over each workload's touched 64-byte lines (unique "
        "trace line addresses, final-image contents). 'effective ratio' "
        "charges each codec's cache-resident tag/metadata bits "
        "(Touché-honest); cycle columns are the codec timing models — "
        "only the paper's scheme hides both directions."
    )
    if sampled_notes:
        notes += (
            f" Sampled to {MAX_LINES} lines (uniform stride) for: "
            + ", ".join(sampled_notes)
            + "."
        )
    return ExperimentOutput(
        figure=FIGURE,
        title=TITLE,
        headers=[
            "workload",
            "codec",
            "lines",
            "ratio",
            "effective ratio",
            "compress cycles",
            "decompress cycles",
        ],
        rows=rows,
        series={**ratio_series, **eff_series},
        unit="x",
        paper_reference=(
            "No direct paper figure: extends Figure 3's compressibility "
            "analysis across the codec design space (FPC, BDI, C-Pack) "
            "the paper's §5 relates to."
        ),
        notes=notes,
    )
