"""olden.mst — minimum spanning tree over a sparse graph.

The original builds a graph whose per-vertex adjacency is kept in small
hash tables and runs Prim's algorithm with a linked vertex list, scanning
the not-yet-included vertices each round. We keep that structure:

* vertex: ``{mindist, next, hash_head}``  (3 words + pad)
* edge (hash entry): ``{neighbor_ptr, weight, next}``

Every Prim round walks the remaining-vertex linked list (pointer chase,
compressible pointers + small distances), then walks the chosen vertex's
adjacency list updating neighbour distances.
"""

from __future__ import annotations

from repro.workloads.base import Program, ProgramBuilder, scaled

__all__ = ["build", "DEFAULT_VERTICES", "DEFAULT_DEGREE"]

DEFAULT_VERTICES = 160
DEFAULT_DEGREE = 4

_V_DIST = 0
_V_NEXT = 4
_V_HASH = 8
_V_KEY = 12  #: vertex hash key — a large, incompressible value
_V_BYTES = 16

_E_NBR = 0
_E_W = 4
_E_NEXT = 8
_E_BYTES = 12

_INF = 0x3F00  # "infinity" distance (still a small value, as in the original)


def build(seed: int = 1, scale: float = 1.0) -> Program:
    """Generate the mst program; *scale* adjusts vertex count."""
    n = scaled(DEFAULT_VERTICES, scale, minimum=8)
    degree = DEFAULT_DEGREE

    pb = ProgramBuilder("olden.mst", seed)
    pb.op("g", (), label="mst.entry")

    # ---- build vertices as a linked list -----------------------------------
    v_addr: list[int] = []
    for i in pb.for_range("mst.mkverts", n, cond_srcs=("g",)):
        a = pb.malloc(_V_BYTES)
        v_addr.append(a)
        pb.store(a + _V_DIST, _INF, base="g", label="mst.init.dist")
        pb.store(a + _V_HASH, 0, base="g", label="mst.init.hash")
        pb.store(a + _V_NEXT, 0, base="g", label="mst.init.next")
        pb.store(a + _V_KEY, pb.rand_large(), base="g", label="mst.init.key")
    for i in pb.for_range("mst.linkverts", n - 1, cond_srcs=("g",)):
        pb.store(v_addr[i] + _V_NEXT, v_addr[i + 1], base="g", label="mst.link.next")

    # ---- add edges (random sparse graph, symmetric) --------------------------
    adjacency: dict[int, list[tuple[int, int]]] = {a: [] for a in v_addr}
    for i in pb.for_range("mst.mkedges", n, cond_srcs=("g",)):
        for _ in range(degree):
            j = int(pb.rng.integers(0, n))
            if j == i:
                continue
            w = pb.rand_small(1, 1000)
            for a, b in ((v_addr[i], v_addr[j]), (v_addr[j], v_addr[i])):
                e = pb.malloc(_E_BYTES)
                head = pb.load(a + _V_HASH, "eh", base="g", label="mst.edge.ldh")
                pb.store(e + _E_NBR, b, base="g", label="mst.edge.nbr")
                pb.store(e + _E_W, w, base="g", label="mst.edge.w")
                pb.store(e + _E_NEXT, head, base="g", src="eh", label="mst.edge.nx")
                pb.store(a + _V_HASH, e, base="g", label="mst.edge.sth")
                adjacency[a].append((b, w))
            pb.branch("mst.edge.more", taken=True)
        pb.branch("mst.edge.done", taken=False)

    # ---- Prim's algorithm -----------------------------------------------------
    in_tree = {v_addr[0]}
    dist = {a: _INF for a in v_addr}
    pb.store(v_addr[0] + _V_DIST, 0, base="g", label="mst.prim.seed")
    dist[v_addr[0]] = 0
    current = v_addr[0]
    total_weight = 0

    for _round in pb.for_range("mst.prim", n - 1, cond_srcs=("g",)):
        # Relax edges of the vertex just added.
        e = pb.load(current + _V_HASH, "e", base="cur", label="mst.relax.ldh")
        for nbr, w in adjacency[current]:
            pb.branch("mst.relax.loop", taken=True, srcs=("e",))
            nb = pb.load(e + _E_NBR, "nb", base="e", label="mst.relax.ldnbr")
            ww = pb.load(e + _E_W, "w", base="e", label="mst.relax.ldw")
            e = pb.load(e + _E_NEXT, "e", base="e", label="mst.relax.ldnx")
            d = pb.load(nbr + _V_DIST, "d", base="nb", label="mst.relax.ldd")
            if pb.if_("mst.relax.better", ww < d and nbr not in in_tree, srcs=("w", "d")):
                pb.store(nbr + _V_DIST, ww, base="nb", src="w", label="mst.relax.std")
                dist[nbr] = ww
        pb.branch("mst.relax.loop", taken=False, srcs=("e",))

        # Scan the remaining vertices for the minimum distance (list walk).
        best, best_d = None, _INF + 1
        p = pb.load(v_addr[0] + _V_NEXT, "p", base="g", label="mst.scan.ldh")
        for a in v_addr:
            if a in in_tree:
                continue
            pb.branch("mst.scan.loop", taken=True, srcs=("p",))
            d = pb.load(a + _V_DIST, "d", base="p", label="mst.scan.ldd")
            pb.load(a + _V_KEY, "k", base="p", label="mst.scan.ldk")
            pb.load(a + _V_NEXT, "p", base="p", label="mst.scan.ldnx")
            if pb.if_("mst.scan.min", d < best_d, srcs=("d", "best")):
                pb.op("best", ("d",), label="mst.scan.take")
                best, best_d = a, d
        pb.branch("mst.scan.loop", taken=False, srcs=("p",))
        if best is None:
            break
        in_tree.add(best)
        total_weight += best_d
        pb.op("total", ("total", "best"), label="mst.prim.acc")
        current = best
        pb.op("cur", ("best",), label="mst.prim.cur")

    out = pb.static_array(1)
    pb.store(out, total_weight, src="total", label="mst.result")
    return pb.build(
        description="Prim's MST with linked vertex/edge lists",
        params={"vertices": n, "degree": degree, "weight": total_weight},
    )
