"""Repository-wide API-quality gates.

* every public module, class and function in :mod:`repro` carries a
  docstring (deliverable (e): "doc comments on every public item");
* the top-level lazy re-exports resolve;
* the exception hierarchy is rooted at :class:`ReproError`.
"""

import importlib
import inspect
import pkgutil

import pytest

import repro
import repro.errors


def _walk_modules():
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        if info.name.endswith("__main__"):
            continue  # executing a CLI entry point at import is the point
        yield importlib.import_module(info.name)


ALL_MODULES = list(_walk_modules())


class TestDocstrings:
    @pytest.mark.parametrize("module", ALL_MODULES, ids=lambda m: m.__name__)
    def test_module_documented(self, module):
        assert module.__doc__ and module.__doc__.strip(), module.__name__

    @pytest.mark.parametrize("module", ALL_MODULES, ids=lambda m: m.__name__)
    def test_public_items_documented(self, module):
        undocumented = []
        for name, obj in vars(module).items():
            if name.startswith("_"):
                continue
            if not (inspect.isclass(obj) or inspect.isfunction(obj)):
                continue
            if getattr(obj, "__module__", None) != module.__name__:
                continue  # re-export; documented at its home
            if not (obj.__doc__ and obj.__doc__.strip()):
                undocumented.append(name)
            if inspect.isclass(obj):
                for mname, member in vars(obj).items():
                    if mname.startswith("_") or not inspect.isfunction(member):
                        continue
                    if not (member.__doc__ and member.__doc__.strip()):
                        undocumented.append(f"{name}.{mname}")
        assert not undocumented, f"{module.__name__}: {undocumented}"


class TestTopLevelApi:
    @pytest.mark.parametrize("name", sorted(set(repro.__all__) - {"__version__"}))
    def test_lazy_exports_resolve(self, name):
        assert getattr(repro, name) is not None

    def test_unknown_attribute_raises(self):
        with pytest.raises(AttributeError):
            repro.definitely_not_an_api

    def test_version_shape(self):
        parts = repro.__version__.split(".")
        assert len(parts) == 3
        assert all(p.isdigit() for p in parts)


class TestErrorHierarchy:
    def test_all_errors_derive_from_repro_error(self):
        for name in repro.errors.__all__:
            exc = getattr(repro.errors, name)
            assert issubclass(exc, repro.errors.ReproError), name

    def test_library_raises_catchable_errors(self):
        from repro.workloads.registry import get_workload

        with pytest.raises(repro.errors.ReproError):
            get_workload("no.such.workload")
