"""Figure 10 — comparison of memory traffic (normalized to BC = 100 %).

The paper's headline numbers: BCC ≈ 60 % of BC (compression alone),
BCP ≈ 180 % (prefetching blows up traffic), CPP ≈ 90 % (prefetching that
*reduces* traffic).
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.experiments._matrix import normalized_comparison
from repro.experiments.common import ExperimentOutput

__all__ = ["run", "FIGURE", "TITLE"]

FIGURE = "fig10"
TITLE = "Memory traffic (bus words) normalized to BC"


def run(
    workloads: Sequence[str] | None = None,
    *,
    seed: int = 1,
    scale: float = 1.0,
) -> ExperimentOutput:
    """Regenerate this figure over *workloads* (default: all fourteen)."""
    return normalized_comparison(
        figure=FIGURE,
        title=TITLE,
        metric=lambda r: float(r.bus_words),
        workloads=workloads,
        seed=seed,
        scale=scale,
        paper_reference=(
            "Figure 10: BCC ~60% of BC on average; BCP ~180%; CPP ~90% — "
            "CPP prefetches yet still reduces traffic below the baseline."
        ),
        notes=(
            "Our CPP lands lower than the paper's 90% because the synthetic "
            "workloads' hot words are more uniformly compressible, so paired "
            "fills satisfy more future misses; the ordering CPP < BC < BCP "
            "is the reproduced claim."
        ),
    )
