"""Unit tests for bus traffic accounting."""

import pytest

from repro.memory.bus import BusMeter, TrafficKind


class TestBusMeter:
    def test_records_by_kind(self):
        bus = BusMeter()
        bus.record(TrafficKind.FILL, 32)
        bus.record(TrafficKind.PREFETCH, 16)
        bus.record(TrafficKind.WRITEBACK, 8)
        assert bus.fill_words == 32
        assert bus.prefetch_words == 16
        assert bus.writeback_words == 8
        assert bus.total_words == 56

    def test_transfer_counts(self):
        bus = BusMeter()
        bus.record(TrafficKind.FILL, 32)
        bus.record(TrafficKind.FILL, 32)
        assert bus.transfers_by_kind[TrafficKind.FILL] == 2

    def test_zero_word_transfer_counts_transaction(self):
        bus = BusMeter()
        bus.record(TrafficKind.WRITEBACK, 0)
        assert bus.total_words == 0
        assert bus.transfers_by_kind[TrafficKind.WRITEBACK] == 1

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            BusMeter().record(TrafficKind.FILL, -1)

    def test_reset(self):
        bus = BusMeter()
        bus.record(TrafficKind.FILL, 32)
        bus.reset()
        assert bus.total_words == 0
        assert bus.transfers_by_kind[TrafficKind.FILL] == 0
