"""Cross-process telemetry: spool in the child, merge in the parent.

Since PR 2 every matrix cell runs in a supervised fork, which made the
in-process observability of PR 1 blind: metrics, phases and spans
recorded *inside* a child died with it. This module is the pipe across
that boundary:

* **Child side** — :func:`child_begin` (called by the fork shell right
  after the fork) resets the inherited registry/phase state so the child
  measures only itself, adopts the supervisor's span context, and drops
  a ``*.partial`` marker file. :func:`child_finish` serializes the
  child's spans + :meth:`MetricsRegistry.dump` +
  :meth:`PhaseTimer.snapshot` into a per-cell **spool file** (atomic
  write-temp-then-rename) and removes the marker. A killed or hung child
  never reaches ``child_finish`` — its marker survives as evidence, and
  the store records the attempt as *partial* instead of ingesting a
  truncated payload.

* **Parent side** — :class:`TelemetryStore` ingests spool payloads keyed
  by ``(cell id, attempt)`` and merges them **deterministically**:
  counters sum, histograms merge bucket-wise (percentiles re-estimated
  from the merged buckets), gauges take the last writer *in sorted cell
  order* — so the merged snapshot is a pure function of the set of
  payloads, independent of completion order (tier-1 tested).

Everything is off until :func:`configure` is called with a run
directory; the disabled path is the usual module-global gate. Exporters
(:mod:`repro.obs.export`) and ``python -m repro.obs.report telemetry``
consume the merged store.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path

from repro.errors import ExperimentError
from repro.obs import span as _span
from repro.obs.metrics import REGISTRY, percentiles_from_buckets
from repro.obs.phases import PHASES
from repro.utils.atomic import atomic_write_text

__all__ = [
    "configure",
    "enabled",
    "run_dir",
    "store",
    "cell_id_of",
    "child_begin",
    "child_finish",
    "TelemetryStore",
    "finalize_run",
    "load_store",
    "merge_metric_dumps",
    "merge_phase_snapshots",
    "STORE_FILENAME",
]

SCHEMA_VERSION = 1
STORE_FILENAME = "telemetry.json"
_SPOOL_SUBDIR = "spool"

#: Fast-path gate: true exactly while a run directory is configured.
ACTIVE = False

_RUN_DIR: Path | None = None
_STORE: "TelemetryStore | None" = None


def configure(directory: str | Path | None) -> "TelemetryStore | None":
    """Arm telemetry into *directory* (None disarms); returns the store.

    Arming also installs span recording (the pipeline is pointless
    without spans); disarming uninstalls it and forgets the store —
    callers who want the data must :func:`finalize_run` first.
    """
    global ACTIVE, _RUN_DIR, _STORE
    if directory is None:
        ACTIVE = False
        _RUN_DIR = None
        _STORE = None
        _span.uninstall()
        return None
    _RUN_DIR = Path(directory)
    (_RUN_DIR / _SPOOL_SUBDIR).mkdir(parents=True, exist_ok=True)
    trace_id = _span.install()
    _STORE = TelemetryStore(trace_id=trace_id)
    ACTIVE = True
    return _STORE


def enabled() -> bool:
    """Is the telemetry pipeline armed?"""
    return ACTIVE


def run_dir() -> Path | None:
    """The configured run directory (None = disarmed)."""
    return _RUN_DIR


def store() -> "TelemetryStore | None":
    """The parent-side store of the current run (None = disarmed)."""
    return _STORE


def cell_id_of(key: tuple) -> str:
    """Stable, filesystem-safe identity of one cell key.

    Human-readable prefix (first two string-ish components) plus a short
    hash of the full key, so distinct keys can never collide on disk.
    """
    digest = hashlib.sha1(repr(tuple(key)).encode()).hexdigest()[:10]
    parts = [str(p) for p in key if isinstance(p, (str, int, float))][:2]
    slug = "_".join(parts) or "cell"
    safe = "".join(c if c.isalnum() or c in "._-" else "_" for c in slug)
    return f"{safe}-{digest}"


def _spool_path(directory: Path, cell: str, attempt: int) -> Path:
    return directory / _SPOOL_SUBDIR / f"{cell}-a{attempt}.json"


def _marker_path(directory: Path, cell: str, attempt: int) -> Path:
    return directory / _SPOOL_SUBDIR / f"{cell}-a{attempt}.partial"


# --------------------------------------------------------------------------
# Child side (runs inside the forked worker)
# --------------------------------------------------------------------------


def child_begin(telem: dict) -> None:
    """Start measuring one cell attempt inside a freshly forked child.

    *telem* is the supervisor's handoff: ``dir``, ``cell``, ``attempt``,
    ``trace``/``parent`` span context and the ``worker`` slot. Resets the
    registry and phase timer the fork inherited (the child must report
    its own deltas, not the parent's accumulated state), adopts the span
    context, and drops the partial marker.
    """
    REGISTRY.reset()
    PHASES.reset()
    _span.uninstall()
    _span.adopt(telem["trace"], telem.get("parent"))
    marker = _marker_path(Path(telem["dir"]), telem["cell"], telem["attempt"])
    marker.parent.mkdir(parents=True, exist_ok=True)
    marker.write_text("")


def child_finish(telem: dict, *, status: str = "ok") -> Path:
    """Spool the child's telemetry and clear its partial marker."""
    directory = Path(telem["dir"])
    payload = {
        "schema": SCHEMA_VERSION,
        "cell": telem["cell"],
        "key": list(telem.get("key", ())),
        "attempt": telem["attempt"],
        "worker": telem.get("worker"),
        "status": status,
        "pid": os.getpid(),
        "spans": [s.as_dict() for s in _span.drain()],
        "metrics": REGISTRY.dump(),
        "phases": PHASES.snapshot(),
    }
    path = _spool_path(directory, telem["cell"], telem["attempt"])
    atomic_write_text(path, json.dumps(payload, sort_keys=True) + "\n")
    _marker_path(directory, telem["cell"], telem["attempt"]).unlink(
        missing_ok=True
    )
    return path


# --------------------------------------------------------------------------
# Deterministic merge semantics
# --------------------------------------------------------------------------


def _merge_histogram(into: dict, entry: dict) -> None:
    a, b = into["data"], entry["data"]
    buckets = dict(a["buckets"])
    for edge, count in b["buckets"].items():
        buckets[edge] = buckets.get(edge, 0) + count
    count = a["count"] + b["count"]
    total = a["sum"] + b["sum"]
    merged = {
        "count": count,
        "sum": total,
        "mean": total / count if count else 0.0,
        "min": min(a["min"], b["min"]) if a["count"] and b["count"]
        else (a["min"] if a["count"] else b["min"]),
        "max": max(a["max"], b["max"]),
        "buckets": buckets,
    }
    bounds = tuple(into["bounds"])
    ordered = [buckets.get(str(e), 0) for e in bounds] + [
        buckets.get("inf", 0)
    ]
    merged.update(
        percentiles_from_buckets(
            bounds, ordered, count, merged["min"], merged["max"]
        )
    )
    into["data"] = merged


def merge_metric_dumps(dumps: dict[str, dict]) -> dict[str, dict]:
    """Merge per-source :meth:`MetricsRegistry.dump` payloads.

    *dumps* maps a source id to its typed dump; sources are processed in
    sorted id order, so the result is a pure function of the mapping:
    counters sum, histograms merge bucket-wise, gauges keep the value of
    the last source in sort order. A key whose type disagrees across
    sources degrades to last-writer (and is tagged ``"conflict": true``)
    rather than corrupting the merge.
    """
    merged: dict[str, dict] = {}
    for source in sorted(dumps):
        for key, entry in dumps[source].items():
            current = merged.get(key)
            if current is None:
                merged[key] = json.loads(json.dumps(entry))  # deep copy
            elif current["type"] != entry["type"]:
                fresh = json.loads(json.dumps(entry))
                fresh["conflict"] = True
                merged[key] = fresh
            elif entry["type"] == "counter":
                current["value"] += entry["value"]
            elif entry["type"] == "gauge":
                current["value"] = entry["value"]
            else:
                _merge_histogram(current, entry)
    return merged


def merge_phase_snapshots(snapshots: dict[str, dict]) -> dict[str, dict]:
    """Merge per-source :meth:`PhaseTimer.snapshot` payloads (sum both
    calls and seconds per path; order-independent by construction)."""
    merged: dict[str, dict] = {}
    for source in sorted(snapshots):
        for path, stat in snapshots[source].items():
            slot = merged.setdefault(path, {"calls": 0, "seconds": 0.0})
            slot["calls"] += stat["calls"]
            slot["seconds"] += stat["seconds"]
    return merged


# --------------------------------------------------------------------------
# Parent side
# --------------------------------------------------------------------------


class TelemetryStore:
    """Per-run telemetry, merged from child spools and the parent.

    ``cells`` holds one payload per ``(cell id, attempt)``; ``partials``
    lists attempts whose child died before spooling (their marker file
    survived). :meth:`merged` produces the unified view the exporters
    and the report CLI consume.
    """

    def __init__(self, trace_id: str = "") -> None:
        self.trace_id = trace_id
        self.cells: dict[tuple[str, int], dict] = {}
        self.partials: list[tuple[str, int]] = []
        self.parent: dict = {}

    def ingest_payload(self, payload: dict) -> None:
        """Add one child spool payload (idempotent per cell+attempt)."""
        self.cells[(payload["cell"], int(payload["attempt"]))] = payload

    def ingest_spool(self, cell: str, attempt: int) -> bool:
        """Read one attempt's spool file from the run directory.

        Returns True when the payload was ingested; on a missing or
        truncated spool (the child died mid-write or before writing) the
        attempt is recorded in ``partials`` instead and False returns —
        a dead child never corrupts the store.
        """
        if _RUN_DIR is None:
            return False
        path = _spool_path(_RUN_DIR, cell, attempt)
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
            if not isinstance(payload, dict) or "cell" not in payload:
                raise ValueError("not a spool payload")
        except (OSError, ValueError):
            self.note_partial(cell, attempt)
            return False
        self.ingest_payload(payload)
        return True

    def note_partial(self, cell: str, attempt: int) -> None:
        """Record an attempt that died before spooling its telemetry."""
        entry = (cell, attempt)
        if entry not in self.partials:
            self.partials.append(entry)

    def set_parent(self, spans: list, metrics: dict, phases: dict) -> None:
        """Attach the supervisor's own telemetry (spans, fault.* metrics)."""
        self.parent = {
            "spans": [
                s.as_dict() if hasattr(s, "as_dict") else s for s in spans
            ],
            "metrics": metrics,
            "phases": phases,
            "pid": os.getpid(),
        }

    # -- unified views -------------------------------------------------------

    def spans(self) -> list[dict]:
        """Every span in the run — parent first, then cells in sorted
        (cell, attempt) order, each stream kept in recording order."""
        out = list(self.parent.get("spans", ()))
        for key in sorted(self.cells):
            out.extend(self.cells[key].get("spans", ()))
        return out

    def merged(self) -> dict:
        """The deterministic cross-process rollup."""
        metric_sources = {
            f"{cell}#a{attempt}": payload.get("metrics", {})
            for (cell, attempt), payload in self.cells.items()
        }
        phase_sources = {
            f"{cell}#a{attempt}": payload.get("phases", {})
            for (cell, attempt), payload in self.cells.items()
        }
        if self.parent:
            metric_sources["~parent"] = self.parent.get("metrics", {})
            phase_sources["~parent"] = self.parent.get("phases", {})
        return {
            "schema": SCHEMA_VERSION,
            "trace_id": self.trace_id,
            "n_cells": len({cell for cell, _ in self.cells}),
            "n_attempts": len(self.cells),
            "partials": [list(p) for p in sorted(self.partials)],
            "metrics": merge_metric_dumps(metric_sources),
            "phases": merge_phase_snapshots(phase_sources),
        }

    def as_dict(self) -> dict:
        """Full JSON-ready form (payloads + the merged rollup)."""
        return {
            "schema": SCHEMA_VERSION,
            "trace_id": self.trace_id,
            "cells": [self.cells[k] for k in sorted(self.cells)],
            "partials": [list(p) for p in sorted(self.partials)],
            "parent": self.parent,
            "merged": self.merged(),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "TelemetryStore":
        store = cls(trace_id=data.get("trace_id", ""))
        for payload in data.get("cells", ()):
            store.ingest_payload(payload)
        for cell, attempt in data.get("partials", ()):
            store.note_partial(cell, int(attempt))
        store.parent = data.get("parent", {})
        return store

    def save(self, path: str | Path) -> Path:
        """Write the store atomically as JSON; returns the path."""
        return atomic_write_text(
            path, json.dumps(self.as_dict(), sort_keys=True) + "\n"
        )


def finalize_run() -> Path | None:
    """Fold the parent's telemetry in and persist the store.

    Captures the supervisor's finished spans, its ``fault.*``/campaign
    metrics and phase timings, writes ``telemetry.json`` into the run
    directory, and returns its path (None when disarmed). Idempotent —
    call it after every supervised stage; the last call wins with the
    fullest picture.
    """
    if not ACTIVE or _RUN_DIR is None or _STORE is None:
        return None
    _STORE.set_parent(
        _span.finished_spans(), REGISTRY.dump(), PHASES.snapshot()
    )
    return _STORE.save(_RUN_DIR / STORE_FILENAME)


def load_store(directory: str | Path) -> TelemetryStore:
    """Load a run directory's telemetry store.

    Prefers ``telemetry.json``; spool files not already in the store
    (a supervisor that died before finalizing) are swept in, and any
    surviving ``*.partial`` markers are recorded as partial attempts.
    """
    directory = Path(directory)
    store_path = directory / STORE_FILENAME
    if store_path.exists():
        try:
            store = TelemetryStore.from_dict(
                json.loads(store_path.read_text(encoding="utf-8"))
            )
        except (json.JSONDecodeError, TypeError) as exc:
            raise ExperimentError(
                f"malformed telemetry store {store_path}: {exc}"
            ) from exc
    elif (directory / _SPOOL_SUBDIR).is_dir():
        store = TelemetryStore()
    else:
        raise ExperimentError(f"no telemetry under {directory}")
    spool = directory / _SPOOL_SUBDIR
    if spool.is_dir():
        for path in sorted(spool.glob("*.json")):
            try:
                payload = json.loads(path.read_text(encoding="utf-8"))
            except (OSError, json.JSONDecodeError):
                continue
            if (
                isinstance(payload, dict)
                and "cell" in payload
                and (payload["cell"], int(payload.get("attempt", 1)))
                not in store.cells
            ):
                store.ingest_payload(payload)
        for path in sorted(spool.glob("*.partial")):
            stem = path.name[: -len(".partial")]
            cell, _, attempt = stem.rpartition("-a")
            try:
                store.note_partial(cell, int(attempt))
            except ValueError:
                continue
    return store
