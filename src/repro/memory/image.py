"""Sparse, page-backed simulated memory of 32-bit words.

The image is the authoritative backing store for all simulated data. It is
sparse (only touched 4 KB pages are materialized) so workloads can use
realistic, widely separated address regions (stack vs. heap vs. globals)
without host-memory cost.

Reads of never-written addresses return zero, matching zero-fill-on-demand
OS behaviour; a ``strict`` image raises instead, which the tests use to
prove the simulator never *depends* on uninitialized data.
"""

from __future__ import annotations

import numpy as np

from repro.errors import AlignmentError, UnmappedAddressError
from repro.utils.bitmask import as_mask, as_words
from repro.utils.bitops import MASK32

__all__ = ["MemoryImage", "PAGE_BYTES", "PAGE_WORDS", "WORD_BYTES"]

WORD_BYTES = 4
PAGE_BYTES = 4096
PAGE_WORDS = PAGE_BYTES // WORD_BYTES
_PAGE_SHIFT = 12
_PAGE_MASK = PAGE_BYTES - 1


class MemoryImage:
    """A sparse map from 32-bit word-aligned addresses to 32-bit values."""

    __slots__ = ("_pages", "strict")

    def __init__(self, *, strict: bool = False) -> None:
        self._pages: dict[int, np.ndarray] = {}
        self.strict = strict

    # ---- single-word access ------------------------------------------------

    @staticmethod
    def _check_aligned(addr: int) -> None:
        if addr & (WORD_BYTES - 1):
            raise AlignmentError(addr, WORD_BYTES)
        if not 0 <= addr <= MASK32:
            raise UnmappedAddressError(addr)

    def read_word(self, addr: int) -> int:
        """Read the 32-bit word at word-aligned *addr* (0 if untouched)."""
        self._check_aligned(addr)
        page = self._pages.get(addr >> _PAGE_SHIFT)
        if page is None:
            if self.strict:
                raise UnmappedAddressError(addr)
            return 0
        return int(page[(addr & _PAGE_MASK) >> 2])

    def write_word(self, addr: int, value: int) -> None:
        """Write a 32-bit value at word-aligned *addr*, mapping its page."""
        self._check_aligned(addr)
        page_no = addr >> _PAGE_SHIFT
        page = self._pages.get(page_no)
        if page is None:
            page = np.zeros(PAGE_WORDS, dtype=np.uint32)
            self._pages[page_no] = page
        page[(addr & _PAGE_MASK) >> 2] = value & MASK32

    # ---- block access (cache-line fills / writebacks) -----------------------

    def read_words(self, addr: int, n: int) -> np.ndarray:
        """Read *n* consecutive words starting at *addr* into a uint32 array."""
        self._check_aligned(addr)
        if n < 0:
            raise ValueError("word count must be non-negative")
        out = np.zeros(n, dtype=np.uint32)
        i = 0
        while i < n:
            a = addr + i * WORD_BYTES
            page_no = a >> _PAGE_SHIFT
            offset = (a & _PAGE_MASK) >> 2
            take = min(n - i, PAGE_WORDS - offset)
            page = self._pages.get(page_no)
            if page is not None:
                out[i : i + take] = page[offset : offset + take]
            elif self.strict:
                raise UnmappedAddressError(a)
            i += take
        return out

    def read_words_list(self, addr: int, n: int) -> list[int]:
        """Read *n* consecutive words starting at *addr* as Python ints.

        The cache models' fill path: one bulk page slice per page
        touched, no per-access NumPy array survives the call.
        """
        self._check_aligned(addr)
        if n < 0:
            raise ValueError("word count must be non-negative")
        out: list[int] = []
        i = 0
        while i < n:
            a = addr + i * WORD_BYTES
            page_no = a >> _PAGE_SHIFT
            offset = (a & _PAGE_MASK) >> 2
            take = min(n - i, PAGE_WORDS - offset)
            page = self._pages.get(page_no)
            if page is not None:
                out += page[offset : offset + take].tolist()
            elif self.strict:
                raise UnmappedAddressError(a)
            else:
                out += [0] * take
            i += take
        return out

    def write_words(self, addr: int, values: np.ndarray | list[int]) -> None:
        """Write consecutive words starting at *addr*."""
        self._check_aligned(addr)
        values = np.asarray(values, dtype=np.uint32)
        n = len(values)
        i = 0
        while i < n:
            a = addr + i * WORD_BYTES
            page_no = a >> _PAGE_SHIFT
            offset = (a & _PAGE_MASK) >> 2
            take = min(n - i, PAGE_WORDS - offset)
            page = self._pages.get(page_no)
            if page is None:
                page = np.zeros(PAGE_WORDS, dtype=np.uint32)
                self._pages[page_no] = page
            page[offset : offset + take] = values[i : i + take]
            i += take

    def write_words_masked(self, addr: int, values, mask) -> None:
        """Write only the words selected by *mask* (partial write-back).

        Partial dirty lines occur in the CPP design (a promoted affiliated
        line has holes); memory keeps its old contents for the holes.
        *mask* is a packed int (bit *i* = word *i*) or a bool sequence.
        """
        values = as_words(values)
        mask = as_mask(mask)
        if mask >> len(values):
            raise ValueError("mask selects words beyond the value list")
        m = mask
        while m:
            low = m & -m
            i = low.bit_length() - 1
            m ^= low
            self.write_word(addr + i * WORD_BYTES, values[i])

    # ---- management ----------------------------------------------------------

    def copy(self) -> "MemoryImage":
        """Deep copy (used to reset memory state between simulations)."""
        clone = MemoryImage(strict=self.strict)
        clone._pages = {no: page.copy() for no, page in self._pages.items()}
        return clone

    @property
    def n_pages(self) -> int:
        return len(self._pages)

    @property
    def footprint_bytes(self) -> int:
        """Bytes of simulated memory touched so far."""
        return self.n_pages * PAGE_BYTES

    def touched_pages(self) -> list[int]:
        """Sorted page numbers that have been materialized."""
        return sorted(self._pages)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, MemoryImage):
            return NotImplemented
        keys = set(self._pages) | set(other._pages)
        zero = np.zeros(PAGE_WORDS, dtype=np.uint32)
        for key in keys:
            a = self._pages.get(key, zero)
            b = other._pages.get(key, zero)
            if not np.array_equal(a, b):
                return False
        return True

    def __hash__(self) -> None:  # type: ignore[override]
        raise TypeError("MemoryImage is mutable and unhashable")
