"""Micro-benchmarks of the compression layer itself.

These are genuine throughput measurements (multiple rounds): the
vectorized classifier is the hot path of the Figure 3 analysis and of
every CPP cache fill.
"""

import numpy as np

from repro.compression.codec import compress_word, decompress_word, pack_line
from repro.compression.vectorized import classify_words, compression_summary

N = 100_000
rng = np.random.default_rng(11)
VALUES = rng.integers(0, 1 << 32, N, dtype=np.uint32)
ADDRS = (np.uint32(0x1000_0000) + 4 * np.arange(N, dtype=np.uint32)).astype(
    np.uint32
)


def test_vectorized_classify_throughput(benchmark):
    out = benchmark(classify_words, VALUES, ADDRS)
    assert out.shape == (N,)
    benchmark.extra_info["words_per_call"] = N


def test_vectorized_summary_throughput(benchmark):
    summary = benchmark(compression_summary, VALUES, ADDRS)
    assert summary.n_words == N


def test_scalar_codec_roundtrip(benchmark):
    small_values = [int(v) % 16000 for v in VALUES[:2000]]
    addrs = [int(a) for a in ADDRS[:2000]]

    def roundtrip():
        total = 0
        for v, a in zip(small_values, addrs):
            cw = compress_word(v, a)
            total += decompress_word(cw, a)
        return total

    assert benchmark(roundtrip) == sum(small_values)


def test_line_pack_throughput(benchmark):
    lines = [
        ([int(v) for v in VALUES[i : i + 32]], [int(a) for a in ADDRS[i : i + 32]])
        for i in range(0, 32 * 64, 32)
    ]

    def pack_all():
        return sum(pack_line(v, a).bus_words for v, a in lines)

    words = benchmark(pack_all)
    assert 0 < words <= 33 * len(lines)
