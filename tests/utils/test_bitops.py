"""Unit tests for 32-bit word bit manipulation."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.utils.bitops import (
    MASK32,
    bit,
    bits,
    high_bits,
    low_bits,
    replicate_bit,
    sign_extend,
    to_int32,
    to_uint32,
)

words = st.integers(min_value=0, max_value=MASK32)


class TestConversions:
    def test_to_uint32_truncates(self):
        assert to_uint32(1 << 35) == 0
        assert to_uint32((1 << 35) | 5) == 5

    def test_to_uint32_identity_in_range(self):
        assert to_uint32(0xDEADBEEF) == 0xDEADBEEF

    def test_to_int32_positive(self):
        assert to_int32(5) == 5
        assert to_int32(0x7FFF_FFFF) == 2**31 - 1

    def test_to_int32_negative(self):
        assert to_int32(0xFFFF_FFFF) == -1
        assert to_int32(0x8000_0000) == -(2**31)

    @given(words)
    def test_roundtrip(self, w):
        assert to_uint32(to_int32(w)) == w


class TestBitExtraction:
    def test_bit(self):
        assert bit(0b1010, 1) == 1
        assert bit(0b1010, 0) == 0
        assert bit(1 << 31, 31) == 1

    def test_bit_range_checked(self):
        with pytest.raises(ValueError):
            bit(0, 32)
        with pytest.raises(ValueError):
            bit(0, -1)

    def test_bits_field(self):
        assert bits(0xABCD0000, 16, 31) == 0xABCD
        assert bits(0xFF, 0, 3) == 0xF

    def test_bits_invalid_order(self):
        with pytest.raises(ValueError):
            bits(0, 5, 4)

    def test_low_bits(self):
        assert low_bits(0xFFFF_FFFF, 15) == 0x7FFF
        assert low_bits(0x1234, 0) == 0
        assert low_bits(0x1234, 32) == 0x1234

    def test_high_bits(self):
        assert high_bits(0xFFFF0000, 16) == 0xFFFF
        assert high_bits(0x8000_0000, 1) == 1
        assert high_bits(0x1234, 0) == 0

    def test_high_bits_paper_prefix(self):
        # The 17-bit prefix test of the paper's pointer compression.
        a = 0x1000_2000
        b = 0x1000_5FFC
        assert high_bits(a, 17) == high_bits(b, 17)
        c = 0x1000_8000  # next 32 KB chunk
        assert high_bits(a, 17) != high_bits(c, 17)

    @given(words, st.integers(min_value=0, max_value=32))
    def test_low_high_partition(self, w, n):
        lo = low_bits(w, n)
        hi = high_bits(w, 32 - n)
        assert (hi << n) | lo == w


class TestSignExtend:
    def test_positive_small(self):
        assert sign_extend(0x3FFF, 15) == 0x3FFF

    def test_negative_small(self):
        # -1 in 15 bits -> -1 in 32 bits.
        assert sign_extend(0x7FFF, 15) == MASK32

    def test_paper_boundaries(self):
        # Paper: compressible small values span [-16384, 16383].
        assert to_int32(sign_extend(0x4000, 15)) == -16384
        assert to_int32(sign_extend(0x3FFF, 15)) == 16383

    def test_full_width_identity(self):
        assert sign_extend(0xDEADBEEF, 32) == 0xDEADBEEF

    def test_invalid_width(self):
        with pytest.raises(ValueError):
            sign_extend(0, 0)
        with pytest.raises(ValueError):
            sign_extend(0, 33)

    @given(st.integers(min_value=-16384, max_value=16383))
    def test_roundtrip_small_values(self, v):
        assert to_int32(sign_extend(to_uint32(v), 15)) == v


class TestReplicateBit:
    def test_ones(self):
        assert replicate_bit(1, 17) == (1 << 17) - 1

    def test_zeros(self):
        assert replicate_bit(0, 17) == 0

    def test_rejects_non_bit(self):
        with pytest.raises(ValueError):
            replicate_bit(2, 4)
