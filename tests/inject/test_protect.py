"""Protection-model semantics and the SECDED latency model."""

import pytest

from repro.compression.timing import ECCDelayModel, secded_check_bits
from repro.errors import ConfigurationError
from repro.inject.protect import PROTECTION_NAMES, build_protection


class TestSemantics:
    def test_none_never_detects(self):
        p = build_protection("none")
        for n in range(1, 8):
            assert not p.detects(n)
            assert not p.corrects(n)

    def test_parity_detects_odd_only(self):
        p = build_protection("parity")
        assert p.detects(1)
        assert not p.detects(2)
        assert p.detects(3)
        assert not p.corrects(1)

    def test_secded_detects_one_and_two_corrects_one(self):
        p = build_protection("secded")
        assert p.detects(1) and p.corrects(1)
        assert p.detects(2) and not p.corrects(2)
        # Triple flips can alias to a valid codeword: not guaranteed caught.
        assert not p.detects(3)

    def test_unknown_name_rejected(self):
        with pytest.raises(ConfigurationError):
            build_protection("hamming")

    def test_names_cover_builders(self):
        for name in PROTECTION_NAMES:
            assert build_protection(name).name == name


class TestEccDelayModel:
    def test_check_bits_match_hamming_bound(self):
        # SECDED on k data bits needs r with 2^r >= k + r + 1, plus one.
        assert secded_check_bits(8) == 5
        assert secded_check_bits(32) == 7
        assert secded_check_bits(64) == 8

    def test_codeword_width(self):
        m = ECCDelayModel(data_bits=32)
        assert m.codeword_bits == 32 + m.check_bits

    def test_gate_tree_depth_grows_with_width(self):
        narrow = ECCDelayModel(data_bits=8)
        wide = ECCDelayModel(data_bits=64)
        assert wide.parity_gate_delays >= narrow.parity_gate_delays

    def test_cycles_quantize_gate_delays(self):
        # A path fitting the per-cycle budget hides under tag match.
        assert ECCDelayModel.cycles(0, 8) == 0
        assert ECCDelayModel.cycles(8, 8) == 0
        assert ECCDelayModel.cycles(9, 8) == 2
        assert ECCDelayModel.cycles(17, 8) == 3

    def test_protection_latency_wired(self):
        p = build_protection("secded", slot_bits=32, gate_delays_per_cycle=2)
        # With only 2 gate delays per cycle the syndrome tree cannot be free.
        assert p.detect_cycles >= 1
        assert p.correct_cycles >= p.detect_cycles
