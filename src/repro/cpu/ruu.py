"""Register-update-unit (ROB) entries and dependence bookkeeping.

SimpleScalar's RUU unifies reservation stations and the reorder buffer;
we keep the same shape: a bounded in-order window of in-flight
instructions, each tracking how many source operands are still pending.

Entries are designed for recycling: the core keeps a free list and calls
:meth:`RUUEntry.reset` instead of allocating a new object per dispatched
instruction. An entry is safe to recycle once it commits — its consumers
list was cleared at writeback and commit removes it from the register
producer map, so no live reference can remain.
"""

from __future__ import annotations

from repro.isa.opcodes import OpClass

__all__ = ["EntryState", "RUUEntry"]

_LOAD = int(OpClass.LOAD)
_STORE = int(OpClass.STORE)


class EntryState:
    """In-flight instruction lifecycle (plain ints for speed)."""

    WAITING = 0  #: has unready source operands
    READY = 1  #: all operands ready, not yet issued
    ISSUED = 2  #: executing in a functional unit
    DONE = 3  #: result produced, awaiting in-order commit


class RUUEntry:
    """One RUU/ROB slot.

    ``op`` is stored as the plain int op-class code (``OpClass`` members
    compare and hash equal to their codes, so callers may pass either).
    """

    __slots__ = (
        "trace_idx",
        "op",
        "dest",
        "addr",
        "value",
        "state",
        "pending",
        "consumers",
        "complete_cycle",
        "is_load",
        "is_store",
        "miss_in_flight",
        "mispredicted",
    )

    def __init__(
        self,
        trace_idx: int,
        op: OpClass | int,
        dest: int,
        addr: int,
        value: int,
        *,
        mispredicted: bool = False,
    ) -> None:
        self.consumers: list[RUUEntry] = []  #: entries waiting on my result
        self.reset(trace_idx, int(op), dest, addr, value, mispredicted)

    def reset(
        self,
        trace_idx: int,
        op: int,
        dest: int,
        addr: int,
        value: int,
        mispredicted: bool,
    ) -> None:
        """Re-initialize a recycled entry for a newly dispatched instruction."""
        self.trace_idx = trace_idx
        self.op = op
        self.dest = dest
        self.addr = addr
        self.value = value
        self.state = EntryState.WAITING
        self.pending = 0  #: unready source operands
        self.consumers.clear()
        self.complete_cycle = -1
        self.is_load = op == _LOAD
        self.is_store = op == _STORE
        self.miss_in_flight = False
        self.mispredicted = mispredicted

    def wire_source(self, producer: "RUUEntry | None") -> None:
        """Make this entry depend on *producer* (None/done = already ready)."""
        if producer is not None and producer.state != EntryState.DONE:
            self.pending += 1
            producer.consumers.append(self)

    def finish_rename(self) -> None:
        """Transition to READY if no pending sources remained after rename."""
        if self.pending == 0:
            self.state = EntryState.READY

    def wake(self) -> None:
        """A producer completed; become READY when the last one arrives."""
        self.pending -= 1
        if self.pending == 0 and self.state == EntryState.WAITING:
            self.state = EntryState.READY

    def __repr__(self) -> str:  # pragma: no cover - debug cosmetic
        names = {0: "WAIT", 1: "READY", 2: "ISSUED", 3: "DONE"}
        return (
            f"<RUU #{self.trace_idx} {OpClass(self.op).name} {names[self.state]} "
            f"pending={self.pending}>"
        )
