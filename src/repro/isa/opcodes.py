"""Dynamic-instruction operation classes and their execution latencies.

The classes mirror the functional-unit mix of the paper's baseline core
(Figure 9): integer ALUs, one integer multiplier/divider, two memory
ports, four FP adders, and one FP multiplier/divider.
"""

from __future__ import annotations

import enum

__all__ = ["OpClass", "is_mem", "is_branch", "EXEC_LATENCY"]


class OpClass(enum.IntEnum):
    """Operation class of a dynamic instruction."""

    NOP = 0
    IALU = 1  #: integer add/sub/logic/compare
    IMULT = 2  #: integer multiply
    IDIV = 3  #: integer divide
    FALU = 4  #: FP add/sub/compare/convert
    FMULT = 5  #: FP multiply
    FDIV = 6  #: FP divide
    LOAD = 7  #: memory read (32-bit word)
    STORE = 8  #: memory write (32-bit word)
    BRANCH = 9  #: conditional branch with a recorded outcome


#: Execution latency (cycles in the functional unit) per op class.
#: Loads add the memory-hierarchy latency on top of address generation.
EXEC_LATENCY: dict[OpClass, int] = {
    OpClass.NOP: 1,
    OpClass.IALU: 1,
    OpClass.IMULT: 3,
    OpClass.IDIV: 20,
    OpClass.FALU: 2,
    OpClass.FMULT: 4,
    OpClass.FDIV: 12,
    OpClass.LOAD: 1,  # address generation; cache latency added separately
    OpClass.STORE: 1,  # address generation; data drains via write buffer
    OpClass.BRANCH: 1,
}


def is_mem(op: OpClass | int) -> bool:
    """True for loads and stores."""
    return op == OpClass.LOAD or op == OpClass.STORE


def is_branch(op: OpClass | int) -> bool:
    """True for conditional branches."""
    return op == OpClass.BRANCH
