"""Stride prefetching — an extension beyond the paper's BCP baseline.

The paper's related work (§5) contrasts simple next-line prefetching [3]
with "more sophisticated schemes [that] use dynamic information to find
data items with fixed stride" (Baer & Chen [2]). This module implements
that stronger baseline so the repository can answer the natural follow-up
question: does CPP's advantage survive against a smarter prefetcher?

Because the hierarchy interface is address-based (no PC travels with an
access), the detector is a *page-local delta* predictor rather than a
PC-indexed reference prediction table: per 4 KB region it tracks the last
missing line and the last inter-miss delta; two consecutive equal deltas
arm a prefetch of ``line + delta``. This captures the same regular-stride
array behaviour the Baer-Chen table targets.

Everything else — buffers beside the caches, pollution-free supplies,
tagged re-arming, timing — is inherited from
:class:`~repro.caches.next_line.PrefetchingCache`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.caches.base import Cache
from repro.caches.next_line import PrefetchingCache

__all__ = ["StrideDetector", "StridePrefetchingCache"]

_PAGE_SHIFT = 12  #: 4 KB detection regions


@dataclass
class _RegionState:
    last_line: int
    delta: int = 0
    confirmed: bool = False


class StrideDetector:
    """Page-local inter-miss stride detection."""

    def __init__(self, max_regions: int = 256, *, line_shift: int = 6) -> None:
        self.max_regions = max_regions
        self._region_shift = max(0, _PAGE_SHIFT - line_shift)
        self._regions: dict[int, _RegionState] = {}
        self.predictions = 0

    def observe(self, line_no: int) -> int | None:
        """Record a demand miss; returns the predicted next line, if any.

        The prediction requires two consecutive misses in the region with
        the same non-zero delta (the Baer-Chen 'steady' criterion).
        """
        region = line_no >> self._region_shift
        state = self._regions.get(region)
        prediction = None
        if state is None:
            if len(self._regions) >= self.max_regions:
                # Evict an arbitrary (oldest-inserted) region.
                self._regions.pop(next(iter(self._regions)))
            self._regions[region] = _RegionState(last_line=line_no)
            return None
        delta = line_no - state.last_line
        if delta != 0 and delta == state.delta:
            state.confirmed = True
            prediction = line_no + delta
            self.predictions += 1
        else:
            state.confirmed = False
        state.delta = delta
        state.last_line = line_no
        return prediction


class StridePrefetchingCache(PrefetchingCache):
    """A prefetching cache whose target comes from the stride detector.

    Falls back to next-line when the detector has no confirmed stride,
    so it strictly generalizes BCP's policy.
    """

    def __init__(
        self, cache: Cache, buffer_entries: int, *, max_regions: int = 256
    ) -> None:
        super().__init__(cache, buffer_entries)
        self.detector = StrideDetector(max_regions, line_shift=cache.line_shift)

    def _issue_prefetch(self, missed_line_no: int, now: int) -> None:
        predicted = self.detector.observe(missed_line_no)
        target = predicted if predicted is not None else missed_line_no + 1
        target_addr = self.cache.line_addr(target)
        if target < 0 or self.cache.probe(target_addr) or target in self.buffer:
            return
        values, latency = self.cache.downstream.supply_prefetch(
            target_addr, self.cache.line_words, now
        )
        self.buffer.insert(target, values, ready_cycle=now + latency)
        self.stats.prefetches_issued += 1
        self.stats.extra["stride_prefetches"] = self.stats.extra.get(
            "stride_prefetches", 0
        ) + (1 if predicted is not None else 0)
