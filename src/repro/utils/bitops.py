"""Bit-level helpers for 32-bit machine words.

All simulated data paths in this repository are 32 bits wide (the paper
targets a 32-bit machine). Words are carried around as Python ints in
``[0, 2**32)``; these helpers convert between signed/unsigned views and
extract bit fields the way the hardware description in the paper does.
"""

from __future__ import annotations

__all__ = [
    "MASK32",
    "WORD_BITS",
    "to_uint32",
    "to_int32",
    "bit",
    "bits",
    "low_bits",
    "high_bits",
    "sign_extend",
    "replicate_bit",
]

WORD_BITS = 32
MASK32 = 0xFFFF_FFFF


def to_uint32(value: int) -> int:
    """Reduce an arbitrary Python int to its unsigned 32-bit representation."""
    return value & MASK32


def to_int32(value: int) -> int:
    """Interpret the low 32 bits of *value* as a two's-complement signed int."""
    value &= MASK32
    return value - (1 << 32) if value & 0x8000_0000 else value


def bit(value: int, index: int) -> int:
    """Return bit *index* (0 = LSB) of *value* as 0 or 1."""
    if not 0 <= index < WORD_BITS:
        raise ValueError(f"bit index {index} out of range for a 32-bit word")
    return (value >> index) & 1


def bits(value: int, lo: int, hi: int) -> int:
    """Return the inclusive bit field ``value[hi:lo]`` right-aligned.

    ``bits(0xABCD0000, 16, 31) == 0xABCD``.
    """
    if not 0 <= lo <= hi < WORD_BITS:
        raise ValueError(f"invalid bit field [{hi}:{lo}] for a 32-bit word")
    width = hi - lo + 1
    return (value >> lo) & ((1 << width) - 1)


def low_bits(value: int, n: int) -> int:
    """Return the *n* least-significant bits of *value*."""
    if not 0 <= n <= WORD_BITS:
        raise ValueError(f"cannot take low {n} bits of a 32-bit word")
    if n == 0:
        return 0
    return value & ((1 << n) - 1)


def high_bits(value: int, n: int) -> int:
    """Return the *n* most-significant bits of a 32-bit *value* right-aligned.

    ``high_bits(0xFFFF0000, 16) == 0xFFFF``.
    """
    if not 0 <= n <= WORD_BITS:
        raise ValueError(f"cannot take high {n} bits of a 32-bit word")
    if n == 0:
        return 0
    return (value & MASK32) >> (WORD_BITS - n)


def sign_extend(value: int, from_bits: int) -> int:
    """Sign-extend the low *from_bits* bits of *value* to 32 bits (unsigned).

    This is the decompressor operation for small values: the stored sign bit
    (bit ``from_bits - 1``) is replicated into all higher-order bit positions.
    """
    if not 1 <= from_bits <= WORD_BITS:
        raise ValueError(f"cannot sign-extend from {from_bits} bits")
    value = low_bits(value, from_bits)
    sign = value >> (from_bits - 1)
    if sign:
        value |= MASK32 & ~((1 << from_bits) - 1)
    return value


def replicate_bit(b: int, n: int) -> int:
    """Return an *n*-bit field consisting of *n* copies of bit *b* (0 or 1)."""
    if b not in (0, 1):
        raise ValueError("replicate_bit expects a single bit (0 or 1)")
    if not 0 <= n <= WORD_BITS:
        raise ValueError(f"cannot replicate into {n} bits")
    return ((1 << n) - 1) if b else 0
