"""Unit tests for the fully-associative LRU prefetch buffer."""

import numpy as np
import pytest

from repro.caches.prefetch_buffer import PrefetchBuffer
from repro.errors import ConfigurationError


def data(v, n=16):
    return np.full(n, v, dtype=np.uint32)


class TestBasics:
    def test_insert_and_pop(self):
        buf = PrefetchBuffer(4, 16)
        buf.insert(10, data(1), ready_cycle=5)
        entry = buf.pop(10)
        assert entry is not None
        assert entry.data[0] == 1
        assert entry.ready_cycle == 5
        assert buf.pop(10) is None  # consumed

    def test_contains(self):
        buf = PrefetchBuffer(2, 16)
        buf.insert(3, data(0))
        assert 3 in buf
        assert 4 not in buf

    def test_peek_does_not_consume(self):
        buf = PrefetchBuffer(2, 16)
        buf.insert(3, data(0))
        assert buf.peek(3) is not None
        assert 3 in buf

    def test_wrong_width_rejected(self):
        buf = PrefetchBuffer(2, 16)
        with pytest.raises(ConfigurationError):
            buf.insert(1, data(0, n=8))

    def test_min_entries(self):
        with pytest.raises(ConfigurationError):
            PrefetchBuffer(0, 16)


class TestLRU:
    def test_evicts_oldest_when_full(self):
        buf = PrefetchBuffer(2, 16)
        buf.insert(1, data(1))
        buf.insert(2, data(2))
        buf.insert(3, data(3))
        assert 1 not in buf
        assert 2 in buf and 3 in buf
        assert buf.evictions == 1

    def test_reinsert_refreshes(self):
        buf = PrefetchBuffer(2, 16)
        buf.insert(1, data(1))
        buf.insert(2, data(2))
        buf.insert(1, data(10), ready_cycle=99)  # refresh, no eviction
        buf.insert(3, data(3))  # evicts 2 (oldest)
        assert 1 in buf and 3 in buf and 2 not in buf
        assert buf.peek(1).data[0] == 10
        assert buf.peek(1).ready_cycle == 99

    def test_line_numbers_oldest_first(self):
        buf = PrefetchBuffer(3, 16)
        for ln in (5, 7, 6):
            buf.insert(ln, data(ln))
        assert buf.line_numbers() == [5, 7, 6]


class TestTiming:
    def test_ready_semantics(self):
        buf = PrefetchBuffer(2, 16)
        buf.insert(1, data(1), ready_cycle=100)
        entry = buf.peek(1)
        assert not entry.ready(50)
        assert entry.ready(100)
        assert entry.ready(150)

    def test_clear(self):
        buf = PrefetchBuffer(2, 16)
        buf.insert(1, data(1))
        buf.clear()
        assert len(buf) == 0
