#!/usr/bin/env python
"""Working with traces directly: save/load, classify, and dissect misses.

Shows the toolkit around the simulator itself:

* persist a generated trace as a ``.npz`` archive and reload it;
* classify every accessed value under the paper's prefix scheme *and*
  under a profiled frequent-value table (related work [6]);
* break the trace's misses into compulsory/capacity/conflict for the
  paper's L1 geometry (the §4.3 "conflict misses dominant" predicate).

Run:  python examples/trace_tools.py
"""

import tempfile
from pathlib import Path

from repro.analysis.breakdown import classify_misses
from repro.compression.frequent import profile_frequent_values
from repro.compression.vectorized import compression_summary
from repro.isa.traceio import load_trace, save_trace
from repro.utils.tables import format_table
from repro.workloads.registry import generate

WORKLOADS = ["olden.treeadd", "spec95.129.compress", "spec2000.300.twolf"]


def main() -> None:
    rows_values = []
    rows_misses = []
    with tempfile.TemporaryDirectory() as tmp:
        for name in WORKLOADS:
            program = generate(name, seed=1, scale=0.4)

            # -- persistence round trip ------------------------------------
            path = save_trace(program.trace, Path(tmp) / name)
            trace = load_trace(path)
            assert len(trace) == len(program.trace)

            # -- value classification: prefix scheme vs profiled FVC --------
            prefix = compression_summary(*trace.accessed_values())
            fvc = compression_summary(
                *trace.accessed_values(),
                profile_frequent_values(trace, top_n=256),
            )
            rows_values.append(
                [
                    name,
                    len(trace),
                    f"{path.stat().st_size / 1024:.0f} KB",
                    f"{prefix.fraction_compressible:.1%}",
                    f"{fvc.fraction_compressible:.1%}",
                ]
            )

            # -- three-C miss dissection (paper 8 KB direct-mapped L1) ------
            bk = classify_misses(trace)
            rows_misses.append(
                [
                    name,
                    bk.total,
                    f"{bk.fraction('compulsory'):.0%}",
                    f"{bk.fraction('capacity'):.0%}",
                    f"{bk.fraction('conflict'):.0%}",
                    "yes" if bk.conflict_dominated else "no",
                ]
            )

    print(
        format_table(
            ["workload", "instructions", ".npz size", "prefix comp.", "FVC-256 comp."],
            rows_values,
            title="Trace persistence + value classification",
        )
    )
    print()
    print(
        format_table(
            ["workload", "L1 misses", "compulsory", "capacity", "conflict",
             "conflict-dominated"],
            rows_misses,
            title="Three-C miss dissection (8 KB direct-mapped L1)",
        )
    )
    print(
        "\nThe conflict-dominated rows are where the paper predicts CPP "
        "beats plain prefetching (§4.3) — compare with Figure 11's bars."
    )


if __name__ == "__main__":
    main()
