#!/usr/bin/env python
"""Generate docs/API.md from the package's docstrings.

Walks every public module of :mod:`repro`, collects public classes and
functions with their signatures and first docstring lines, and writes a
single markdown index. Regenerate after API changes::

    python tools/gen_api_docs.py
"""

from __future__ import annotations

import importlib
import inspect
import pkgutil
from pathlib import Path

import repro

HEADER = """\
# API reference

One-line index of the public API, generated from docstrings by
`tools/gen_api_docs.py` — regenerate after API changes; do not edit by
hand. See module docstrings for the full discussions.
"""


def first_line(obj) -> str:
    """First non-empty docstring line of *obj* (or a placeholder)."""
    doc = inspect.getdoc(obj) or ""
    for line in doc.splitlines():
        line = line.strip()
        if line:
            return line
    return "(undocumented)"


def signature_of(obj) -> str:
    """Best-effort compact signature."""
    try:
        return str(inspect.signature(obj))
    except (TypeError, ValueError):
        return "(...)"


def walk_modules():
    """Public repro modules in name order (CLI shims excluded)."""
    names = sorted(
        info.name
        for info in pkgutil.walk_packages(repro.__path__, prefix="repro.")
        if not info.name.endswith("__main__")
    )
    return [importlib.import_module(name) for name in names]


def document_module(module) -> list[str]:
    lines = [f"## `{module.__name__}`", "", first_line(module), ""]
    entries = []
    for name, obj in sorted(vars(module).items()):
        if name.startswith("_"):
            continue
        if getattr(obj, "__module__", None) != module.__name__:
            continue
        if inspect.isclass(obj):
            entries.append(f"- **class `{name}`** — {first_line(obj)}")
            for mname, member in sorted(vars(obj).items()):
                if mname.startswith("_"):
                    continue
                if inspect.isfunction(member):
                    entries.append(
                        f"  - `{mname}{signature_of(member)}` — {first_line(member)}"
                    )
                elif isinstance(member, property):
                    entries.append(f"  - `{mname}` (property) — {first_line(member)}")
        elif inspect.isfunction(obj):
            entries.append(f"- `{name}{signature_of(obj)}` — {first_line(obj)}")
    if not entries:
        return []
    return lines + entries + [""]


def generate() -> str:
    """Build the full API document text."""
    blocks = [HEADER]
    for module in walk_modules():
        blocks.extend(document_module(module))
    return "\n".join(blocks)


def main() -> None:
    """Write docs/API.md next to the repository root."""
    out = Path(__file__).resolve().parent.parent / "docs" / "API.md"
    out.write_text(generate(), encoding="utf-8")
    print(f"wrote {out} ({len(generate().splitlines())} lines)")


if __name__ == "__main__":
    main()
