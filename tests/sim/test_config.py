"""Unit tests for simulator configuration objects."""

import pytest

from repro.errors import ConfigurationError
from repro.sim.config import CONFIG_NAMES, MEMORY_LATENCY, SIM_CONFIGS, SimConfig


class TestSimConfig:
    def test_five_named_configs(self):
        assert set(CONFIG_NAMES) == {"BC", "BCC", "HAC", "BCP", "CPP"}
        for name, cfg in SIM_CONFIGS.items():
            assert cfg.cache_config == name

    def test_unknown_cache_config(self):
        with pytest.raises(ConfigurationError):
            SimConfig(cache_config="LRU9000")

    def test_memory_latency_default(self):
        assert SimConfig().memory_latency == MEMORY_LATENCY == 100

    def test_miss_scale_halves_latencies(self):
        cfg = SimConfig(cache_config="CPP").with_miss_scale(0.5)
        assert cfg.effective_memory_latency() == 50
        assert cfg.effective_hierarchy().l2_latency == 5

    def test_miss_scale_validation(self):
        with pytest.raises(ConfigurationError):
            SimConfig(miss_scale=0)

    def test_name_includes_scale(self):
        assert SimConfig(cache_config="BC").name == "BC"
        assert SimConfig(cache_config="BC", miss_scale=0.5).name == "BC@x0.5"

    def test_l1_hit_latency_unscaled(self):
        cfg = SimConfig().with_miss_scale(0.5)
        assert cfg.effective_hierarchy().l1_latency == 1


class TestCacheConfigKey:
    """Memo/checkpoint identity must track the *resolved* codec.

    Regression: before salting, a checkpoint (or the in-process result
    memo) written under the paper's scheme silently served its cells to
    a --codec run, which genuinely changes results.
    """

    def test_default_codec_key_is_bare(self):
        assert SimConfig(cache_config="CPP").cache_config_key == "CPP"

    def test_explicit_default_codec_key_is_bare(self):
        assert SimConfig(cache_config="CPP", codec="cpp").cache_config_key == "CPP"

    def test_explicit_codec_salts_key(self):
        assert SimConfig(cache_config="CPP", codec="fpc").cache_config_key == "CPP+fpc"

    def test_env_codec_salts_key(self, monkeypatch):
        monkeypatch.setenv("REPRO_CODEC", "fpc")
        assert SimConfig(cache_config="BC").cache_config_key == "BC+fpc"

    def test_cell_key_uses_salted_identity(self, monkeypatch):
        from repro.sim.fault import cell_key

        assert cell_key("olden.mst", "CPP")[3] == "CPP"
        monkeypatch.setenv("REPRO_CODEC", "fpc")
        assert cell_key("olden.mst", "CPP")[3] == "CPP+fpc"

    def test_unknown_codec_rejected(self):
        with pytest.raises(ConfigurationError):
            SimConfig(codec="lz77")
