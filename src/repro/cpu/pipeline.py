"""Cycle-level out-of-order core (reduced ``sim-outorder``).

Pipeline shape per cycle: *writeback → commit → issue → dispatch → fetch*,
with single-cycle stage visibility, so a latency-1 producer feeds a
dependent instruction on the next cycle, exactly one per cycle along a
dependence chain — the property that makes pointer-chasing loads serialize
and gives cache misses their "importance" (paper §4.4).

Modeling decisions (uniform across all cache configurations, so relative
comparisons are preserved):

* trace-driven, non-speculative execution: a mispredicted branch stalls
  fetch until it executes plus a fixed redirect penalty — the paper's
  Figure 14 methodology explicitly runs "without speculative execution";
* oracle memory disambiguation with store-to-load forwarding: a load
  whose address matches an older in-flight store takes the store's value
  at forwarding latency and does not touch the cache (a store-buffer hit);
* stores write the cache at commit through a non-blocking write buffer
  (commit does not stall on store misses, but all state/traffic effects
  of the write-allocate fill are applied);
* idle-cycle skipping: when no stage can make progress the clock jumps to
  the next completion event — a pure speedup with identical timing.
"""

from __future__ import annotations

import heapq
from collections import deque
from dataclasses import dataclass, field

from repro.caches.hierarchy import Hierarchy
from repro.cpu.branch import BimodPredictor, mispredict_flags
from repro.cpu.metrics import CoreMetrics
from repro.cpu.resources import _UNIT_INDEX as UNIT_INDEX
from repro.cpu.resources import FuCounts, FuPool
from repro.cpu.ruu import _LOAD as OP_LOAD, _STORE as OP_STORE
from repro.cpu.ruu import EntryState, RUUEntry
from repro.errors import ConfigurationError, TraceError
from repro.isa.trace import Trace
from repro.obs import metrics as _metrics
from repro.obs import tracer as _trace

__all__ = ["CoreConfig", "CoreResult", "OutOfOrderCore"]


@dataclass(frozen=True)
class CoreConfig:
    """Core parameters; defaults reproduce the paper's Figure 9 machine."""

    fetch_width: int = 4
    decode_width: int = 4
    issue_width: int = 4
    commit_width: int = 4
    ifq_size: int = 16
    ruu_size: int = 16
    lsq_size: int = 8
    fu: FuCounts = field(default_factory=FuCounts)
    bimod_entries: int = 2048
    mispredict_penalty: int = 3
    forward_latency: int = 1
    #: Jump the clock over provably idle cycles. Pure speedup: the cycle
    #: counts are identical either way (property-tested), so this exists
    #: only to make that claim checkable.
    enable_idle_skip: bool = True
    #: Model the instruction cache (paper Figure 9: 8 KB, 1-cycle hit,
    #: 10-cycle miss). Off by default: the synthetic kernels' static code
    #: fits any realistic I-cache, so the model verifiably changes nothing
    #: (see tests/cpu/test_icache.py) and only costs simulation time.
    icache_enabled: bool = False
    icache_size: int = 8 * 1024
    icache_line: int = 64
    icache_miss_latency: int = 10

    def __post_init__(self) -> None:
        for name in (
            "fetch_width",
            "decode_width",
            "issue_width",
            "commit_width",
            "ifq_size",
            "ruu_size",
            "lsq_size",
            "mispredict_penalty",
            "forward_latency",
        ):
            if getattr(self, name) < 1 and name != "mispredict_penalty":
                raise ConfigurationError(f"{name} must be positive")
        if self.mispredict_penalty < 0:
            raise ConfigurationError("mispredict_penalty must be non-negative")


@dataclass
class CoreResult:
    """Outcome of running one trace to completion."""

    cycles: int
    metrics: CoreMetrics
    branch_lookups: int
    branch_mispredicts: int

    @property
    def ipc(self) -> float:
        """Instructions per cycle of this run (see :meth:`CoreMetrics.ipc`)."""
        return self.metrics.ipc


class _VerifyError(TraceError):
    """A load returned a value different from the trace's recorded value."""


class OutOfOrderCore:
    """The 4-issue out-of-order core over a cache hierarchy."""

    def __init__(
        self,
        hierarchy: Hierarchy,
        config: CoreConfig | None = None,
        *,
        verify_loads: bool = False,
    ) -> None:
        self.hierarchy = hierarchy
        self.config = config if config is not None else CoreConfig()
        self.verify_loads = verify_loads
        self.predictor = BimodPredictor(self.config.bimod_entries)

    # The run loop reads native-list trace views (see Trace.hot) instead of
    # materializing Instruction objects or boxing NumPy scalars, recycles
    # RUU entries through a free list, and keeps all per-cycle statistics
    # in local variables flushed once at the end: the loop is the
    # simulator's hot path and must not allocate per instruction.
    def run(self, trace: Trace) -> CoreResult:
        """Execute *trace* to completion; returns cycles and metrics."""
        cfg = self.config
        hier = self.hierarchy
        metrics = CoreMetrics()
        n = len(trace)
        if n == 0:
            return CoreResult(0, metrics, 0, 0)

        hot = trace.hot()
        t_pc = hot.pc
        t_taken = hot.taken
        t_ismem = hot.is_mem
        t_isbr = hot.is_branch
        t_lat = hot.latency
        t_rows = hot.rows

        ifq: deque[tuple[int, bool]] = deque()  # (trace index, mispredicted)
        rob: deque[RUUEntry] = deque()
        ifq_len = 0  # mirror of len(ifq)/len(rob): ints beat len() calls
        rob_len = 0
        # Producer of each architectural register's latest value. A flat
        # list indexed by register id (ids are int16 and non-negative in
        # traces), so rename lookups skip dict hashing.
        reg_producer: list[RUUEntry | None] = [None] * 32768
        completions: list[tuple[int, int, RUUEntry]] = []  # (cycle, seq, entry)
        free_entries: list[RUUEntry] = []  # committed entries, for recycling
        #: In-flight stores by address, dispatch (= program) order; gives
        #: store-to-load forwarding an O(1) lookup instead of a ROB scan.
        store_lists: dict[int, list[RUUEntry]] = {}
        seq = 0
        n_ready = 0  #: READY entries in the ROB, maintained incrementally
        fu = FuPool(cfg.fu)

        i_fetch = 0
        committed = 0
        now = 0
        lsq_used = 0
        outstanding_misses = 0
        fetch_blocked = False
        pending_resume: int | None = None
        icache = None
        if cfg.icache_enabled:
            from repro.cpu.icache import SimpleICache

            icache = SimpleICache(
                size_bytes=cfg.icache_size,
                line_bytes=cfg.icache_line,
                miss_latency=cfg.icache_miss_latency,
            )
        icache_stall_until = 0
        l1_hit_latency = hier.l1.hit_latency

        hard_limit = 2_000 * n + 1_000_000

        # Hoisted bindings and unpacked config (attribute lookups cost).
        heappush = heapq.heappush
        heappop = heapq.heappop
        l1_access = hier.l1.access
        predictor = self.predictor
        predictor_update = predictor.update
        # With a fresh predictor the whole prediction stream is a pure
        # function of the trace, so use (and cache) the precomputed
        # flags; a warm table (core reuse) falls back to per-call updates.
        t_mispred = None
        bp_branches = bp_mispredicts = 0
        if predictor.lookups == 0:
            bp_key = predictor.n_entries
            pre = hot.bp.get(bp_key)
            if pre is None:
                pre = mispredict_flags(t_pc, t_taken, t_isbr, bp_key)
                hot.bp[bp_key] = pre
            t_mispred, bp_branches, bp_mispredicts = pre
        use_bp_flags = t_mispred is not None
        fu_free = fu._free  # FuPool.new_cycle / try_issue, inlined below
        fu_limits = fu._limits
        unit_index = UNIT_INDEX
        issue_load = self._issue_load
        store_lists_get = store_lists.get
        loads_by_level = metrics.loads_by_level  # record_load, inlined
        n_loads_fast = 0
        verify_loads = self.verify_loads
        rob_append = rob.append
        rob_popleft = rob.popleft
        ifq_append = ifq.append
        ifq_popleft = ifq.popleft
        issue_width = cfg.issue_width
        commit_width = cfg.commit_width
        decode_width = cfg.decode_width
        fetch_width = cfg.fetch_width
        ruu_size = cfg.ruu_size
        lsq_size = cfg.lsq_size
        ifq_size = cfg.ifq_size
        mispredict_penalty = cfg.mispredict_penalty
        idle_skip = cfg.enable_idle_skip
        ST_WAITING = EntryState.WAITING
        ST_READY = EntryState.READY
        ST_ISSUED = EntryState.ISSUED
        ST_DONE = EntryState.DONE

        # Per-cycle statistics, kept local and flushed once at the end.
        # The ready-queue means replicate RunningMean.add_bulk exactly
        # (same formula, same per-cycle sequence), so the flushed state is
        # bit-identical to calling sample_ready_queue every cycle.
        store_count = 0
        n_mispredicts = 0
        fetch_stall_cycles = 0
        miss_cycles = 0
        all_n = 0
        all_mean = 0.0
        all_m2 = 0.0
        miss_n = 0
        miss_mean = 0.0
        miss_m2 = 0.0

        while committed < n:
            if now > hard_limit:
                raise TraceError(
                    f"core exceeded {hard_limit} cycles at instruction "
                    f"{committed}/{n}: probable deadlock"
                )

            # ---- writeback: results arriving this cycle ------------------
            while completions and completions[0][0] <= now:
                entry = heappop(completions)[2]
                entry.state = ST_DONE
                if entry.miss_in_flight:
                    outstanding_misses -= 1
                    entry.miss_in_flight = False
                for consumer in entry.consumers:
                    consumer.pending -= 1
                    if consumer.pending == 0 and consumer.state == ST_WAITING:
                        consumer.state = ST_READY
                        n_ready += 1
                entry.consumers.clear()
                if entry.mispredicted:
                    pending_resume = now + mispredict_penalty

            # ---- commit: in order, up to commit_width --------------------
            n_commit = 0
            while rob_len and n_commit < commit_width:
                head = rob[0]
                if head.state != ST_DONE:
                    break
                rob_popleft()
                rob_len -= 1
                n_commit += 1
                committed += 1
                if head.is_store:
                    l1_access(head.addr, True, head.value, now)
                    store_count += 1
                    lsq_used -= 1
                    lst = store_lists[head.addr]
                    if lst[0] is head:
                        del lst[0]
                    else:  # pragma: no cover - stores commit in order
                        lst.remove(head)
                    if not lst:
                        del store_lists[head.addr]
                elif head.is_load:
                    lsq_used -= 1
                if head.dest >= 0 and reg_producer[head.dest] is head:
                    reg_producer[head.dest] = None
                free_entries.append(head)
            if committed >= n:
                break  # the last instruction committed this cycle

            # ---- issue: oldest-first among READY entries ------------------
            # n_ready gives the sample up front, so the ROB scan can stop
            # at the last READY entry (or skip entirely) instead of
            # walking the whole window every cycle. FuPool's per-cycle
            # slot reset and try_issue are inlined.
            ready_len = n_ready
            if ready_len:
                fu_free[:] = fu_limits
                n_issued = 0
                seen = 0
                for entry in rob:
                    if entry.state != ST_READY:
                        continue
                    seen += 1
                    slot = unit_index[entry.op]
                    avail = fu_free[slot]
                    if avail:
                        fu_free[slot] = avail - 1
                        entry.state = ST_ISSUED
                        if entry.is_load:
                            # Fast path: no in-flight store at this address
                            # and no verify/trace hooks — straight to the
                            # cache, skipping the forwarding scan
                            # (Hierarchy.load is a pure delegation to
                            # l1.access).
                            if (
                                store_lists_get(entry.addr) is None
                                and not verify_loads
                                and not _trace.ACTIVE
                            ):
                                result = l1_access(entry.addr, False, None, now)
                                served = result.served_by
                                loads_by_level[served] = (
                                    loads_by_level.get(served, 0) + 1
                                )
                                n_loads_fast += 1
                                latency = result.latency
                                if latency < 1:
                                    latency = 1
                            else:
                                latency = issue_load(
                                    entry, store_lists, metrics, now
                                )
                            if latency > l1_hit_latency:
                                entry.miss_in_flight = True
                                outstanding_misses += 1
                        else:
                            latency = t_lat[entry.trace_idx]
                        seq += 1
                        heappush(completions, (now + latency, seq, entry))
                        n_issued += 1
                        if n_issued >= issue_width:
                            break
                    if seen >= ready_len:
                        break
                n_ready -= n_issued

            # ---- metrics sample (state as of this cycle) -------------------
            delta = ready_len - all_mean
            total = all_n + 1
            all_mean += delta * 1 / total
            all_m2 += delta * delta * all_n * 1 / total
            all_n = total
            if outstanding_misses > 0:
                miss_cycles += 1
                delta = ready_len - miss_mean
                total = miss_n + 1
                miss_mean += delta * 1 / total
                miss_m2 += delta * delta * miss_n * 1 / total
                miss_n = total
            if fetch_blocked:
                fetch_stall_cycles += 1

            # ---- dispatch: IFQ -> RUU/LSQ ---------------------------------
            n_disp = 0
            while ifq_len and n_disp < decode_width and rob_len < ruu_size:
                idx, mispred = ifq[0]
                op, dest, s1, s2, addr, value, is_mem = t_rows[idx]
                if is_mem and lsq_used >= lsq_size:
                    break
                ifq_popleft()
                ifq_len -= 1
                n_disp += 1
                if free_entries:
                    # RUUEntry.reset, inlined (one per dispatched insn).
                    entry = free_entries.pop()
                    entry.trace_idx = idx
                    entry.op = op
                    entry.dest = dest
                    entry.addr = addr
                    entry.value = value
                    entry.state = ST_WAITING
                    entry.pending = 0
                    # consumers already cleared at this entry's writeback
                    entry.complete_cycle = -1
                    entry.is_load = op == OP_LOAD
                    entry.is_store = op == OP_STORE
                    entry.miss_in_flight = False
                    entry.mispredicted = mispred
                else:
                    entry = RUUEntry(
                        idx,
                        op,
                        dest,
                        addr,
                        value,
                        mispredicted=mispred,
                    )
                if s1 >= 0:
                    producer = reg_producer[s1]
                    if producer is not None and producer.state != ST_DONE:
                        entry.pending += 1
                        producer.consumers.append(entry)
                if s2 >= 0:
                    producer = reg_producer[s2]
                    if producer is not None and producer.state != ST_DONE:
                        entry.pending += 1
                        producer.consumers.append(entry)
                if entry.pending == 0:
                    entry.state = ST_READY
                    n_ready += 1
                if dest >= 0:
                    reg_producer[dest] = entry
                if is_mem:
                    lsq_used += 1
                    if entry.is_store:
                        lst = store_lists.get(addr)
                        if lst is None:
                            store_lists[addr] = [entry]
                        else:
                            lst.append(entry)
                rob_append(entry)
                rob_len += 1

            # ---- fetch: fill the IFQ unless redirecting --------------------
            if fetch_blocked and pending_resume is not None and now >= pending_resume:
                fetch_blocked = False
                pending_resume = None
            if not fetch_blocked and now >= icache_stall_until:
                n_fetched = 0
                while (
                    i_fetch < n
                    and n_fetched < fetch_width
                    and ifq_len < ifq_size
                ):
                    if icache is not None:
                        penalty = icache.fetch_penalty(t_pc[i_fetch])
                        if penalty:
                            # The line is being fetched; retry hits it.
                            icache_stall_until = now + penalty
                            break
                    mispred = False
                    if t_isbr[i_fetch]:
                        # update() both trains the counter and reports
                        # whether the pre-update prediction was right.
                        if (
                            t_mispred[i_fetch]
                            if use_bp_flags
                            else not predictor_update(
                                t_pc[i_fetch], t_taken[i_fetch]
                            )
                        ):
                            mispred = True
                            n_mispredicts += 1
                            fetch_blocked = True
                    ifq_append((i_fetch, mispred))
                    ifq_len += 1
                    i_fetch += 1
                    n_fetched += 1
                    if mispred:
                        break

            # ---- advance the clock, skipping provably idle cycles ----------
            next_now = now + 1
            if (
                idle_skip
                and ready_len == 0  # nothing ready implies nothing issued
                and n_disp == 0
                and (not rob_len or rob[0].state != ST_DONE)
                and (
                    not ifq_len
                    or rob_len >= ruu_size
                    or (t_ismem[ifq[0][0]] and lsq_used >= lsq_size)
                )
                and (
                    fetch_blocked
                    or now < icache_stall_until
                    or i_fetch >= n
                    or ifq_len >= ifq_size
                )
            ):
                targets = []
                if completions:
                    targets.append(completions[0][0])
                if fetch_blocked and pending_resume is not None:
                    targets.append(pending_resume)
                if not fetch_blocked and now < icache_stall_until:
                    targets.append(icache_stall_until)
                if not targets:
                    raise TraceError(
                        f"core deadlocked at cycle {now} "
                        f"({committed}/{n} committed)"
                    )
                skip_to = max(next_now, min(targets))
                gap = skip_to - next_now
                if gap > 0:
                    # sample_ready_queue(0, weight=gap), inlined.
                    delta = 0 - all_mean
                    total = all_n + gap
                    all_mean += delta * gap / total
                    all_m2 += delta * delta * all_n * gap / total
                    all_n = total
                    if outstanding_misses > 0:
                        miss_cycles += gap
                        delta = 0 - miss_mean
                        total = miss_n + gap
                        miss_mean += delta * gap / total
                        miss_m2 += delta * delta * miss_n * gap / total
                        miss_n = total
                    if fetch_blocked:
                        fetch_stall_cycles += gap
                next_now = skip_to
            now = next_now

        if use_bp_flags:
            # Every instruction was fetched exactly once, so the stream
            # totals are the counters update() would have accumulated.
            predictor.lookups += bp_branches
            predictor.correct += bp_branches - bp_mispredicts
        metrics.load_count += n_loads_fast
        metrics.committed = committed
        metrics.cycles = now
        metrics.store_count = store_count
        metrics.mispredicts = n_mispredicts
        metrics.fetch_stall_cycles = fetch_stall_cycles
        metrics.miss_cycles = miss_cycles
        rq = metrics.ready_queue_all_cycles
        rq.count = all_n
        rq._mean = all_mean
        rq._m2 = all_m2
        rq = metrics.ready_queue_miss_cycles
        rq.count = miss_n
        rq._mean = miss_mean
        rq._m2 = miss_m2
        return CoreResult(
            cycles=now,
            metrics=metrics,
            branch_lookups=self.predictor.lookups,
            branch_mispredicts=self.predictor.mispredicts,
        )

    # ---- helpers ------------------------------------------------------------

    def _issue_load(
        self,
        entry: RUUEntry,
        store_lists: dict[int, list[RUUEntry]],
        metrics: CoreMetrics,
        now: int,
    ) -> int:
        """Execute a load: forward from an older in-flight store, or access
        the cache hierarchy. Returns the load-to-use latency.

        *store_lists* maps an address to its in-flight stores in program
        order; the forwarding source is the youngest store older than the
        load (same choice the original full-ROB scan made).
        """
        forward_from: RUUEntry | None = None
        stores = store_lists.get(entry.addr)
        if stores is not None:
            load_idx = entry.trace_idx
            for other in reversed(stores):
                if other.trace_idx < load_idx:
                    forward_from = other
                    break
        if forward_from is not None:
            metrics.forwarded_loads += 1
            metrics.record_load("forward")
            if _trace.ACTIVE:
                # Forwarded loads never reach the caches, so the core is
                # the only place that can observe them.
                _trace.emit(
                    "cache_access",
                    level="core",
                    addr=entry.addr,
                    hit=True,
                    served_by="forward",
                    latency=self.config.forward_latency,
                )
                _metrics.REGISTRY.observe(
                    "core.load_latency",
                    self.config.forward_latency,
                    hierarchy=self.hierarchy.name,
                )
            if self.verify_loads and forward_from.value != entry.value:
                raise _VerifyError(
                    f"forwarded load at {entry.addr:#x} got "
                    f"{forward_from.value:#x}, trace says {entry.value:#x}"
                )
            return self.config.forward_latency
        result = self.hierarchy.load(entry.addr, now)
        metrics.record_load(result.served_by)
        if _trace.ACTIVE:
            _trace.emit(
                "cache_access",
                level="core",
                addr=entry.addr,
                hit=result.served_by.startswith("l1"),
                served_by=result.served_by,
                latency=result.latency,
            )
            _metrics.REGISTRY.observe(
                "core.load_latency", result.latency, hierarchy=self.hierarchy.name
            )
        if self.verify_loads and result.value is not None and (
            result.value != entry.value
        ):
            raise _VerifyError(
                f"load at {entry.addr:#x} returned {result.value:#x}, "
                f"trace says {entry.value:#x} (config {self.hierarchy.name})"
            )
        return max(1, result.latency)
