"""Result serialization: JSON, CSV and checkpoint exports of results.

Experiment campaigns and external plotting tools consume these; the JSON
form round-trips every counter the simulator produces, the CSV form is
the flat headline table.

Two dictionary forms exist on purpose:

* :func:`result_to_dict` — the human/export form (derived rates
  included, nested stats flattened the way reports want them);
* :func:`result_to_full_dict` / :func:`result_from_dict` — the
  *lossless* form used by matrix checkpoints: every dataclass field
  (including the running-mean internals behind Figure 15) survives a
  JSON round trip bit for bit, so a resumed campaign is indistinguishable
  from an uninterrupted one.

All writes go through :func:`repro.utils.atomic.atomic_write_text`
(write ``*.tmp``, then ``os.replace``), so an interrupt can never leave
a truncated results file behind.
"""

from __future__ import annotations

import csv
import io
import json
from collections.abc import Iterable, Mapping
from dataclasses import asdict
from pathlib import Path

from repro.errors import ExperimentError
from repro.sim.results import SimResult
from repro.utils.atomic import atomic_write_text

__all__ = [
    "result_to_dict",
    "result_to_full_dict",
    "result_from_dict",
    "results_to_json",
    "results_to_csv",
    "load_results_json",
    "dump_jsonl",
    "load_jsonl",
]


def result_to_dict(result: SimResult) -> dict:
    """Full (nested) dictionary form of one result."""
    return {
        "workload": result.workload,
        "config": result.config,
        "cycles": result.cycles,
        "instructions": result.instructions,
        "ipc": result.ipc,
        "bus": {
            "total_words": result.bus_words,
            "fill_words": result.bus_fill_words,
            "prefetch_words": result.bus_prefetch_words,
            "writeback_words": result.bus_writeback_words,
        },
        "l1": result.l1.as_dict(),
        "l2": result.l2.as_dict(),
        "core": result.metrics.as_dict(),
        "branch_mispredicts": result.branch_mispredicts,
        "params": result.params,
    }


def result_to_full_dict(result: SimResult) -> dict:
    """Lossless dictionary form: every dataclass field, raw.

    Unlike :func:`result_to_dict` this keeps the exact internal state
    (``CacheStats.extra`` unflattened, the Welford accumulators of
    :class:`~repro.utils.stats.RunningMean`), so
    :func:`result_from_dict` reconstructs an equal :class:`SimResult`.
    JSON preserves ints exactly and floats via ``repr``, so the round
    trip is bit-identical.
    """
    return asdict(result)


def result_from_dict(data: Mapping) -> SimResult:
    """Reconstruct a :class:`SimResult` from :func:`result_to_full_dict`."""
    from repro.caches.stats import CacheStats
    from repro.cpu.metrics import CoreMetrics
    from repro.utils.stats import RunningMean

    try:
        payload = dict(data)
        payload["l1"] = CacheStats(**payload["l1"])
        payload["l2"] = CacheStats(**payload["l2"])
        core = dict(payload["metrics"])
        core["ready_queue_miss_cycles"] = RunningMean(
            **core["ready_queue_miss_cycles"]
        )
        core["ready_queue_all_cycles"] = RunningMean(
            **core["ready_queue_all_cycles"]
        )
        payload["metrics"] = CoreMetrics(**core)
        return SimResult(**payload)
    except (KeyError, TypeError) as exc:
        raise ExperimentError(f"malformed serialized result: {exc}") from exc


def results_to_json(
    results: Iterable[SimResult] | Mapping[tuple, SimResult],
    path: str | Path,
) -> Path:
    """Write results (list or run_matrix mapping) to a JSON file."""
    if isinstance(results, Mapping):
        results = list(results.values())
    payload = [result_to_dict(r) for r in results]
    return atomic_write_text(
        path, json.dumps(payload, indent=2, sort_keys=True)
    )


def results_to_csv(
    results: Iterable[SimResult] | Mapping[tuple, SimResult],
    path: str | Path,
) -> Path:
    """Write the flat headline table (SimResult.as_dict rows) as CSV."""
    if isinstance(results, Mapping):
        results = list(results.values())
    rows = [r.as_dict() for r in results]
    if not rows:
        raise ExperimentError("no results to write")
    buffer = io.StringIO()
    writer = csv.DictWriter(buffer, fieldnames=list(rows[0]), lineterminator="\n")
    writer.writeheader()
    writer.writerows(rows)
    return atomic_write_text(path, buffer.getvalue())


def load_results_json(path: str | Path) -> list[dict]:
    """Read back a JSON export (plain dicts; the simulator state objects
    are not reconstructed)."""
    path = Path(path)
    if not path.exists():
        raise ExperimentError(f"results file {path} does not exist")
    data = json.loads(path.read_text("utf-8"))
    if not isinstance(data, list):
        raise ExperimentError(f"{path} is not a results export")
    return data


def dump_jsonl(records: Iterable[Mapping], path: str | Path) -> Path:
    """Write *records* as one-JSON-object-per-line, atomically."""
    lines = [json.dumps(dict(record), sort_keys=True) for record in records]
    text = "\n".join(lines) + ("\n" if lines else "")
    return atomic_write_text(path, text)


def load_jsonl(
    path: str | Path,
    *,
    strict: bool = False,
    on_malformed=None,
) -> list[dict]:
    """Read a JSONL file back as a list of dicts.

    Non-strict mode (the default) skips malformed lines instead of
    raising — a checkpoint written by an older build should degrade to
    "fewer reusable cells", never to an unusable campaign. Skipping is
    not silence, though: each skipped line is reported through
    *on_malformed* ``(lineno, message)`` when given, so callers can
    count and surface corruption instead of losing it.
    """
    path = Path(path)
    if not path.exists():
        raise ExperimentError(f"JSONL file {path} does not exist")
    records: list[dict] = []
    for lineno, line in enumerate(path.read_text("utf-8").splitlines(), 1):
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError as exc:
            if strict:
                raise ExperimentError(
                    f"{path}:{lineno}: malformed JSONL line: {exc}"
                ) from exc
            if on_malformed is not None:
                on_malformed(lineno, f"malformed JSONL line: {exc}")
            continue
        if isinstance(record, dict):
            records.append(record)
        elif strict:
            raise ExperimentError(f"{path}:{lineno}: record is not an object")
        elif on_malformed is not None:
            on_malformed(lineno, "record is not an object")
    return records
