#!/usr/bin/env python
"""Crash-chaos harness for the durable result store and campaign queue.

Proves the three store guarantees end to end, with real worker
processes on one shared store directory:

1. **Golden** — a single in-process campaign over a small matrix; its
   results (in lossless serialized form) are the reference data.
2. **Concurrent** — two worker processes drain the same campaign queue
   at once. Final data must be bit-identical to golden, the queue must
   be drained, and the store's compute log must show every cell
   computed **exactly once** across both workers.
3. **Kill + resume** — a worker is killed mid-campaign (via the store's
   deterministic fault-point hook, which dies with ``os._exit(137)`` —
   the SIGKILL exit status — so the process vanishes with leases held
   and work half-committed, exactly like a real ``kill -9``). A second
   worker then resumes, reclaims the expired leases, and completes the
   campaign. Final data must again be bit-identical to golden with no
   cell computed twice, and ``repro.store fsck`` must come back clean.

Two kill points are exercised: ``put.before_journal`` (death *mid
commit*, before the write-ahead journal is staged — the cell is absent
and must be recomputed) and ``queue.before_done`` (death *between* the
durable result and its done marker — the cell is present and must be
reused, not recomputed).

With ``--service`` (or ``--service-only``) a fourth scenario runs the
whole stack through the HTTP experiment service:

4. **Service** — ``python -m repro.serve`` is started in its own process
   group with a fault armed so *every worker incarnation* dies with
   SIGKILL semantics on its second store commit; the supervisor must keep
   healing the pool while the campaign advances. Mid-campaign the entire
   group (service + workers) is SIGKILLed, a clean service takes over the
   same store, one of its workers is SIGKILLed directly and must be
   replaced, and the campaign still drains. Every cell fetched over HTTP
   must be bit-identical to golden, the compute log must stay
   exactly-once, and a final SIGTERM must exit 0.

The fsck report of the last chaos store is written to ``--report`` for
CI artifact upload. Exit status: 0 when every phase held, 1 otherwise.
The machine-readable tail line is ``CHAOS-SUMMARY {...}``.
"""

from __future__ import annotations

import argparse
import json
import os
import signal
import subprocess
import sys
import tempfile
import time
from collections import Counter
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.sim.results_io import result_to_full_dict  # noqa: E402
from repro.store import (  # noqa: E402
    CampaignQueue,
    ResultStore,
    campaign_name,
    run_matrix_store,
)
from repro.store.integrity import FAULT_EXIT_CODE, canonical_json  # noqa: E402

#: The chaos matrix: small enough to finish in seconds, big enough that
#: a worker killed two cells in still leaves real work to reclaim.
WORKLOADS = ("olden.treeadd", "olden.mst", "olden.bisort")
CONFIGS = ("BC", "CPP")
SEED = 1


def _canonical(results: dict) -> dict[str, str]:
    """{key-json: canonical serialized record} for bit-exact comparison."""
    return {
        canonical_json(list(key)): canonical_json(result_to_full_dict(result))
        for key, result in results.items()
    }


def _spawn_worker(
    store: Path,
    *,
    scale: float,
    lease_ttl: float,
    worker_id: str,
    fault: str | None = None,
) -> subprocess.Popen:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    if fault:
        env["REPRO_STORE_FAULT_POINT"] = fault
    else:
        env.pop("REPRO_STORE_FAULT_POINT", None)
    return subprocess.Popen(
        [
            sys.executable,
            str(Path(__file__).resolve()),
            "--worker",
            "--store",
            str(store),
            "--scale",
            str(scale),
            "--lease-ttl",
            str(lease_ttl),
            "--worker-id",
            worker_id,
        ],
        env=env,
        stdout=subprocess.DEVNULL,
        stderr=subprocess.STDOUT,
    )


def _run_worker(args: argparse.Namespace) -> int:
    """Worker mode: drain the chaos campaign from one process."""
    outcome = run_matrix_store(
        list(WORKLOADS),
        list(CONFIGS),
        store_dir=args.store,
        seed=SEED,
        scale=args.scale,
        max_workers=2,
        lease_ttl=args.lease_ttl,
        worker_id=args.worker_id,
    )
    return 0 if not outcome.failures else 1


def _check_store(
    store_dir: Path,
    golden: dict[str, str],
    scale: float,
    problems: list[str],
    phase: str,
    *,
    expect_exactly_once: bool = True,
    allow_unlogged: bool = False,
) -> None:
    """Shared assertions: drained queue, bit-identical data, exactly-once."""
    store = ResultStore(store_dir)
    queue = CampaignQueue(store.root / "queue", campaign_name(SEED, scale))
    if not queue.drained():
        problems.append(f"{phase}: queue not drained: {queue.snapshot()}")
    results = {}
    for key_json in golden:
        key = tuple(json.loads(key_json))
        record = store.get(key)
        if record is None:
            problems.append(f"{phase}: cell {key} missing from the store")
        else:
            results[key] = record
    got = _canonical(results)
    for key_json, expected in golden.items():
        actual = got.get(key_json)
        if actual is not None and actual != expected:
            problems.append(
                f"{phase}: cell {key_json} differs from the golden run"
            )
    if expect_exactly_once:
        counts = Counter(entry["digest"] for entry in store.compute_log())
        doubled = {d: n for d, n in counts.items() if n > 1}
        if doubled:
            problems.append(f"{phase}: cells computed more than once: {doubled}")
        if not allow_unlogged and len(counts) != len(golden):
            problems.append(
                f"{phase}: compute log covers {len(counts)} cells, "
                f"expected {len(golden)}"
            )
    if store.quarantined_count():
        problems.append(
            f"{phase}: unexpected quarantine: {store.quarantine_summary()}"
        )


def _phase_concurrent(
    workdir: Path, golden: dict[str, str], args, problems: list[str]
) -> None:
    store = workdir / "concurrent"
    workers = [
        _spawn_worker(
            store,
            scale=args.scale,
            lease_ttl=args.lease_ttl,
            worker_id=f"chaos-w{i}",
        )
        for i in (1, 2)
    ]
    for i, proc in enumerate(workers, 1):
        rc = proc.wait(timeout=args.timeout)
        if rc != 0:
            problems.append(f"concurrent: worker {i} exited {rc}")
    _check_store(store, golden, args.scale, problems, "concurrent")


def _phase_kill_resume(
    workdir: Path,
    golden: dict[str, str],
    args,
    problems: list[str],
    *,
    name: str,
    fault: str,
) -> Path:
    store = workdir / name
    victim = _spawn_worker(
        store,
        scale=args.scale,
        lease_ttl=args.lease_ttl,
        worker_id=f"{name}-victim",
        fault=fault,
    )
    rc = victim.wait(timeout=args.timeout)
    if rc != FAULT_EXIT_CODE:
        problems.append(
            f"{name}: victim exited {rc}, expected {FAULT_EXIT_CODE} "
            f"(fault point {fault} never fired?)"
        )
    rescuer = _spawn_worker(
        store,
        scale=args.scale,
        lease_ttl=args.lease_ttl,
        worker_id=f"{name}-rescuer",
    )
    rc = rescuer.wait(timeout=args.timeout)
    if rc != 0:
        problems.append(f"{name}: resuming worker exited {rc}")
    _check_store(store, golden, args.scale, problems, name)
    return store


def _launch_service(
    store: Path,
    *,
    lease_ttl: float,
    log_path: Path,
    fault: str | None = None,
    workers: int = 2,
    timeout: float = 60.0,
) -> tuple[subprocess.Popen, int]:
    """Start ``python -m repro.serve`` in its own process group.

    Output goes to *log_path* (kept as a CI artifact); the bound port is
    discovered by polling the log for the ``SERVE-READY`` line, so port 0
    works and a full pipe can never wedge the service.
    """
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    if fault:
        env["REPRO_STORE_FAULT_POINT"] = fault
    else:
        env.pop("REPRO_STORE_FAULT_POINT", None)
    log = open(log_path, "ab")
    try:
        proc = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro.serve",
                "--store",
                str(store),
                "--port",
                "0",
                "--workers",
                str(workers),
                "--lease-ttl",
                str(lease_ttl),
                "--retries",
                "1",
            ],
            stdout=log,
            stderr=subprocess.STDOUT,
            env=env,
            start_new_session=True,  # killpg must not hit this harness
        )
    finally:
        log.close()
    prefix = "SERVE-READY "
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if proc.poll() is not None:
            raise RuntimeError(
                f"service died at startup (rc={proc.returncode}):\n"
                f"{log_path.read_text()[-2000:]}"
            )
        for line in log_path.read_text().splitlines():
            if line.startswith(prefix):
                return proc, json.loads(line[len(prefix):])["port"]
        time.sleep(0.1)
    proc.kill()
    raise RuntimeError("service never announced SERVE-READY")


def _stop_service(proc: subprocess.Popen, problems: list[str], phase: str):
    """Graceful SIGTERM must drain the pool and exit 0."""
    if proc.poll() is not None:
        problems.append(f"{phase}: service already dead (rc={proc.returncode})")
        return
    proc.send_signal(signal.SIGTERM)
    try:
        rc = proc.wait(timeout=60)
    except subprocess.TimeoutExpired:
        os.killpg(proc.pid, signal.SIGKILL)
        proc.wait()
        problems.append(f"{phase}: service ignored SIGTERM for 60s")
        return
    if rc != 0:
        problems.append(f"{phase}: graceful stop exited {rc}, expected 0")


def _phase_service(
    workdir: Path, golden: dict[str, str], args, problems: list[str]
) -> Path:
    """HTTP service survives group-kill, worker-kill and fault storms."""
    from repro.errors import ServeError
    from repro.serve.client import ServeClient

    store = workdir / "service"
    phase = "service"
    campaign = campaign_name(SEED, args.scale)

    # 1. Fault-armed service: each worker incarnation dies (SIGKILL exit
    #    semantics) on its second store commit. The supervisor must keep
    #    replacing workers while the campaign makes progress.
    proc, port = _launch_service(
        store,
        lease_ttl=args.lease_ttl,
        log_path=workdir / "service-armed.log",
        fault="put.before_journal@2",
    )
    client = ServeClient(port=port, timeout=30)
    try:
        posted = client.post_campaign(
            workloads=list(WORKLOADS),
            configs=list(CONFIGS),
            seed=SEED,
            scale=args.scale,
        )
        if posted.status != 202:
            problems.append(f"{phase}: POST /v1/campaign -> {posted.status}")
        first = client.result(
            WORKLOADS[-1], CONFIGS[-1], seed=SEED, scale=args.scale
        )
        if first.status != 202 or "retry-after" not in first.headers:
            problems.append(
                f"{phase}: pending cell answered {first.status} "
                "without Retry-After, expected an immediate 202"
            )
        # Let the crash-looping pool land at least two cells, then wipe
        # out the whole process group — service, workers, everything.
        deadline = time.monotonic() + args.timeout
        done = 0
        while time.monotonic() < deadline:
            done = client.campaign(campaign).data["queue"]["done"]
            if done >= 2:
                break
            time.sleep(0.5)
        if done < 2:
            problems.append(
                f"{phase}: only {done} cells done under the armed fault "
                f"after {args.timeout:g}s (supervisor not healing?)"
            )
    except ServeError as exc:
        problems.append(f"{phase}: armed service unreachable: {exc}")
    finally:
        try:
            os.killpg(proc.pid, signal.SIGKILL)
        except ProcessLookupError:
            pass
        proc.wait()

    # 2. A clean service takes over the very same store: journal
    #    recovery, lease reclaim, resume — no operator intervention.
    proc, port = _launch_service(
        store,
        lease_ttl=args.lease_ttl,
        log_path=workdir / "service-clean.log",
    )
    client = ServeClient(port=port, timeout=30)
    try:
        # Kick the same campaign again (idempotent: done cells are
        # reused) and SIGKILL one live worker mid-run; the pool must
        # respawn a fresh incarnation in its slot.
        client.post_campaign(
            workloads=list(WORKLOADS),
            configs=list(CONFIGS),
            seed=SEED,
            scale=args.scale,
        )
        victim_slot = victim_pid = None
        deadline = time.monotonic() + 30
        while time.monotonic() < deadline and victim_pid is None:
            for worker in client.workers().data["workers"]:
                if worker["alive"] and worker["pid"]:
                    victim_slot, victim_pid = worker["slot"], worker["pid"]
                    break
            time.sleep(0.2)
        if victim_pid is None:
            problems.append(f"{phase}: no live worker to kill")
        else:
            os.kill(victim_pid, signal.SIGKILL)
            deadline = time.monotonic() + 60
            replaced = False
            while time.monotonic() < deadline and not replaced:
                for worker in client.workers().data["workers"]:
                    if (
                        worker["slot"] == victim_slot
                        and worker["restarts"] >= 1
                        and worker["alive"]
                    ):
                        replaced = True
                time.sleep(0.5)
            if not replaced:
                problems.append(
                    f"{phase}: killed worker in slot {victim_slot} "
                    "was never replaced"
                )

        final = client.wait_campaign(campaign, timeout=args.timeout)
        if not final.data.get("drained"):
            problems.append(f"{phase}: campaign never drained: {final.data}")
        if final.data.get("failed"):
            problems.append(
                f"{phase}: failed cells: {final.data['failed']}"
            )

        # Every cell over HTTP, bit-identical to the golden run.
        for key_json, expected in golden.items():
            key = tuple(json.loads(key_json))
            workload, seed, scale, config, miss_scale = key
            reply = client.result(
                workload,
                config,
                seed=seed,
                scale=scale,
                miss_scale=miss_scale,
            )
            if reply.status != 200 or reply.data.get("status") != "complete":
                problems.append(
                    f"{phase}: GET /v1/result for {key} -> {reply.status} "
                    f"{reply.data.get('status')}"
                )
            elif canonical_json(reply.data["result"]) != expected:
                problems.append(
                    f"{phase}: cell {key} served over HTTP differs "
                    "from the golden run"
                )
    except ServeError as exc:
        problems.append(f"{phase}: clean service unreachable: {exc}")
        os.killpg(proc.pid, signal.SIGKILL)
        proc.wait()
    else:
        _stop_service(proc, problems, phase)

    # The SIGKILL of the whole group can land between a cell's durable
    # commit and its compute-log append: the record is legitimate but
    # unlogged, so coverage may run short — double-computes still fail.
    _check_store(
        store, golden, args.scale, problems, phase, allow_unlogged=True
    )
    return store


def _fsck(store: Path, report: Path | None, problems: list[str]) -> None:
    cmd = [sys.executable, "-m", "repro.store", "fsck", "--store", str(store)]
    if report is not None:
        cmd += ["--report", str(report)]
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    proc = subprocess.run(cmd, env=env, capture_output=True, text=True)
    if proc.returncode != 0:
        problems.append(
            f"fsck of {store} failed (exit {proc.returncode}):\n{proc.stdout}"
        )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scale", type=float, default=0.05)
    parser.add_argument("--lease-ttl", type=float, default=3.0)
    parser.add_argument(
        "--timeout", type=float, default=300.0, help="per-worker wait limit"
    )
    parser.add_argument(
        "--report",
        default=None,
        metavar="PATH",
        help="write the kill/resume store's fsck report here (CI artifact)",
    )
    parser.add_argument(
        "--workdir",
        default=None,
        help="keep stores here instead of a temporary directory",
    )
    parser.add_argument(
        "--service",
        action="store_true",
        help="also run the HTTP-service chaos scenario",
    )
    parser.add_argument(
        "--service-only",
        action="store_true",
        help="run only golden + the HTTP-service scenario (CI serve job)",
    )
    parser.add_argument("--worker", action="store_true", help=argparse.SUPPRESS)
    parser.add_argument("--store", default=None, help=argparse.SUPPRESS)
    parser.add_argument("--worker-id", default=None, help=argparse.SUPPRESS)
    args = parser.parse_args(argv)

    if args.worker:
        return _run_worker(args)

    problems: list[str] = []
    cleanup = None
    if args.workdir:
        workdir = Path(args.workdir)
        workdir.mkdir(parents=True, exist_ok=True)
    else:
        cleanup = tempfile.TemporaryDirectory(prefix="store-chaos-")
        workdir = Path(cleanup.name)
    try:
        print("[chaos] golden single-process campaign ...")
        golden_outcome = run_matrix_store(
            list(WORKLOADS),
            list(CONFIGS),
            store_dir=workdir / "golden",
            seed=SEED,
            scale=args.scale,
            max_workers=2,
            worker_id="chaos-golden",
        )
        if golden_outcome.failures:
            print(f"golden campaign failed: {golden_outcome.failures}")
            return 1
        golden = _canonical(golden_outcome.results)
        print(f"[chaos] golden: {len(golden)} cells")

        phases = []
        report = Path(args.report) if args.report else None
        chaos_store = None
        if not args.service_only:
            print("[chaos] two concurrent workers, one queue ...")
            _phase_concurrent(workdir, golden, args, problems)
            phases.append("concurrent")

            print("[chaos] kill mid-commit (put.before_journal), resume ...")
            _phase_kill_resume(
                workdir,
                golden,
                args,
                problems,
                name="kill-midput",
                fault="put.before_journal@3",
            )
            phases.append("kill-midput")

            print("[chaos] kill between result and done marker, resume ...")
            chaos_store = _phase_kill_resume(
                workdir,
                golden,
                args,
                problems,
                name="kill-predone",
                fault="queue.before_done@2",
            )
            phases.append("kill-predone")

        if args.service or args.service_only:
            print("[chaos] HTTP service: fault storm, group kill, resume ...")
            chaos_store = _phase_service(workdir, golden, args, problems)
            phases.append("service")

        print("[chaos] fsck ...")
        if chaos_store is not None:
            _fsck(chaos_store, report, problems)
        if not args.service_only:
            _fsck(workdir / "concurrent", None, problems)
        phases.append("fsck")
    finally:
        if cleanup is not None:
            cleanup.cleanup()

    for problem in problems:
        print(f"FAIL: {problem}")
    status = 1 if problems else 0
    print(
        "CHAOS-SUMMARY "
        + json.dumps(
            {
                "cells": len(golden),
                "phases": phases,
                "problems": len(problems),
                "status": status,
            },
            sort_keys=True,
        )
    )
    return status


if __name__ == "__main__":
    raise SystemExit(main())
