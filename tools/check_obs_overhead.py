"""Pass/fail gate: observability must be free when disabled.

Times the same cache-hierarchy drive loop (the hot path instrumented
with ``if _trace.ACTIVE:`` guards) with tracing disarmed, against a
calibration loop with the guard branches short-circuited, and fails if
the disarmed instrumented path costs more than the allowed overhead.

Because both sides run the *same* instrumented code (the guard is
always compiled in), the comparison here is run-to-run: we interleave
repeated timed runs of the disarmed path and report the spread; the
gate trips if enabling-then-disabling observability leaves the path
measurably slower than it was before obs was ever touched. The armed
middle section turns on span recording as well as tracing, so the gate
also covers the PR 6 distributed-tracing guards (spans compiled in,
disabled must still be free).

Usage::

    PYTHONPATH=src python tools/check_obs_overhead.py [--threshold 0.02]
"""

from __future__ import annotations

import argparse
import sys
import time

import numpy as np

import repro.obs as obs
from repro.caches.hierarchy import build_hierarchy
from repro.memory.image import MemoryImage
from repro.memory.main_memory import MainMemory

BASE = 0x1000_0000


def _mixed_addrs(n: int) -> list[int]:
    rng = np.random.default_rng(5)
    seq = (BASE + 4 * (np.arange(n) % 4096)).astype(np.int64)
    rand = (BASE + 4 * rng.integers(0, 4096, n)).astype(np.int64)
    out = np.where(rng.random(n) < 0.5, seq, rand)
    return [int(a) for a in out]


def _drive(config: str, addrs: list[int]) -> int:
    h = build_hierarchy(config, MainMemory(MemoryImage(), latency=100))
    latency = 0
    for i, addr in enumerate(addrs):
        if i % 4 == 0:
            h.store(addr, i, i)
        else:
            latency += h.load(addr, i).latency
    return latency


def _time_best_of(fn, rounds: int) -> float:
    """Best-of-N wall time — robust against scheduler noise in CI."""
    best = float("inf")
    for _ in range(rounds):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def main(argv: list[str] | None = None) -> int:
    """Run the gate; exit 0 when within threshold, 1 otherwise."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--threshold", type=float, default=0.02)
    parser.add_argument("--rounds", type=int, default=5)
    parser.add_argument("--accesses", type=int, default=20_000)
    args = parser.parse_args(argv)

    addrs = _mixed_addrs(args.accesses)
    worst = 0.0
    for config in ("BC", "CPP"):
        obs.disable()
        _drive(config, addrs)  # warm allocator/caches before timing
        before = _time_best_of(lambda: _drive(config, addrs), args.rounds)

        # Arm and disarm observability — tracing AND span recording —
        # then re-time the disabled path: the guards must leave no
        # residue.
        obs.enable(capacity=4096, spans=True)
        with obs.span.span("overhead_probe", config=config):
            _drive(config, addrs)
        obs.disable()
        after = _time_best_of(lambda: _drive(config, addrs), args.rounds)

        overhead = (after - before) / before
        worst = max(worst, overhead)
        print(
            f"{config:>4}: disabled-path {before * 1e3:8.2f} ms -> "
            f"{after * 1e3:8.2f} ms  (overhead {overhead:+.2%})"
        )

    print(f"worst overhead {worst:+.2%} (threshold {args.threshold:.0%})")
    if worst > args.threshold:
        print("FAIL: observability is not free when disabled", file=sys.stderr)
        return 1
    print("OK: disabled-path overhead within threshold")
    return 0


if __name__ == "__main__":
    sys.exit(main())
