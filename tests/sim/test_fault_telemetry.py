"""Supervised fork engine x telemetry: spans per cell, deterministic
merge across completion orders, partial markers from killed children.

Workers are module-level so they survive the fork; every test configures
its own telemetry run directory and disarms on the way out.
"""

import json
import time

import pytest

from repro.obs import telemetry
from repro.obs.metrics import REGISTRY
from repro.obs.phases import PHASES
from repro.obs.telemetry import cell_id_of, load_store, merge_metric_dumps
from repro.sim.fault import FaultPolicy, run_supervised

FAST = FaultPolicy(
    retries=0, backoff_base=0.01, backoff_max=0.02, jitter=0.0,
    poll_interval=0.005,
)


@pytest.fixture(autouse=True)
def _clean_pipeline():
    telemetry.configure(None)
    REGISTRY.reset()
    PHASES.reset()
    yield
    telemetry.configure(None)
    REGISTRY.reset()
    PHASES.reset()


def _key(task):
    return ("cell", task["name"])


def _metric_worker(task):
    """Publishes overlapping metric keys, then takes task-specific time."""
    REGISTRY.inc("cellwork.ops", task["n"])
    REGISTRY.observe("cellwork.lat", task["n"])
    REGISTRY.set_gauge("cellwork.rate", float(task["n"]))
    time.sleep(task["delay"])
    return task["n"]


def _hang_worker(task):
    time.sleep(60)


def _cells_only_merge(store) -> dict:
    """The merged child metrics, excluding the (timing-laden) parent."""
    return merge_metric_dumps(
        {
            f"{cell}#a{attempt}": payload.get("metrics", {})
            for (cell, attempt), payload in store.cells.items()
        }
    )


class TestSpansPerCell:
    def test_every_cell_spools_a_span_under_its_attempt(self, tmp_path):
        telemetry.configure(tmp_path)
        tasks = [
            {"name": "a", "n": 1, "delay": 0.0},
            {"name": "b", "n": 2, "delay": 0.0},
        ]
        out = run_supervised(
            tasks, _metric_worker, key_of=_key, policy=FAST, max_workers=2
        )
        assert out.ok
        store = out.telemetry
        assert store is telemetry.store()
        assert len(store.cells) == 2
        attempt_ids = {
            s.attrs["cell"]: s.span_id
            for s in _finished_parent_spans(store)
            if s.name == "attempt"
        }
        for (cell, _attempt), payload in store.cells.items():
            names = [s["name"] for s in payload["spans"]]
            assert "cell" in names
            cell_span = next(s for s in payload["spans"] if s["name"] == "cell")
            # The child's span parents under the supervisor's attempt span.
            assert cell_span["parent_id"] == attempt_ids[cell]
            assert cell_span["trace_id"] == store.trace_id

    def test_telemetry_json_written_and_loadable(self, tmp_path):
        telemetry.configure(tmp_path)
        run_supervised(
            [{"name": "a", "n": 1, "delay": 0.0}],
            _metric_worker,
            key_of=_key,
            policy=FAST,
        )
        loaded = load_store(tmp_path)
        assert len(loaded.cells) == 1
        assert any(
            s["name"] == "supervised_matrix" for s in loaded.parent["spans"]
        )


def _finished_parent_spans(store):
    from repro.obs import span as span_mod

    return span_mod.finished_spans() or [
        _as_record(s) for s in store.parent.get("spans", ())
    ]


def _as_record(data):
    from repro.obs.span import SpanRecord

    return SpanRecord.from_dict(data)


class TestDeterministicMergeAcrossOrders:
    def _run(self, tmp_path, fast_first: bool):
        telemetry.configure(tmp_path)
        delays = (0.0, 0.25) if fast_first else (0.25, 0.0)
        tasks = [
            {"name": "a", "n": 3, "delay": delays[0]},
            {"name": "b", "n": 5, "delay": delays[1]},
        ]
        out = run_supervised(
            tasks, _metric_worker, key_of=_key, policy=FAST, max_workers=2
        )
        assert out.ok
        merged = _cells_only_merge(out.telemetry)
        telemetry.configure(None)
        return merged

    def test_overlapping_keys_merge_identically(self, tmp_path):
        first = self._run(tmp_path / "run1", fast_first=True)
        second = self._run(tmp_path / "run2", fast_first=False)
        assert first == second
        assert first["cellwork.ops"] == {"type": "counter", "value": 8}
        # Gauge winner is the last cell in sorted id order, not the last
        # cell to finish — identical whichever child completed first.
        assert first["cellwork.rate"]["value"] == second["cellwork.rate"]["value"]
        assert first["cellwork.lat"]["data"]["count"] == 2


class TestPartialMarkers:
    def test_timeout_cell_leaves_partial_never_corrupts_store(self, tmp_path):
        telemetry.configure(tmp_path)
        policy = FaultPolicy(
            timeout=0.3, retries=0, backoff_base=0.01, jitter=0.0,
            poll_interval=0.005,
        )
        task = {"name": "hang", "n": 1, "delay": 0.0}
        out = run_supervised([task], _hang_worker, key_of=_key, policy=policy)
        assert not out.ok and out.failures[0].kind == "timeout"
        cell = cell_id_of(_key(task))
        assert (cell, 1) in out.telemetry.partials
        # The marker survives on disk; the spool payload never appeared.
        assert (tmp_path / "spool" / f"{cell}-a1.partial").exists()
        assert not (tmp_path / "spool" / f"{cell}-a1.json").exists()
        # The persisted store parses and merges cleanly around the hole.
        data = json.loads((tmp_path / "telemetry.json").read_text())
        assert data["merged"]["partials"] == [[cell, 1]]
        reloaded = load_store(tmp_path)
        assert reloaded.merged()["n_attempts"] == 0

    def test_mixed_outcome_keeps_completed_cells(self, tmp_path):
        telemetry.configure(tmp_path)
        policy = FaultPolicy(
            timeout=0.3, retries=0, backoff_base=0.01, jitter=0.0,
            poll_interval=0.005,
        )

        out = run_supervised(
            [
                {"name": "ok", "n": 2, "delay": 0.0},
                {"name": "hang", "n": 1, "delay": 0.0},
            ],
            _mixed_worker,
            key_of=_key,
            policy=policy,
            max_workers=2,
        )
        assert len(out.results) == 1 and len(out.failures) == 1
        store = out.telemetry
        ok_cell = cell_id_of(_key({"name": "ok"}))
        hang_cell = cell_id_of(_key({"name": "hang"}))
        assert (ok_cell, 1) in store.cells
        assert (hang_cell, 1) in store.partials
        assert _cells_only_merge(store)["cellwork.ops"]["value"] == 2


def _mixed_worker(task):
    if task["name"] == "hang":
        time.sleep(60)
    return _metric_worker(task)


class TestDisarmedPath:
    def test_no_telemetry_no_files_no_store(self, tmp_path):
        out = run_supervised(
            [{"name": "a", "n": 1, "delay": 0.0}],
            _metric_worker,
            key_of=_key,
            policy=FAST,
        )
        assert out.ok
        assert out.telemetry is None
        assert not any(tmp_path.iterdir())
