"""Mechanism tests: the workload properties the paper's story rests on
must arise from the *causes* the models claim, not accidentally."""

import numpy as np

from repro.compression.vectorized import compression_summary
from repro.workloads.registry import generate


class TestAllocationLocalityMechanism:
    def test_churn_degrades_pointer_compressibility(self):
        """health's free-list churn fragments the heap; its pointer
        compressibility must be visibly below treeadd's bump-allocated
        preorder layout — the §2.1 locality argument, inverted."""
        treeadd = compression_summary(
            *generate("olden.treeadd", seed=1, scale=0.3).trace.accessed_values()
        )
        health = generate("olden.health", seed=1, scale=1.0)
        # Measure pointer compressibility on the *late* half of the trace,
        # after churn has fragmented the free list.
        trace = health.trace
        mem = trace.mem_mask
        half = np.flatnonzero(mem)[len(np.flatnonzero(mem)) // 2 :]
        late = compression_summary(trace.value[half], trace.addr[half])
        # Both have real pointer traffic:
        assert treeadd.fraction_pointer > 0.2
        assert late.fraction_pointer > 0.05

    def test_cross_segment_pointers_do_not_compress(self):
        """em3d's cross-side neighbour pointers span 32 KB chunks at full
        size, so its pointer compressibility collapses — by layout, not by
        fiat. (At small scales both sides fit near one chunk and pointers
        compress again: the effect is the footprint's, which is the point.)"""
        em3d = compression_summary(
            *generate("olden.em3d", seed=1, scale=1.0).trace.accessed_values()
        )
        assert em3d.fraction_pointer < 0.10
        small = compression_summary(
            *generate("olden.em3d", seed=1, scale=0.3).trace.accessed_values()
        )
        assert small.fraction_pointer > em3d.fraction_pointer

    def test_small_structures_keep_pointers_local(self):
        """li's cons cells are tiny and bump-allocated: nearly every cdr
        pointer stays within its 32 KB chunk."""
        li = compression_summary(
            *generate("spec95.130.li", seed=1, scale=0.5).trace.accessed_values()
        )
        assert li.fraction_pointer > 0.2
        assert li.fraction_compressible > 0.9


class TestValueMechanism:
    def test_float_bits_are_incompressible(self):
        """em3d stores IEEE-754 bit patterns; almost nothing small-value
        compresses."""
        em3d = compression_summary(
            *generate("olden.em3d", seed=1, scale=0.5).trace.accessed_values()
        )
        assert em3d.fraction_small < 0.1  # scale-independent: values are FP

    def test_counters_and_codes_compress(self):
        """go's board codes and compress's dictionary codes are bounded
        small ints."""
        for name in ("spec95.099.go", "spec95.129.compress"):
            summary = compression_summary(
                *generate(name, seed=1, scale=0.5).trace.accessed_values()
            )
            assert summary.fraction_small > 0.4, name


class TestDependenceMechanism:
    def test_pointer_chase_serializes_in_the_core(self):
        """treeadd's loads must form dependence chains: its measured IPC
        under a perfect-memory-ish configuration stays well below the
        machine width, unlike an array-sweep workload."""
        from repro.sim.machine import Machine

        chase = Machine("HAC").run(generate("olden.treeadd", seed=1, scale=0.15))
        sweep = Machine("HAC").run(
            generate("spec95.132.ijpeg", seed=1, scale=0.15)
        )
        assert chase.ipc < sweep.ipc
