"""Manifests from run_workload and their CLI rendering."""

import json

import pytest

import repro.obs as obs
from repro.errors import ExperimentError
from repro.obs.manifest import (
    RunManifest,
    load_manifest,
    load_manifests,
    write_manifest,
)
from repro.obs.report import main, render_comparison, render_manifest
from repro.sim.runner import clear_caches, run_workload


@pytest.fixture(autouse=True)
def _fresh_obs():
    obs.disable()
    obs.reset()
    clear_caches()
    yield
    obs.disable()
    obs.reset()
    clear_caches()


def _run_with_manifest(tmp_path, **kwargs):
    obs.enable(manifest_dir=tmp_path)
    result = run_workload(
        "olden.mst", "CPP", seed=1, scale=0.1, use_cache=False, **kwargs
    )
    obs.disable()
    return result


class TestManifestWriting:
    def test_run_workload_writes_one_manifest(self, tmp_path):
        result = _run_with_manifest(tmp_path)
        manifests = load_manifests(tmp_path)
        assert len(manifests) == 1
        m = manifests[0]
        assert m.workload == "olden.mst"
        assert m.config == "CPP"
        assert m.seed == 1
        assert m.scale == 0.1
        assert m.headline["cycles"] == result.cycles
        assert set(m.timings) == {"trace_gen", "simulate"}
        assert m.events["bus"]["total_words"] == result.bus_words
        assert m.events["l1"]["accesses"] == result.l1.accesses
        # tracing was armed by obs.enable, so typed events were counted
        assert m.trace_events.get("cache_access", 0) > 0

    def test_memo_hit_writes_nothing(self, tmp_path):
        obs.enable(manifest_dir=tmp_path)
        run_workload("olden.mst", "BC", seed=1, scale=0.1)
        run_workload("olden.mst", "BC", seed=1, scale=0.1)  # result-cache hit
        obs.disable()
        assert len(load_manifests(tmp_path)) == 1

    def test_no_manifest_without_directory(self, tmp_path):
        run_workload("olden.mst", "BC", seed=1, scale=0.1, use_cache=False)
        with pytest.raises(ExperimentError):
            load_manifests(tmp_path)

    def test_json_round_trip(self, tmp_path):
        _run_with_manifest(tmp_path)
        path = sorted(tmp_path.glob("run-*.json"))[0]
        data = json.loads(path.read_text())
        m = RunManifest.from_dict(data)
        assert m.as_dict() == data

    def test_malformed_manifest_raises(self, tmp_path):
        bad = tmp_path / "run-0001-x-y.json"
        bad.write_text("{not json")
        with pytest.raises(ExperimentError):
            load_manifest(bad)

    def test_explicit_write_manifest_requires_directory(self):
        with pytest.raises(ExperimentError):
            write_manifest(
                RunManifest(
                    workload="w", config="c", cache_config="c",
                    seed=1, scale=1.0, miss_scale=1.0,
                )
            )


class TestRendering:
    def test_render_manifest_has_all_sections(self, tmp_path):
        _run_with_manifest(tmp_path)
        text = render_manifest(load_manifests(tmp_path)[0])
        assert "phase timings" in text
        assert "trace_gen" in text and "simulate" in text
        assert "runner memoization" in text
        assert "hit rate" in text
        assert "headline" in text and "cycles" in text
        assert "event counts" in text
        for row in (
            "L1 affiliated hits",
            "L1 partial fills",
            "L1 promotions",
            "L1 stashes",
            "bus fill words",
            "bus prefetch words",
            "bus writeback words",
        ):
            assert row in text
        assert "traced event type" in text  # tracing was on

    def test_compare_table(self, tmp_path):
        obs.enable(manifest_dir=tmp_path)
        run_workload("olden.mst", "BC", seed=1, scale=0.1, use_cache=False)
        run_workload("olden.mst", "CPP", seed=1, scale=0.1, use_cache=False)
        obs.disable()
        text = render_comparison(load_manifests(tmp_path))
        assert "cross-run summary (2 runs)" in text
        assert "BC" in text and "CPP" in text


class TestCli:
    def test_show_command(self, tmp_path, capsys):
        _run_with_manifest(tmp_path)
        assert main(["show", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "run manifest: olden.mst on CPP" in out
        assert "event counts" in out

    def test_compare_command(self, tmp_path, capsys):
        _run_with_manifest(tmp_path)
        assert main(["compare", str(tmp_path)]) == 0
        assert "cross-run summary" in capsys.readouterr().out

    def test_missing_path_is_an_error(self, tmp_path, capsys):
        assert main(["show", str(tmp_path / "nope")]) == 1
        assert "error:" in capsys.readouterr().err

    def test_run_command(self, tmp_path, capsys):
        out_dir = tmp_path / "manifests"
        trace_out = tmp_path / "events.jsonl"
        rc = main(
            [
                "run",
                "--workload", "olden.mst",
                "--config", "CPP",
                "--scale", "0.1",
                "--out", str(out_dir),
                "--trace-out", str(trace_out),
            ]
        )
        assert rc == 0
        captured = capsys.readouterr()
        assert "run manifest: olden.mst on CPP" in captured.out
        assert trace_out.exists()
        first = json.loads(trace_out.read_text().splitlines()[0])
        assert "type" in first and "seq" in first
