"""olden.power — power-system optimization over a fixed multiway tree.

(Extra workload: part of the Olden suite but not among the fourteen bars
of the paper's figures; registered under the "extra" group.)

The original builds a root→feeders→lateral→branch→leaf tree of power
customers and repeatedly propagates demand values up and prices down.
Structure: heavy fan-out pointer tree built once (compressible links),
per-node floating-point demand values (incompressible), and two full
tree sweeps per iteration — an upward reduction and a downward update.
"""

from __future__ import annotations

import struct

from repro.isa.opcodes import OpClass
from repro.workloads.base import Program, ProgramBuilder, scaled

__all__ = ["build", "DEFAULT_FEEDERS", "DEFAULT_ITERS"]

DEFAULT_FEEDERS = 6
_LATERALS = 6
_BRANCHES = 4
_LEAVES = 3
DEFAULT_ITERS = 4

_N_DEMAND = 0
_N_PRICE = 4
_N_KIDS = 8
_N_CHILD = 12  # up to 6 child pointers
_NODE_BYTES = 40


def _fbits(x: float) -> int:
    return struct.unpack("<I", struct.pack("<f", x))[0]


def _build_node(pb: ProgramBuilder, children_per_level: list[int], reg: str) -> int:
    addr = pb.malloc(_NODE_BYTES)
    pb.store(addr + _N_DEMAND, _fbits(float(pb.rng.uniform(0.5, 2.0))), base=reg,
             label="pw.init.demand")
    pb.store(addr + _N_PRICE, _fbits(1.0), base=reg, label="pw.init.price")
    n_kids = children_per_level[0] if children_per_level else 0
    pb.store(addr + _N_KIDS, n_kids, base=reg, label="pw.init.kids")
    for k in range(n_kids):
        pb.call_overhead("pw.build", 1)
        child = _build_node(pb, children_per_level[1:], reg)
        pb.store(addr + _N_CHILD + 4 * k, child, base=reg, label="pw.init.child")
        pb.branch("pw.build.more", taken=k < n_kids - 1)
    return addr


def _sweep_up(pb: ProgramBuilder, node: int, reg: str, d: int) -> float:
    """Upward demand reduction (Compute_Tree)."""
    kids = pb.load(node + _N_KIDS, f"k{d}", base=reg, label="pw.up.ldk")
    demand_bits = pb.load(node + _N_DEMAND, f"dm{d}", base=reg, label="pw.up.ldd")
    total = struct.unpack("<f", struct.pack("<I", demand_bits))[0]
    for k in range(kids):
        pb.branch("pw.up.more", taken=True, srcs=(f"k{d}",))
        child = pb.load(node + _N_CHILD + 4 * k, f"c{d}", base=reg, label="pw.up.ldc")
        total += _sweep_up(pb, child, f"c{d}", d + 1)
        pb.op("acc", ("acc", f"dm{d}"), kind=OpClass.FALU, label="pw.up.add")
    pb.branch("pw.up.more", taken=False, srcs=(f"k{d}",))
    pb.store(node + _N_DEMAND, _fbits(total), base=reg, src="acc", label="pw.up.st")
    return total


def _sweep_down(pb: ProgramBuilder, node: int, reg: str, price: float, d: int) -> None:
    """Downward price update (optimization step)."""
    kids = pb.load(node + _N_KIDS, f"k{d}", base=reg, label="pw.dn.ldk")
    pb.op("price", ("price",), kind=OpClass.FMULT, label="pw.dn.scale")
    pb.store(node + _N_PRICE, _fbits(price), base=reg, src="price", label="pw.dn.st")
    for k in range(kids):
        pb.branch("pw.dn.more", taken=True, srcs=(f"k{d}",))
        child = pb.load(node + _N_CHILD + 4 * k, f"c{d}", base=reg, label="pw.dn.ldc")
        _sweep_down(pb, child, f"c{d}", price * 0.98, d + 1)
    pb.branch("pw.dn.more", taken=False, srcs=(f"k{d}",))


def build(seed: int = 1, scale: float = 1.0) -> Program:
    """Generate the power program; *scale* adjusts iteration count."""
    feeders = DEFAULT_FEEDERS
    iters = scaled(DEFAULT_ITERS, scale, minimum=1)

    pb = ProgramBuilder("olden.power", seed)
    pb.op("root", (), label="pw.entry")
    root = _build_node(pb, [feeders, _LATERALS, _BRANCHES, _LEAVES], "root")

    for _ in pb.for_range("pw.iters", iters, cond_srcs=("root",)):
        _sweep_up(pb, root, "root", 0)
        _sweep_down(pb, root, "root", 1.0, 0)

    out = pb.static_array(1)
    pb.store(out, 1, src="acc", label="pw.result")
    return pb.build(
        description="multiway power tree: up/down sweeps, FP payloads",
        params={"feeders": feeders, "iters": iters},
    )
