"""Figure 14 — importance of cache misses.

Estimated, as in the paper, by the percentage of instructions directly
dependent on the miss instructions: run each (workload, configuration)
twice — normal and half miss penalty — and solve Amdahl's law for the
enhanced fraction (S_enhanced = 2). The paper finds CPP reduces miss
importance for most benchmarks versus BC and HAC.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.analysis.importance import miss_importance
from repro.experiments.common import GEOMEAN, ExperimentOutput, average, resolve_workloads

__all__ = ["run", "FIGURE", "TITLE", "DEFAULT_CONFIGS"]

FIGURE = "fig14"
TITLE = "Importance of cache misses (% of directly dependent instructions)"
DEFAULT_CONFIGS = ("BC", "HAC", "BCP", "CPP")


def run(
    workloads: Sequence[str] | None = None,
    *,
    seed: int = 1,
    scale: float = 1.0,
    configs: Sequence[str] = DEFAULT_CONFIGS,
) -> ExperimentOutput:
    """Regenerate this figure over *workloads* (default: all fourteen)."""
    names = resolve_workloads(workloads)
    configs = list(configs)
    series: dict[str, dict[str, float]] = {cfg: {} for cfg in configs}
    rows: list[list[object]] = []
    for workload in names:
        row: list[object] = [workload]
        for cfg in configs:
            result = miss_importance(workload, cfg, seed=seed, scale=scale)
            series[cfg][workload] = result.percent
            row.append(round(result.percent, 2))
        rows.append(row)
    for cfg in configs:
        series[cfg][GEOMEAN] = average(
            {k: v for k, v in series[cfg].items() if k != GEOMEAN}
        )
    rows.append(
        [GEOMEAN, *(round(series[cfg][GEOMEAN], 2) for cfg in configs)]
    )
    return ExperimentOutput(
        figure=FIGURE,
        title=TITLE,
        headers=["workload", *configs],
        rows=rows,
        series=series,
        unit="%",
        paper_reference=(
            "Figure 14: CPP reduces miss importance for most benchmarks "
            "relative to BC and HAC; benchmarks where CPP trails HAC in "
            "Figure 11 show larger importance parameters."
        ),
    )
