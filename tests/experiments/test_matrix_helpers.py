"""Tests for the shared normalized-comparison machinery."""

import pytest

from repro.experiments._matrix import DEFAULT_CONFIGS, normalized_comparison
from repro.experiments.common import GEOMEAN, ExperimentOutput, resolve_workloads
from repro.sim.runner import clear_caches
from repro.workloads.registry import WORKLOAD_NAMES


@pytest.fixture(autouse=True)
def _fresh():
    clear_caches()
    yield
    clear_caches()


class TestResolveWorkloads:
    def test_default_is_the_paper_fourteen(self):
        assert resolve_workloads(None) == list(WORKLOAD_NAMES)

    def test_subset_passthrough(self):
        assert resolve_workloads(["olden.mst"]) == ["olden.mst"]


class TestNormalizedComparison:
    def test_bc_always_added(self):
        out = normalized_comparison(
            figure="figX",
            title="t",
            metric=lambda r: float(r.cycles),
            workloads=["olden.mst"],
            configs=["CPP"],
            scale=0.1,
        )
        assert out.headers == ["workload", "BC", "CPP"]
        assert out.rows[0][1] == pytest.approx(100.0)

    def test_average_row_is_arithmetic_mean(self):
        out = normalized_comparison(
            figure="figX",
            title="t",
            metric=lambda r: float(r.cycles),
            workloads=["olden.mst", "olden.treeadd"],
            configs=["BC", "CPP"],
            scale=0.1,
        )
        cpp = out.series["CPP"]
        per_workload = [v for k, v in cpp.items() if k != GEOMEAN]
        assert cpp[GEOMEAN] == pytest.approx(sum(per_workload) / 2)

    def test_default_configs_are_the_paper_five(self):
        assert DEFAULT_CONFIGS == ("BC", "BCC", "HAC", "BCP", "CPP")

    def test_output_type(self):
        out = normalized_comparison(
            figure="figX",
            title="t",
            metric=lambda r: float(r.bus_words),
            workloads=["olden.mst"],
            configs=["BC", "BCC"],
            scale=0.1,
        )
        assert isinstance(out, ExperimentOutput)
        assert out.baseline_value == 100.0
        assert "BC" not in out.series  # baseline column, not a bar series


class TestCliParallel:
    def test_runall_parallel_flag(self, capsys, tmp_path):
        from repro.experiments.runall import main

        rc = main(
            [
                "fig11",
                "--workloads",
                "olden.mst",
                "--scale",
                "0.1",
                "--parallel",
                "--workers",
                "1",
                "--no-charts",
                "--checkpoint",
                str(tmp_path / "ck.jsonl"),
            ]
        )
        assert rc == 0
        captured = capsys.readouterr()
        # Progress lines go to stderr via repro.obs.progress; figure
        # tables stay on stdout.
        assert "matrix ready" in captured.err
        assert "Execution time" in captured.out
