"""spec95.132.ijpeg — blocked integer image transform (DCT-like).

Models ijpeg's compute shape: sweep an image in 8x8 blocks; for each
block compute a separable integer transform (row pass then column pass of
multiply-accumulate against a constant coefficient matrix), then quantize
back to small values. Intermediate coefficients are large products —
incompressible — while pixels and quantized outputs are small; the
sequential block sweep is the friendliest pattern in the suite for plain
next-line prefetching, which is why BCP does well here.
"""

from __future__ import annotations

from repro.isa.opcodes import OpClass
from repro.workloads.base import Program, ProgramBuilder, scaled

__all__ = ["build", "DEFAULT_DIM"]

DEFAULT_DIM = 64  #: square image edge (multiple of 8)
_B = 8  #: block edge


def build(seed: int = 1, scale: float = 1.0) -> Program:
    """Generate the ijpeg program; *scale* adjusts image area."""
    dim = DEFAULT_DIM
    target = scaled(DEFAULT_DIM * DEFAULT_DIM, scale)
    while dim * dim > target and dim > 16:
        dim -= 8
    while (dim + 8) * (dim + 8) <= target:
        dim += 8

    pb = ProgramBuilder("spec95.132.ijpeg", seed)
    pb.op("g", (), label="jp.entry")

    n_px = dim * dim
    image = pb.static_array(n_px)
    coeffs = pb.static_array(n_px)
    quant = pb.static_array(n_px)
    basis = pb.static_array(_B * _B)

    pixels = [int(pb.rng.integers(0, 256)) for _ in range(n_px)]
    for i in pb.for_range("jp.mkimage", n_px, cond_srcs=("g",)):
        pb.store(image + 4 * i, pixels[i], base="g", label="jp.init.px")
    basis_vals = [((i * 7 + j * 13) % 63) + 1 for i in range(_B) for j in range(_B)]
    for i in pb.for_range("jp.mkbasis", _B * _B, cond_srcs=("g",)):
        pb.store(basis + 4 * i, basis_vals[i], base="g", label="jp.init.bs")

    checksum = 0
    n_blocks = dim // _B
    for by in pb.for_range("jp.blocky", n_blocks, cond_srcs=("g",)):
        for bx in pb.for_range("jp.blockx", n_blocks, cond_srcs=("g",)):
            base_idx = by * _B * dim + bx * _B
            # Row pass: coef[r][c] = sum_k px[r][k] * basis[k][c]
            block_coef: list[int] = [0] * (_B * _B)
            for r in pb.for_range("jp.rows", _B, cond_srcs=("r",)):
                row_px = []
                for k in range(_B):
                    v = pb.load(image + 4 * (base_idx + r * dim + k), "px",
                                base="g", label="jp.dct.ldpx")
                    row_px.append(v)
                for c in range(_B):
                    acc = 0
                    pb.op("acc", (), label="jp.dct.zero")
                    for k in range(_B):
                        b = pb.load(basis + 4 * (k * _B + c), "bs", base="g",
                                    label="jp.dct.ldbs")
                        pb.op("prod", ("px", "bs"), kind=OpClass.IMULT,
                              label="jp.dct.mul")
                        pb.op("acc", ("acc", "prod"), label="jp.dct.acc")
                        acc += row_px[k] * b
                    coef_val = (acc + (1 << 20)) & 0xFFFF_FFFF  # large pattern
                    block_coef[r * _B + c] = coef_val
                    pb.store(coeffs + 4 * (base_idx + r * dim + c), coef_val,
                             base="g", src="acc", label="jp.dct.stcoef")
            # Quantize: scale back down to small values.
            for idx in pb.for_range("jp.quant", _B * _B, cond_srcs=("q",)):
                r, c = divmod(idx, _B)
                cv = pb.load(coeffs + 4 * (base_idx + r * dim + c), "cv",
                             base="g", label="jp.q.ldc")
                pb.op("q", ("cv",), kind=OpClass.IDIV, label="jp.q.div")
                qv = (cv >> 16) & 0x3FFF
                pb.store(quant + 4 * (base_idx + r * dim + c), qv, base="g",
                         src="q", label="jp.q.stq")
                checksum = (checksum + qv) & 0x7FFF_FFFF
                pb.op("ck", ("ck", "q"), label="jp.q.ck")

    out = pb.static_array(1)
    pb.store(out, checksum, src="ck", label="jp.result")
    return pb.build(
        description="8x8 blocked integer transform: sequential sweeps, large products",
        params={"dim": dim, "blocks": n_blocks * n_blocks, "checksum": checksum},
    )
