"""Differential + invariant fuzzing for the codec zoo.

The cache differential harness (:mod:`repro.check.diff`) checks the
*hierarchy* against a naive model; this module checks each *codec*
against its own contract, with line generators aimed straight at the
boundaries where codecs historically break:

* min/max encodable values (sign-extension edges: ``0x7F``/``0x80``,
  ``0xFFFF_FF7F``/``0xFFFF_FF80``, halfword analogues);
* BDI delta overflow (words exactly one past a delta width, bases near
  the 2^32 wraparound);
* C-Pack dictionary misses (first occurrence of every word) and partial
  matches that differ only in the low byte/halfword;
* degenerate lines (empty, single word, all-zero, all-identical).

Oracles checked per line:

1. **Round-trip** — ``decompress_line(compress_line(v)) == v`` (mod 2^32).
2. **Bit accounting** — ``compress_line().bits == pack_line().total_bits``.
3. **Pack sanity** — ``0 <= n_compressed <= n_words``, non-negative bit
   fields, and ``bus_words`` covering the stream.
4. **Determinism** — encoding the same line twice yields identical
   tokens and bits (catches hidden state; C-Pack's dictionary must be
   rebuilt per line).
5. **Word-facet agreement** — for codecs exposing ``word_scheme``, every
   word the facet calls compressible is counted compressed by
   ``pack_line`` (exact equality for the paper's scheme, whose facet is
   total).

Failures minimize with the same greedy ddmin idea as
:meth:`repro.check.diff.DifferentialRunner.minimize`, shrinking the
*line* instead of the op stream.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.compression.codecs import CODEC_NAMES, get_codec
from repro.compression.codecs.protocol import Codec
from repro.utils.bitops import MASK32

__all__ = [
    "CodecDivergence",
    "boundary_lines",
    "check_line",
    "fuzz_codec",
    "random_line",
]

_HEAP = 0x1000_0000


@dataclass(frozen=True)
class CodecDivergence:
    """One broken codec contract, with the offending line attached."""

    codec: str
    oracle: str
    detail: str
    values: tuple
    addrs: tuple

    def describe(self) -> str:
        """One-paragraph human-readable report naming the oracle and the line."""
        return (
            f"codec {self.codec!r} violated {self.oracle}: {self.detail}\n"
            f"  line ({len(self.values)} words @ {self.addrs[0]:#x}): "
            + " ".join(f"{v:#010x}" for v in self.values)
            if self.values
            else f"codec {self.codec!r} violated {self.oracle}: {self.detail}"
            " (empty line)"
        )


def boundary_lines(line_words: int = 16) -> list[tuple[list[int], int]]:
    """Deterministic (values, base_addr) pairs at known codec edges."""
    base = _HEAP
    n = line_words
    se_edges = [
        0x0000_0000, 0x0000_0001, 0x0000_0007, 0x0000_0008,  # SE4 edge
        0x0000_007F, 0x0000_0080, 0xFFFF_FF7F, 0xFFFF_FF80,  # SE8 edge
        0x0000_7FFF, 0x0000_8000, 0xFFFF_7FFF, 0xFFFF_8000,  # SE16 edge
        0xFFFF_FFFF, 0x7FFF_FFFF, 0x8000_0000, 0x0001_0000,  # extremes
    ]
    delta_edges = [  # BDI: deltas exactly at/past each width from word 0
        0xCAFE_0000, 0xCAFE_007F, 0xCAFE_0080, 0xCAFE_7FFF,
        0xCAFE_8000, 0xCAFD_FF81, 0xCAFD_FF80, 0xCAFE_0001,
    ] * 2
    wrap_edges = [  # base+delta across the 2^32 wraparound
        0xFFFF_FFF0, 0xFFFF_FFFF, 0x0000_0005, 0xFFFF_FFA0,
    ] * 4
    dict_edges = [  # C-Pack: miss, full match, mmmx, mmxx, re-miss
        0xDEAD_BEEF, 0xDEAD_BEEF, 0xDEAD_BE00, 0xDEAD_0000,
        0x1234_5678, 0x1234_5600, 0x1234_0000, 0xDEAD_BEEF,
    ] * 2
    rep_edges = [0x0101_0101, 0xABAB_ABAB, 0x00FF_00FF, 0xFF00_FF00] * 4
    lines = [
        ([], base),
        ([0], base),
        ([0] * n, base),
        ([0x2BAD_F00D] * n, base),
        ([base + 4 * i for i in range(n)], base),  # all-pointer under cpp
        (se_edges[:n], base),
        (delta_edges[:n], base),
        (wrap_edges[:n], base),
        (dict_edges[:n], base),
        (rep_edges[:n], base),
        # Zero runs longer than FPC's 8-word token, split by one literal.
        ([0] * 9 + [0xBAD0_0001] + [0] * (n - 10), base),
    ]
    return [(vals, base) for vals, base in lines]


def random_line(rng: random.Random, line_words: int = 16) -> tuple[list[int], int]:
    """One random line biased toward boundary-adjacent word classes."""
    base = (_HEAP + rng.randrange(1 << 16) * 4 * line_words) & ~0x3F
    vals: list[int] = []
    for i in range(line_words):
        kind = rng.randrange(8)
        if kind == 0:
            v = 0
        elif kind == 1:
            v = rng.choice([0x7F, 0x80, 0xFFFF_FF7F, 0xFFFF_FF80, 7, 8])
        elif kind == 2:
            v = (base + rng.randrange(-64, 64) * 4) & MASK32
        elif kind == 3:  # near another word: BDI deltas, C-Pack matches
            anchor = vals[rng.randrange(len(vals))] if vals else 0xCAFE_0000
            v = (anchor + rng.choice([-0x80, -1, 0, 1, 0x7F, 0x80, 0x100])) & MASK32
        elif kind == 4:
            b = rng.randrange(256)
            v = b * 0x01010101
        elif kind == 5:
            v = rng.choice([0xFFFF_FFFF, 0x8000_0000, 0x7FFF_FFFF, 1 << 16])
        else:
            v = rng.randrange(1 << 32)
        vals.append(v)
    return vals, base


def check_line(
    codec: Codec, values: list[int], base_addr: int
) -> CodecDivergence | None:
    """Run every oracle on one line; return the first violation."""
    addrs = [base_addr + 4 * i for i in range(len(values))]
    expected = [v & MASK32 for v in values]

    def diverge(oracle: str, detail: str) -> CodecDivergence:
        return CodecDivergence(
            codec=codec.name,
            oracle=oracle,
            detail=detail,
            values=tuple(values),
            addrs=tuple(addrs),
        )

    try:
        encoded = codec.compress_line(values, addrs)
        decoded = codec.decompress_line(encoded, addrs)
    except Exception as exc:  # noqa: BLE001 - fuzz oracle boundary
        return diverge("round-trip", f"raised {type(exc).__name__}: {exc}")
    if decoded != expected:
        bad = [
            f"word {i}: {g:#010x} != {e:#010x}"
            for i, (g, e) in enumerate(zip(decoded, expected))
            if g != e
        ] or [f"length {len(decoded)} != {len(expected)}"]
        return diverge("round-trip", "; ".join(bad[:4]))

    pack = codec.pack_line(values, addrs)
    if encoded.bits != pack.total_bits:
        return diverge(
            "bit-accounting",
            f"compress_line says {encoded.bits} bits, "
            f"pack_line says {pack.total_bits}",
        )
    if not 0 <= pack.n_compressed <= pack.n_words:
        return diverge(
            "pack-sanity",
            f"n_compressed={pack.n_compressed} outside [0, {pack.n_words}]",
        )
    if pack.data_bits < 0 or pack.meta_bits < 0:
        return diverge(
            "pack-sanity",
            f"negative bit field: data={pack.data_bits} meta={pack.meta_bits}",
        )
    if values and pack.bus_words * 32 < pack.total_bits:
        return diverge(
            "pack-sanity",
            f"bus_words={pack.bus_words} cannot carry {pack.total_bits} bits",
        )

    again = codec.compress_line(values, addrs)
    if (again.tokens, again.bits) != (encoded.tokens, encoded.bits):
        return diverge(
            "determinism",
            "second encoding differs (per-line state leaked between calls)",
        )

    scheme = codec.word_scheme
    if scheme is not None:
        facet = sum(
            1 for v, a in zip(expected, addrs) if scheme.is_compressible(v, a)
        )
        if codec.name == "cpp":
            if facet != pack.n_compressed:
                return diverge(
                    "word-facet",
                    f"facet counts {facet} compressible, "
                    f"pack counts {pack.n_compressed}",
                )
        elif facet > pack.n_compressed:
            return diverge(
                "word-facet",
                f"facet counts {facet} compressible but pack only "
                f"{pack.n_compressed} — the facet must be a subset",
            )
    return None


def _minimize(
    codec: Codec, values: list[int], base_addr: int
) -> CodecDivergence:
    """Greedy word-removal shrink of a failing line (ddmin spirit)."""
    current = list(values)
    shrunk = True
    while shrunk and len(current) > 1:
        shrunk = False
        for i in range(len(current)):
            candidate = current[:i] + current[i + 1 :]
            if check_line(codec, candidate, base_addr) is not None:
                current = candidate
                shrunk = True
                break
    return check_line(codec, current, base_addr)


def fuzz_codec(
    codec_name: str,
    seed: int,
    n_lines: int = 200,
    line_words: int = 16,
    *,
    minimize: bool = True,
) -> list[CodecDivergence]:
    """Fuzz one codec: boundary lines first, then *n_lines* random ones.

    Returns every (minimized) divergence; an empty list means the codec
    honoured its contract on the whole sweep.
    """
    codec = get_codec(codec_name)
    rng = random.Random(seed * 2654435761 % (1 << 32) ^ hash(codec_name))
    out: list[CodecDivergence] = []
    cases = boundary_lines(line_words) + [
        random_line(rng, line_words) for _ in range(n_lines)
    ]
    for values, base in cases:
        divergence = check_line(codec, values, base)
        if divergence is not None:
            if minimize and values:
                divergence = _minimize(codec, list(values), base)
            out.append(divergence)
    return out


def fuzz_all_codecs(seed: int, n_lines: int = 200) -> dict[str, list[CodecDivergence]]:
    """Sweep every registered codec; maps name → divergences."""
    return {name: fuzz_codec(name, seed, n_lines) for name in CODEC_NAMES}
