"""Integrity primitives of the result store: digests, checksums, faults.

Everything the store trusts is derived here:

* **Content addresses** — :func:`cell_digest` maps a canonical cell key
  ``(workload, seed, scale, cache_config, miss_scale)`` plus the code
  version to a SHA-256 hex digest. Two cells with the same digest are
  the same computation by construction; bumping the code version changes
  every address, so records produced by older simulator builds are never
  served as current.
* **Payload checksums** — :func:`payload_checksum` hashes the canonical
  JSON form of a record's payload. Every record carries its checksum and
  every read re-verifies it, so a flipped bit between write and read is
  *detected*, never silently served (the design rule ZipCache/CRAM-style
  compressed stores live by: metadata corruption must not become silent
  data corruption).
* **Fault points** — :func:`fault_point` is a zero-cost-when-unarmed
  hook the crash-safety property tests use to kill the process at named
  points inside the write path (after the journal write, before the
  publish rename, ...). Armed either programmatically
  (:func:`set_fault_hook`) or via ``REPRO_STORE_FAULT_POINT=name@N``
  (die with ``os._exit`` on the N-th hit of *name*), it lets a test
  drive SIGKILL-equivalent crashes deterministically through every
  window of the commit protocol.
"""

from __future__ import annotations

import hashlib
import json
import os
from collections.abc import Callable

from repro.errors import StoreError

__all__ = [
    "canonical_json",
    "payload_checksum",
    "cell_digest",
    "fault_point",
    "set_fault_hook",
    "FAULT_POINT_ENV",
    "FAULT_EXIT_CODE",
]

#: Environment variable arming the crash hook: ``"<point>@<n>"`` kills
#: the process (``os._exit``) on the n-th hit of that fault point.
FAULT_POINT_ENV = "REPRO_STORE_FAULT_POINT"

#: Exit code of an environment-armed crash (mirrors SIGKILL's 128+9 so
#: supervisors classify it like a real kill).
FAULT_EXIT_CODE = 137


def canonical_json(payload) -> str:
    """Deterministic JSON form: sorted keys, no whitespace variance.

    The checksum is computed over this form, so semantically identical
    payloads always hash identically regardless of dict insertion order.
    """
    try:
        return json.dumps(
            payload, sort_keys=True, separators=(",", ":"), allow_nan=True
        )
    except (TypeError, ValueError) as exc:
        raise StoreError(f"payload is not JSON-serializable: {exc}") from exc


def payload_checksum(payload) -> str:
    """SHA-256 hex digest of a payload's canonical JSON form."""
    return hashlib.sha256(canonical_json(payload).encode("utf-8")).hexdigest()


def cell_digest(key: tuple | list, *, code_version: str = "") -> str:
    """Content address of one cell: SHA-256 over (key, code version).

    *key* is canonicalized through JSON (so ``(a, 1)`` and ``[a, 1]``
    address the same record) and must therefore be JSON-serializable.
    """
    material = canonical_json({"key": list(key), "code": code_version})
    return hashlib.sha256(material.encode("utf-8")).hexdigest()


# --------------------------------------------------------------------------
# Crash fault points
# --------------------------------------------------------------------------

_HOOK: Callable[[str], None] | None = None
#: Parsed env arming: [point_name, remaining_hits] (None = not parsed yet).
_ENV_STATE: list | None = None


def set_fault_hook(hook: Callable[[str], None] | None) -> None:
    """Install (or clear, with None) an in-process fault-point hook.

    The hook is called with the fault point's name on every hit; raising
    or ``os._exit``-ing from it simulates a crash at exactly that point.
    """
    global _HOOK
    _HOOK = hook


def _env_arming() -> list | None:
    global _ENV_STATE
    if _ENV_STATE is None:
        raw = os.environ.get(FAULT_POINT_ENV, "")
        if not raw:
            _ENV_STATE = []
        else:
            point, _, count = raw.partition("@")
            try:
                _ENV_STATE = [point, max(1, int(count or "1"))]
            except ValueError:
                _ENV_STATE = []
    return _ENV_STATE or None


def fault_point(name: str) -> None:
    """Crash-injection hook; a no-op unless a test armed it.

    Sprinkled through the store's commit protocol so the crash-safety
    property test can die inside every window. Production cost is one
    global load and a falsy check.
    """
    if _HOOK is not None:
        _HOOK(name)
        return
    state = _env_arming()
    if state is not None and state[0] == name:
        state[1] -= 1
        if state[1] <= 0:
            os._exit(FAULT_EXIT_CODE)
