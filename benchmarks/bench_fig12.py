"""Figure 12 bench: L1 miss comparison, normalized to BC."""

from conftest import BENCH_SCALE, BENCH_SEED, run_once

from repro.experiments.common import GEOMEAN
from repro.experiments.fig12_l1_misses import run as run_fig12


def test_fig12_l1_misses(benchmark):
    out = run_once(benchmark, run_fig12, seed=BENCH_SEED, scale=BENCH_SCALE)
    avg = {cfg: out.series[cfg][GEOMEAN] for cfg in ("HAC", "BCP", "CPP")}
    benchmark.extra_info.update(
        {f"avg_{k.lower()}_pct": round(v, 1) for k, v in avg.items()}
    )
    benchmark.extra_info["paper"] = "prefetching (BCP/CPP) well below BC"
    # Prefetching reduces L1 misses on average:
    assert avg["BCP"] < 100.0
    assert avg["CPP"] < 100.0
    # Buffer-hit accounting: BCP misses never exceed BC per workload.
    for workload, value in out.series["BCP"].items():
        if workload != GEOMEAN:
            assert value <= 100.5, workload
