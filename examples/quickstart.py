#!/usr/bin/env python
"""Quickstart: compress some values, then race CPP against the baseline.

Run:  python examples/quickstart.py
"""

from repro.compression import PAPER_SCHEME, compress_word, decompress_word
from repro.sim.runner import run_workload
from repro.utils.tables import format_table


def demo_value_compression() -> None:
    """The paper's 32->16-bit scheme on a few representative words."""
    print("== The compression scheme (paper §2.1) ==")
    print(
        f"compressed slot: {PAPER_SCHEME.compressed_bits} bits | "
        f"small range [{PAPER_SCHEME.small_min}, {PAPER_SCHEME.small_max}] | "
        f"pointer chunk {PAPER_SCHEME.pointer_chunk_bytes // 1024} KB"
    )
    examples = [
        ("small positive", 1234, 0x1000_2000),
        ("small negative", -77 & 0xFFFF_FFFF, 0x1000_2000),
        ("pointer, same 32K chunk", 0x1000_7F00, 0x1000_2000),
        ("pointer, other chunk", 0x1001_0000, 0x1000_2000),
        ("random bits", 0xDEAD_BEEF, 0x1000_2000),
    ]
    rows = []
    for label, value, addr in examples:
        cw = compress_word(value, addr)
        if cw is None:
            rows.append([label, f"{value:#010x}", "no", "-", "-"])
        else:
            kind = "pointer" if cw.vt else "small"
            restored = decompress_word(cw, addr)
            assert restored == value
            rows.append(
                [label, f"{value:#010x}", "yes", kind, f"{cw.encoded:#06x}"]
            )
    print(format_table(["value", "bits", "compressible", "type", "16-bit slot"], rows))
    print()


def demo_simulation() -> None:
    """One workload, two machines: the baseline BC and the paper's CPP."""
    print("== Simulating olden.treeadd on BC vs CPP ==")
    rows = []
    results = {}
    for config in ("BC", "CPP"):
        result = run_workload("olden.treeadd", config, seed=1, scale=0.5)
        results[config] = result
        rows.append(
            [
                config,
                result.cycles,
                round(result.ipc, 3),
                round(100 * result.l1_miss_rate, 2),
                result.l1.affiliated_hits,
                result.bus_words,
            ]
        )
    print(
        format_table(
            ["config", "cycles", "IPC", "L1 miss %", "affiliated hits", "bus words"],
            rows,
        )
    )
    bc, cpp = results["BC"], results["CPP"]
    print(
        f"\nCPP is {100 * (1 - cpp.cycles / bc.cycles):.1f}% faster than BC "
        f"and moves {100 * (1 - cpp.bus_words / bc.bus_words):.1f}% less "
        f"memory traffic — prefetching for free in the bandwidth that "
        f"compression liberated (paper Figures 10 and 11)."
    )


if __name__ == "__main__":
    demo_value_compression()
    demo_simulation()
