"""Tests for the stride-prefetching extension."""

import pytest

from repro.caches.hierarchy import build_hierarchy
from repro.caches.stride import StrideDetector
from repro.memory.image import MemoryImage
from repro.memory.main_memory import MainMemory
from repro.sim.config import SimConfig
from repro.sim.machine import Machine
from repro.workloads.registry import generate

from tests.conftest import TINY_PARAMS

BASE = 0x1000_0000


class TestStrideDetector:
    def test_needs_two_equal_deltas(self):
        d = StrideDetector()
        assert d.observe(100) is None  # first touch
        assert d.observe(102) is None  # delta learned
        assert d.observe(104) == 106  # delta confirmed

    def test_negative_stride(self):
        d = StrideDetector()
        d.observe(100)
        d.observe(97)
        assert d.observe(94) == 91

    def test_broken_stride_resets(self):
        d = StrideDetector()
        d.observe(100)
        d.observe(102)
        assert d.observe(104) == 106
        assert d.observe(200) is None  # delta broken
        assert d.observe(202) is None  # new delta learned
        assert d.observe(204) == 206

    def test_zero_delta_never_predicts(self):
        d = StrideDetector()
        d.observe(100)
        d.observe(100)
        assert d.observe(100) is None

    def test_regions_independent(self):
        d = StrideDetector(line_shift=6)
        # Lines 0.. are in region 0; lines 1000.. in another region.
        d.observe(0)
        d.observe(2)
        d.observe(1000)  # other region must not disturb region 0
        assert d.observe(4) == 6

    def test_region_capacity_bounded(self):
        d = StrideDetector(max_regions=4, line_shift=6)
        for r in range(10):
            d.observe(r * 1024)
        assert len(d._regions) <= 4


class TestBspHierarchy:
    def test_builds(self):
        h = build_hierarchy("BSP", MainMemory(MemoryImage()), TINY_PARAMS)
        assert h.name == "BSP"

    def test_verified_run(self):
        program = generate("spec95.132.ijpeg", seed=1, scale=0.15)
        result = Machine(SimConfig(cache_config="BSP"), verify_loads=True).run(
            program
        )
        assert result.instructions == len(program.trace)

    def test_stride_beats_next_line_on_strided_sweep(self):
        """A stride-4-lines array walk defeats next-line prefetching at
        both levels (stride 2 even in the double-width L2 lines) but is
        exactly what the detector catches."""
        outcomes = {}
        for config in ("BCP", "BSP"):
            h = build_hierarchy(
                config, MainMemory(MemoryImage(), latency=100), TINY_PARAMS
            )
            latency = 0
            now = 0
            for k in range(400):
                addr = BASE + k * 256  # every fourth 64 B line
                r = h.load(addr, now)
                latency += r.latency
                now += r.latency
            outcomes[config] = latency
        assert outcomes["BSP"] < 0.75 * outcomes["BCP"]

    def test_stride_prefetches_counted(self):
        h = build_hierarchy(
            "BSP", MainMemory(MemoryImage(), latency=100), TINY_PARAMS
        )
        now = 0
        for k in range(100):
            r = h.load(BASE + k * 128, now)
            now += r.latency
        assert h.l1_stats.extra.get("stride_prefetches", 0) > 0

    def test_bsp_excluded_from_paper_configs(self):
        from repro.sim.config import CONFIG_NAMES

        assert "BSP" not in CONFIG_NAMES  # extension, not a paper config
