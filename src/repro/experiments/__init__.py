"""Experiment harnesses: one module per figure of the paper's evaluation.

Run everything::

    python -m repro.experiments all

or a single figure::

    python -m repro.experiments fig10 --scale 0.5

Each module exposes ``run(...) -> ExperimentOutput`` returning the
regenerated table/series, and the registry maps figure ids to modules.
"""

from repro.experiments.common import ExperimentOutput, render_output
from repro.experiments.registry import EXPERIMENTS, get_experiment, run_experiment

__all__ = [
    "ExperimentOutput",
    "render_output",
    "EXPERIMENTS",
    "get_experiment",
    "run_experiment",
]
