"""Cross-process telemetry: spooling, deterministic merge, partials."""

import json

import pytest

from repro.errors import ExperimentError
from repro.obs import span as span_mod
from repro.obs import telemetry
from repro.obs.metrics import REGISTRY, MetricsRegistry
from repro.obs.phases import PHASES
from repro.obs.telemetry import (
    TelemetryStore,
    cell_id_of,
    child_begin,
    child_finish,
    configure,
    finalize_run,
    load_store,
    merge_metric_dumps,
    merge_phase_snapshots,
)


@pytest.fixture(autouse=True)
def _clean_pipeline():
    configure(None)
    REGISTRY.reset()
    PHASES.reset()
    yield
    configure(None)
    REGISTRY.reset()
    PHASES.reset()


class TestCellIds:
    def test_stable_and_distinct(self):
        key = ("olden.mst", 1, 0.3, "CPP", 1.0)
        assert cell_id_of(key) == cell_id_of(key)
        assert cell_id_of(key) != cell_id_of(("olden.mst", 1, 0.3, "BC", 1.0))

    def test_filesystem_safe(self):
        cell = cell_id_of(("a/b c", "x:y"))
        assert "/" not in cell and " " not in cell and ":" not in cell


class TestConfigure:
    def test_arms_spans_and_creates_spool(self, tmp_path):
        store = configure(tmp_path)
        assert telemetry.enabled()
        assert span_mod.ACTIVE
        assert (tmp_path / "spool").is_dir()
        assert store.trace_id
        configure(None)
        assert not telemetry.enabled()
        assert not span_mod.ACTIVE


class TestSpoolRoundtrip:
    def _handoff(self, tmp_path, attempt=1):
        return {
            "dir": str(tmp_path),
            "cell": "cellA",
            "key": ["w", "c"],
            "attempt": attempt,
            "worker": 0,
            "trace": "trace-1",
            "parent": "span-1",
        }

    def test_child_finish_spools_and_clears_marker(self, tmp_path):
        telem = self._handoff(tmp_path)
        child_begin(telem)
        marker = tmp_path / "spool" / "cellA-a1.partial"
        assert marker.exists()
        REGISTRY.inc("sim.ops", 3)
        with span_mod.span("cell"):
            pass
        path = child_finish(telem)
        assert not marker.exists()
        payload = json.loads(path.read_text())
        assert payload["cell"] == "cellA"
        assert payload["metrics"]["sim.ops"] == {"type": "counter", "value": 3}
        assert [s["name"] for s in payload["spans"]] == ["cell"]
        assert payload["spans"][0]["trace_id"] == "trace-1"
        assert payload["spans"][0]["parent_id"] == "span-1"

    def test_child_begin_resets_inherited_state(self, tmp_path):
        REGISTRY.inc("parent.leftover", 99)
        child_begin(self._handoff(tmp_path))
        assert len(REGISTRY) == 0

    def test_missing_spool_becomes_partial(self, tmp_path):
        store = configure(tmp_path)
        assert not store.ingest_spool("ghost", 1)
        assert store.partials == [("ghost", 1)]

    def test_truncated_spool_becomes_partial(self, tmp_path):
        store = configure(tmp_path)
        (tmp_path / "spool" / "cellA-a1.json").write_text('{"cell": "cell')
        assert not store.ingest_spool("cellA", 1)
        assert ("cellA", 1) in store.partials


class TestDeterministicMerge:
    def _dump(self, build) -> dict:
        reg = MetricsRegistry()
        build(reg)
        return reg.dump()

    def test_counters_sum_order_independent(self):
        a = self._dump(lambda r: r.inc("sim.ops", 3))
        b = self._dump(lambda r: r.inc("sim.ops", 4))
        ab = merge_metric_dumps({"a": a, "b": b})
        ba = merge_metric_dumps({"b": b, "a": a})
        assert ab == ba
        assert ab["sim.ops"]["value"] == 7

    def test_gauges_take_last_in_sorted_order(self):
        a = self._dump(lambda r: r.set_gauge("rate", 0.25))
        b = self._dump(lambda r: r.set_gauge("rate", 0.75))
        merged = merge_metric_dumps({"zzz": a, "aaa": b})
        # 'zzz' sorts last, so its value wins regardless of dict order.
        assert merged["rate"]["value"] == 0.25

    def test_histograms_merge_bucketwise_with_percentiles(self):
        def low(r):
            for v in (1, 2, 2):
                r.observe("lat", v, )

        def high(r):
            for v in (64, 128):
                r.observe("lat", v)

        merged = merge_metric_dumps(
            {"a": self._dump(low), "b": self._dump(high)}
        )
        data = merged["lat"]["data"]
        assert data["count"] == 5
        assert data["min"] == 1 and data["max"] == 128
        assert data["buckets"]["2"] == 2
        assert 1 <= data["p50"] <= 4
        assert data["p99"] <= 128

    def test_type_conflict_degrades_with_flag(self):
        a = self._dump(lambda r: r.inc("m", 1))
        b = self._dump(lambda r: r.set_gauge("m", 5.0))
        merged = merge_metric_dumps({"a": a, "b": b})
        assert merged["m"]["conflict"] is True

    def test_phases_sum(self):
        merged = merge_phase_snapshots(
            {
                "a": {"sim": {"calls": 1, "seconds": 2.0}},
                "b": {"sim": {"calls": 3, "seconds": 0.5}},
            }
        )
        assert merged["sim"] == {"calls": 4, "seconds": 2.5}


class TestStore:
    def test_spans_parent_first_then_sorted_cells(self):
        store = TelemetryStore(trace_id="t")
        store.parent = {"spans": [{"name": "run"}]}
        store.ingest_payload(
            {"cell": "zz", "attempt": 1, "spans": [{"name": "z-span"}]}
        )
        store.ingest_payload(
            {"cell": "aa", "attempt": 1, "spans": [{"name": "a-span"}]}
        )
        assert [s["name"] for s in store.spans()] == [
            "run",
            "a-span",
            "z-span",
        ]

    def test_dict_roundtrip(self):
        store = TelemetryStore(trace_id="t")
        store.ingest_payload(
            {"cell": "aa", "attempt": 2, "spans": [], "metrics": {}}
        )
        store.note_partial("bb", 1)
        back = TelemetryStore.from_dict(store.as_dict())
        assert back.trace_id == "t"
        assert set(back.cells) == {("aa", 2)}
        assert back.partials == [("bb", 1)]

    def test_finalize_writes_store_with_parent(self, tmp_path):
        configure(tmp_path)
        REGISTRY.inc("fault.attempts", 2)
        with span_mod.span("supervised"):
            pass
        path = finalize_run()
        assert path == tmp_path / "telemetry.json"
        loaded = load_store(tmp_path)
        assert [s["name"] for s in loaded.parent["spans"]] == ["supervised"]
        merged = loaded.merged()
        assert merged["metrics"]["fault.attempts"]["value"] == 2

    def test_load_store_sweeps_stray_spools_and_markers(self, tmp_path):
        spool = tmp_path / "spool"
        spool.mkdir()
        spool.joinpath("cellA-a1.json").write_text(
            json.dumps({"cell": "cellA", "attempt": 1, "spans": []})
        )
        spool.joinpath("cellB-a2.partial").write_text("")
        store = load_store(tmp_path)
        assert ("cellA", 1) in store.cells
        assert ("cellB", 2) in store.partials

    def test_load_store_missing_dir_raises(self, tmp_path):
        with pytest.raises(ExperimentError):
            load_store(tmp_path / "nope")
