"""ImageCompTable: O(1) compressibility probes mirror the scheme exactly."""

import pytest

from repro.compression.comptable import ImageCompTable
from repro.compression.scheme import CompressionScheme
from repro.memory.image import PAGE_WORDS, MemoryImage

BASE = 0x1000_0000
LINE_WORDS = 16


def brute_mask(scheme, image, addr, n_words):
    mask = 0
    for i in range(n_words):
        a = addr + 4 * i
        if scheme.is_compressible(image.read_word(a), a):
            mask |= 1 << i
    return mask


def seeded_image():
    image = MemoryImage()
    # A mix that hits every compression class: small positives, small
    # negatives (sign extension), pointers into the same region, junk.
    for i in range(4 * LINE_WORDS):
        a = BASE + 4 * i
        value = [7 + i, (-3 - i) & 0xFFFFFFFF, BASE + 4 * i, 0xDEAD0000 + i][i % 4]
        image.write_word(a, value)
    return image


class TestProbe:
    def test_line_comp_matches_scheme_classification(self):
        scheme = CompressionScheme()
        image = seeded_image()
        table = ImageCompTable(image, scheme)
        for line in range(4):
            addr = BASE + 4 * LINE_WORDS * line
            assert table.line_comp(addr, LINE_WORDS) == brute_mask(
                scheme, image, addr, LINE_WORDS
            )

    def test_untouched_page_classifies_as_all_compressible_zeros(self):
        table = ImageCompTable(MemoryImage(), CompressionScheme())
        # Zero-fill-on-demand words are small values — all compressible.
        assert table.line_comp(BASE, LINE_WORDS) == (1 << LINE_WORDS) - 1

    def test_probe_is_lazy_per_page(self):
        table = ImageCompTable(seeded_image(), CompressionScheme())
        assert table.n_pages == 0
        table.line_comp(BASE, LINE_WORDS)
        assert table.n_pages == 1

    def test_strict_unmapped_page_returns_none(self):
        image = MemoryImage(strict=True)
        table = ImageCompTable(image, CompressionScheme())
        assert table.line_comp(BASE, LINE_WORDS) is None

    def test_nondefault_scheme_width(self):
        scheme = CompressionScheme(payload_bits=12)
        image = seeded_image()
        table = ImageCompTable(image, scheme)
        assert table.line_comp(BASE, LINE_WORDS) == brute_mask(
            scheme, image, BASE, LINE_WORDS
        )


class TestIncrementalMaintenance:
    def test_note_write_flips_bits_both_ways(self):
        scheme = CompressionScheme()
        image = seeded_image()
        table = ImageCompTable(image, scheme)
        table.line_comp(BASE, LINE_WORDS)  # build the page
        # Make word 0 incompressible and word 1 compressible.
        values = [0xBAD0_0001, 5]
        image.write_words(BASE, values)
        table.note_write(BASE, values, mask=0b11)
        assert table.line_comp(BASE, LINE_WORDS) == brute_mask(
            scheme, image, BASE, LINE_WORDS
        )

    def test_note_write_honours_mask_holes(self):
        scheme = CompressionScheme()
        image = seeded_image()
        table = ImageCompTable(image, scheme)
        before = table.line_comp(BASE, LINE_WORDS)
        # Only word 1 selected: word 0's stale value must keep its bit.
        image.write_word(BASE + 4, 0xFEED_BEEF)
        table.note_write(BASE, [0, 0xFEED_BEEF], mask=0b10)
        after = table.line_comp(BASE, LINE_WORDS)
        assert after == (before & ~0b10) | (after & 0b10)
        assert after == brute_mask(scheme, image, BASE, LINE_WORDS)

    def test_note_write_accepts_precomputed_comp(self):
        scheme = CompressionScheme()
        image = seeded_image()
        table = ImageCompTable(image, scheme)
        table.line_comp(BASE, LINE_WORDS)
        image.write_words(BASE, [3, 0xCAFE_0001])
        # Writer supplies its own verdicts (the VCP memo path).
        table.note_write(BASE, [3, 0xCAFE_0001], mask=0b11, comp=0b01)
        assert table.line_comp(BASE, LINE_WORDS) == brute_mask(
            scheme, image, BASE, LINE_WORDS
        )

    def test_write_to_unbuilt_page_stays_lazy(self):
        scheme = CompressionScheme()
        image = seeded_image()
        table = ImageCompTable(image, scheme)
        image.write_word(BASE, 0xBAD0_0001)
        table.note_write(BASE, [0xBAD0_0001], mask=0b1)
        assert table.n_pages == 0
        assert table.line_comp(BASE, LINE_WORDS) == brute_mask(
            scheme, image, BASE, LINE_WORDS
        )

    def test_page_straddling_write_invalidates_both_pages(self):
        scheme = CompressionScheme()
        image = seeded_image()
        table = ImageCompTable(image, scheme)
        last = BASE + 4096 - 4  # final word of the page
        table.line_comp(BASE, LINE_WORDS)
        table.line_comp(BASE + 4096, LINE_WORDS)
        assert table.n_pages == 2
        image.write_words(last, [1, 2])
        table.note_write(last, [1, 2], mask=0b11)
        assert table.n_pages == 0

    def test_invalidate_forces_rebuild(self):
        scheme = CompressionScheme()
        image = seeded_image()
        table = ImageCompTable(image, scheme)
        table.line_comp(BASE, LINE_WORDS)
        image.write_word(BASE, 0xBAD0_0001)  # mutate behind the table's back
        table.invalidate(BASE)
        assert table.line_comp(BASE, LINE_WORDS) == brute_mask(
            scheme, image, BASE, LINE_WORDS
        )


class TestMainMemoryIntegration:
    def test_writeback_keeps_table_in_sync(self):
        from repro.memory.main_memory import MainMemory

        scheme = CompressionScheme()
        mem = MainMemory(MemoryImage(), latency=100)
        table = ImageCompTable(mem.image, scheme)
        mem.attach_comp_table(table)
        table.line_comp(BASE, LINE_WORDS)
        mem.write_line(BASE, [0xBAD0_0001] + [9] * (LINE_WORDS - 1))
        assert table.line_comp(BASE, LINE_WORDS) == brute_mask(
            scheme, mem.image, BASE, LINE_WORDS
        )


@pytest.mark.parametrize("n_words", [4, 8, 16, 32])
def test_probe_width_masks_correctly(n_words):
    table = ImageCompTable(MemoryImage(), CompressionScheme())
    got = table.line_comp(BASE, n_words)
    assert got == (1 << n_words) - 1
    assert got.bit_length() <= n_words


def test_page_words_constant_matches_mask_width():
    # The packed page mask must cover exactly PAGE_WORDS bits.
    table = ImageCompTable(MemoryImage(), CompressionScheme())
    table.line_comp(BASE, LINE_WORDS)
    (mask,) = table._masks.values()
    assert mask.bit_length() <= PAGE_WORDS


class TestPageStraddleRegressions:
    """Regressions for the page-boundary bugs the codec audit found."""

    def test_straddling_probe_reads_both_pages(self):
        # Words past the page end used to fall off the shifted mask and
        # read as incompressible zeros.
        scheme = CompressionScheme()
        image = seeded_image()
        # Second page content: alternating compressible/incompressible.
        for i in range(LINE_WORDS):
            image.write_word(BASE + 4096 + 4 * i, [3, 0xBAD0_0001][i % 2])
        table = ImageCompTable(image, scheme)
        addr = BASE + 4096 - 4 * (LINE_WORDS // 2)  # half in each page
        assert table.line_comp(addr, LINE_WORDS) == brute_mask(
            scheme, image, addr, LINE_WORDS
        )

    def test_straddling_probe_none_when_second_page_unmapped(self):
        image = MemoryImage(strict=True)
        for i in range(PAGE_WORDS):
            image.write_word(BASE + 4 * i, 7)  # first page fully mapped
        table = ImageCompTable(image, CompressionScheme())
        addr = BASE + 4096 - 8
        assert table.line_comp(addr, 4) is None

    def test_wide_straddling_write_drops_every_covered_page(self):
        # A write spanning three pages used to leave the third stale.
        scheme = CompressionScheme()
        image = seeded_image()
        table = ImageCompTable(image, scheme)
        for p in range(3):
            table.line_comp(BASE + 4096 * p, LINE_WORDS)
        assert table.n_pages == 3
        start = BASE + 4096 - 4
        n = PAGE_WORDS + 2  # last word of page 0 .. first of page 2
        values = [0xBAD0_0001] * n
        image.write_words(start, values)
        table.note_write(start, values, mask=(1 << n) - 1)
        assert table.n_pages == 0
        for p in range(3):
            addr = BASE + 4096 * p
            assert table.line_comp(addr, LINE_WORDS) == brute_mask(
                scheme, image, addr, LINE_WORDS
            )

    def test_empty_write_is_harmless(self):
        table = ImageCompTable(seeded_image(), CompressionScheme())
        table.line_comp(BASE, LINE_WORDS)
        table.note_write(BASE + 4096 - 4, [], mask=0)
        assert table.n_pages == 1


class TestCodecWordSchemes:
    """The table works for any codec exposing a per-word facet."""

    @pytest.mark.parametrize("codec_name", ["cpp", "fpc"])
    def test_table_matches_codec_word_scheme(self, codec_name):
        from repro.compression.codecs import get_codec

        scheme = get_codec(codec_name).word_scheme
        image = seeded_image()
        table = ImageCompTable(image, scheme)
        for line in range(4):
            addr = BASE + 4 * LINE_WORDS * line
            assert table.line_comp(addr, LINE_WORDS) == brute_mask(
                scheme, image, addr, LINE_WORDS
            )

    def test_note_write_under_fpc_scheme(self):
        from repro.compression.codecs import get_codec

        scheme = get_codec("fpc").word_scheme
        image = seeded_image()
        table = ImageCompTable(image, scheme)
        table.line_comp(BASE, LINE_WORDS)
        values = [0x0101_0101, 0x1234_5678]  # repeated-byte, junk
        image.write_words(BASE, values)
        table.note_write(BASE, values, mask=0b11)
        assert table.line_comp(BASE, LINE_WORDS) == brute_mask(
            scheme, image, BASE, LINE_WORDS
        )
