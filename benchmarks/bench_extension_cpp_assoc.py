"""Extension bench: does CPP subsume higher associativity, or compose?

The paper compares CPP against HAC as alternatives; the natural
follow-up — what if you build the CPP cache *with* HAC's associativity —
is future work the framework makes one parameter away. Expected shape:
the combination is at least as good as either ingredient on
conflict-dominated workloads, showing the two mechanisms address
different miss classes.
"""

from conftest import BENCH_SEED, run_once

from repro.caches.hierarchy import HierarchyParams
from repro.sim.config import SimConfig
from repro.sim.runner import get_program, run_program

WORKLOADS = ["spec95.129.compress", "spec2000.300.twolf", "spec95.130.li"]
SCALE = 0.35


def run_combination():
    variants = {
        "CPP (paper: 1-way L1)": SimConfig(cache_config="CPP"),
        "HAC (2-way, no compression)": SimConfig(cache_config="HAC"),
        "CPP+assoc (2-way L1, 4-way L2)": SimConfig(
            cache_config="CPP",
            hierarchy=HierarchyParams(l1_assoc=2, l2_assoc=4),
        ),
    }
    out = {}
    for label, config in variants.items():
        cycles = 0
        for name in WORKLOADS:
            cycles += run_program(
                get_program(name, seed=BENCH_SEED, scale=SCALE), config
            ).cycles
        out[label] = cycles
    return out


def test_extension_cpp_with_associativity(benchmark):
    results = run_once(benchmark, run_combination)
    for label, cycles in results.items():
        benchmark.extra_info[label] = cycles
    combo = results["CPP+assoc (2-way L1, 4-way L2)"]
    # The combination beats each ingredient on this conflict-heavy mix:
    assert combo <= results["CPP (paper: 1-way L1)"]
    assert combo <= results["HAC (2-way, no compression)"]
